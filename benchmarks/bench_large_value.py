"""E11 — Section V: the "Large Value Challenge" made observable.

On a diamond chain sigma doubles per diamond; exact arithmetic must
push Θ(N)-bit integers through O(log N)-bit edges and trips the strict
CONGEST budget, while the Section VI floats sail through the very same
budget and still produce accurate values.
"""


from repro.analysis import print_table
from repro.centrality import brandes_betweenness
from repro.core import distributed_betweenness
from repro.exceptions import CongestViolationError
from repro.graphs import diamond_chain_graph, max_shortest_path_count

from .conftest import once

CHAIN = diamond_chain_graph(60)
FACTOR = 12


def run_exact_until_violation():
    try:
        distributed_betweenness(
            CHAIN, arithmetic="exact", congest_factor=FACTOR
        )
    except CongestViolationError as err:
        return err
    return None


def test_exact_arithmetic_trips_strict_congest(benchmark):
    err = once(benchmark, run_exact_until_violation)
    assert err is not None
    print_table(
        ["metric", "value"],
        [
            ["graph", CHAIN.name],
            ["N", CHAIN.num_nodes],
            ["max sigma", str(max_shortest_path_count(CHAIN))],
            ["strict budget (bits/edge/round)", err.bits_allowed],
            ["offending load (bits)", err.bits_used],
            ["violation round", err.round_number],
        ],
        title="E11 exact path counts overflow CONGEST",
    )
    assert err.bits_used > err.bits_allowed


def test_lfloat_same_budget_same_graph(benchmark):
    from repro.arithmetic import recommended_precision, theorem1_bound

    result = once(
        benchmark,
        distributed_betweenness,
        CHAIN,
        arithmetic="lfloat-8",
        congest_factor=FACTOR,
    )
    reference = brandes_betweenness(CHAIN, exact=True)

    def worst_error(run):
        return max(
            abs(run.betweenness[v] / float(reference[v]) - 1.0)
            for v in CHAIN.nodes()
            if reference[v]
        )

    worst_tiny_l = worst_error(result)
    # With L = 8 the error envelope is loose (eta*N is large); the point
    # of this run is that the *bits* fit.  The automatic L = 3 log2 N
    # gets both: CONGEST-legal bits and polynomially small error.
    auto = distributed_betweenness(CHAIN, arithmetic="lfloat")
    worst_auto = worst_error(auto)
    print_table(
        ["arithmetic", "max bits/edge/round", "strict budget", "rounds",
         "worst rel error", "Theorem 1 envelope"],
        [
            [
                result.arithmetic,
                result.stats.max_edge_bits_per_round,
                FACTOR * 8,
                result.rounds,
                worst_tiny_l,
                theorem1_bound(8, CHAIN.num_nodes, 120),
            ],
            [
                auto.arithmetic,
                auto.stats.max_edge_bits_per_round,
                "32*log2N (default)",
                auto.rounds,
                worst_auto,
                theorem1_bound(
                    recommended_precision(CHAIN.num_nodes),
                    CHAIN.num_nodes,
                    120,
                ),
            ],
        ],
        title="E11 L-floats fit the budget exact integers overflowed",
    )
    assert result.stats.max_edge_bits_per_round <= FACTOR * 8
    assert worst_tiny_l <= theorem1_bound(8, CHAIN.num_nodes, 120)
    assert worst_auto < 1e-4
