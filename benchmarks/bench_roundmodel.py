"""E20 — the closed-form round model: exact timing without simulation.

Because every phase of the protocol is deterministic, the total round
count has a closed form (`repro.core.roundmodel`).  This bench

* verifies the prediction equals the simulator **exactly** across
  families (including the 77-node Les Misérables network), and
* uses the model as a capacity planner: timing predictions for networks
  far beyond what the Python simulator would care to simulate.
"""


from repro.analysis import print_table
from repro.core import distributed_betweenness, predict_rounds, rounds_upper_bound
from repro.graphs import (
    balanced_tree,
    connected_erdos_renyi_graph,
    cycle_graph,
    grid_graph,
    karate_club_graph,
    les_miserables_graph,
    path_graph,
)

from .conftest import once

GRAPHS = [
    path_graph(40),
    cycle_graph(40),
    grid_graph(6, 6),
    balanced_tree(2, 5),
    karate_club_graph(),
    les_miserables_graph()[0],
    connected_erdos_renyi_graph(40, 0.1, seed=5),
]


def test_model_matches_simulator_exactly(benchmark):
    def sweep():
        rows = []
        for graph in GRAPHS:
            model = predict_rounds(graph)
            run = distributed_betweenness(graph, arithmetic="lfloat")
            rows.append(
                (
                    graph.name,
                    graph.num_nodes,
                    model.diameter,
                    run.rounds,
                    model.total_rounds,
                    run.rounds == model.total_rounds,
                    rounds_upper_bound(graph.num_nodes, model.diameter),
                )
            )
        return rows

    rows = once(benchmark, sweep)
    print_table(
        ["graph", "N", "D", "measured rounds", "predicted", "exact?",
         "6N+8D+3 bound"],
        rows,
        title="E20 closed-form round model vs simulator",
    )
    for row in rows:
        assert row[5], "{} prediction missed".format(row[0])
        assert row[3] <= row[6]


def test_capacity_planning_without_simulation(benchmark):
    """The model scales to sizes the simulator never could."""

    # predict_rounds costs one BFS per node (O(N M)) — far cheaper than
    # simulating Theta(M N) message deliveries round by round, though
    # still quadratic; N = 1024 evaluates in well under a second where
    # the simulator would churn through ~2 million deliveries.
    def plan():
        rows = []
        for n in (128, 256, 512, 1_024):
            graph = cycle_graph(n)
            model = predict_rounds(graph)
            rows.append(
                (n, model.diameter, model.t_max, model.total_rounds,
                 model.total_rounds / n)
            )
        return rows

    rows = once(benchmark, plan)
    print_table(
        ["N (cycle)", "D", "T_max", "predicted rounds", "rounds/N"],
        rows,
        title="E20 capacity planning via the model (no simulation)",
    )
    ratios = [r[-1] for r in rows]
    assert max(ratios) - min(ratios) < 0.5  # the constant converges
