"""E1 — Figure 1: the paper's worked example, reproduced number by number.

Regenerates the five sending-time tables of Figure 1 (a)–(e), the psi /
dependency walkthrough of Section VII, and CB(v2) = 7/2, from both the
analytic schedule and the actual simulator run.
"""

from fractions import Fraction

from repro.analysis import print_table
from repro.centrality import brandes_betweenness
from repro.core import (
    bfs_start_times,
    distributed_betweenness,
    figure1_tables,
    sending_times,
)
from repro.graphs import figure1_graph

from .conftest import once

#: The sending times printed in Figure 1, via T_s(v) = T_s + D - d(s, v)
#: with the shortcut-DFS start times T = (0, 2, 4, 6, 8) and D = 3.
PAPER_TABLES = {
    0: {0: 3, 1: 2, 2: 1, 3: 0, 4: 1},   # BFS(v1)
    1: {0: 4, 1: 5, 2: 4, 3: 3, 4: 4},   # BFS(v2)
    2: {0: 5, 1: 6, 2: 7, 3: 6, 4: 5},   # BFS(v3)
    3: {0: 6, 1: 7, 2: 8, 3: 9, 4: 8},   # BFS(v4)
    4: {0: 9, 1: 10, 2: 9, 3: 10, 4: 11},  # BFS(v5)
}


def test_sending_time_tables(benchmark):
    tables = once(benchmark, figure1_tables)
    assert tables == PAPER_TABLES
    graph = figure1_graph()
    start = bfs_start_times(graph, 0, mode="shortcut")
    for s in graph.nodes():
        print_table(
            ["node", "T_{}(v) = T_s + D - d".format("v" + str(s + 1))],
            [["v{}".format(v + 1), tables[s][v]] for v in graph.nodes()],
            title="Figure 1({}) — BFS(v{}), T_s = {}".format(
                "abcde"[s], s + 1, start[s]
            ),
        )


def test_paper_quoted_sending_times_of_v4(benchmark):
    tables = once(benchmark, figure1_tables)
    v4 = 3
    quoted = {0: 0, 1: 3, 2: 6, 4: 10}  # from the Section VII text
    for s, expected in quoted.items():
        assert tables[s][v4] == expected


def test_dependency_walkthrough(benchmark):
    """psi_v1(v3) = psi_v1(v5) = 1/2, delta_v1(v2) = 3, CB(v2) = 7/2."""
    graph = figure1_graph()
    result = once(
        benchmark, distributed_betweenness, graph, arithmetic="exact"
    )
    assert result.dependency(0, 1) == Fraction(3)
    assert result.betweenness_exact[1] == Fraction(7, 2)
    assert result.betweenness_exact == brandes_betweenness(graph, exact=True)
    print_table(
        ["node", "CB (distributed)", "CB (Brandes)"],
        [
            ["v{}".format(v + 1), str(result.betweenness_exact[v]),
             str(brandes_betweenness(graph, exact=True)[v])]
            for v in graph.nodes()
        ],
        title="Figure 1 betweenness values (rounds={}, D={})".format(
            result.rounds, result.diameter
        ),
    )


def test_simulator_schedule_matches_formula(benchmark):
    """The live run's aggregation sends follow T_s + D - d(s, u)."""
    graph = figure1_graph()
    result = once(
        benchmark, distributed_betweenness, graph, arithmetic="exact"
    )
    live = sending_times(graph, result.start_times, result.diameter)
    for s in graph.nodes():
        for v in graph.nodes():
            assert (
                live[s][v]
                == result.start_times[s] + result.diameter
                - abs_dist(graph, s, v)
            )


def abs_dist(graph, s, v):
    from repro.graphs import bfs_distances

    return bfs_distances(graph, s)[v]
