"""E16 — sharded multi-process runtime: identity, traffic split, memory.

The shard engine partitions the node set across worker processes that
exchange wire-encoded cross-shard frames each round (`docs/sharding.md`).
This benchmark drives it three ways and writes ``BENCH_shard.json``:

* **Identity matrix** — family × N × protocol × worker-count rows, each
  checked bit-identical against the event engine (betweenness, rounds,
  bits, messages, series, worst edge).  These are the hard regression
  gates `repro bench compare` enforces.
* **Traffic split** — the partition's edge cut and the cross-shard
  share of the (unchanged) billed totals.
* **Memory split** — a large-N run recording per-shard ledger words:
  the Theta(N^2)-records ledger divides across processes, which is the
  memory ceiling sharding lifts.

**Honest timing.**  This container is single-core (the payload records
``cpu_count``), so a multi-process runtime *cannot* show wall-clock
speedup here — the W workers time-slice one core and pay IPC on top.
Rows therefore carry three clearly-separated figures: ``event_seconds``
(single-process wall), ``shard_seconds`` (sharded wall — expected to be
*larger* on one core), and ``shard_cpu_seconds`` (total CPU across the
coordinator and all workers, via ``os.times`` children counters).
``projected_speedup = workers * event_seconds / shard_cpu_seconds`` is
the speedup an ideal W-core machine with perfect overlap would see —
a projection, labelled as such, gated only softly (and not at all
under ``--no-wall``).
"""

import json
import os
import time
from pathlib import Path

from repro.analysis import print_table
from repro.core import distributed_betweenness
from repro.graphs import cycle_graph, grid_graph, path_graph

from .conftest import once

SIZES = (100, 200)
WORKER_COUNTS = (2, 4)
PARTITIONER = "greedy"
FAMILIES = {
    "path": path_graph,
    "cycle": cycle_graph,
    "grid": lambda n: grid_graph(int(n ** 0.5), int(n ** 0.5)),
}
PROTOCOLS = ("hua-bc", "cfp-bc")
MEMORY_N = 2000
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _fingerprint(result):
    """Everything the engines must agree on, in comparable form."""
    return (
        sorted(result.betweenness.items()),
        result.diameter,
        result.rounds,
        sorted(result.start_times.items()),
        result.stats.summary(),
        result.stats.round_series,
        result.stats.worst_edge,
    )


def _cpu_seconds():
    """CPU seconds of this process *and* its reaped children."""
    t = os.times()
    return t.user + t.system + t.children_user + t.children_system


def measure(sizes=SIZES, families=None, worker_counts=WORKER_COUNTS,
            protocols=PROTOCOLS):
    """One row per family × N × protocol × W, checked against event.

    The full protocol matrix runs on the largest size only (the rival
    protocol's schedule differs, not its sharding), keeping the
    benchmark's runtime linear in the interesting axis — worker count.
    """
    families = dict(FAMILIES) if families is None else families
    rows = []
    for family, build in sorted(families.items()):
        for n in sizes:
            graph = build(n)
            for protocol in protocols:
                if protocol != protocols[0] and (
                    family != "cycle" or n != max(sizes)
                ):
                    continue
                start = time.perf_counter()
                reference = distributed_betweenness(
                    graph, arithmetic="lfloat", engine="event",
                    protocol=protocol,
                )
                event_seconds = time.perf_counter() - start
                ref_print = _fingerprint(reference)
                for workers in worker_counts:
                    cpu0 = _cpu_seconds()
                    start = time.perf_counter()
                    sharded = distributed_betweenness(
                        graph,
                        arithmetic="lfloat",
                        engine="shard",
                        workers=workers,
                        partitioner=PARTITIONER,
                        protocol=protocol,
                    )
                    shard_seconds = time.perf_counter() - start
                    shard_cpu = _cpu_seconds() - cpu0
                    summary = sharded.stats.summary()
                    shard = sharded.stats.shard
                    rows.append({
                        "family": family,
                        "n": graph.num_nodes,
                        "protocol": protocol,
                        "workers": workers,
                        "partitioner": PARTITIONER,
                        "rounds": sharded.rounds,
                        "bits": summary["bits"],
                        "messages": summary["messages"],
                        "identical_results":
                            _fingerprint(sharded) == ref_print,
                        "edge_cut": shard["edge_cut"],
                        "cross_messages": shard["cross_messages"],
                        "cross_bits": shard["cross_bits"],
                        "max_shard_ledger_words": max(
                            e["ledger_words"] for e in shard["per_shard"]
                        ),
                        "total_ledger_words": sum(
                            e["ledger_words"] for e in shard["per_shard"]
                        ),
                        "event_seconds": round(event_seconds, 4),
                        "shard_seconds": round(shard_seconds, 4),
                        "shard_cpu_seconds": round(shard_cpu, 4),
                        "projected_speedup": round(
                            workers * event_seconds / shard_cpu, 3
                        ) if shard_cpu > 0 else None,
                    })
    return rows


def measure_memory_split(n=MEMORY_N, workers=4):
    """Per-shard ledger words at large N — no event baseline (identity
    is gated at the matrix sizes; rerunning single-process at this N
    would only re-measure what the ceiling *was*)."""
    graph = path_graph(n)
    start = time.perf_counter()
    result = distributed_betweenness(
        graph, arithmetic="lfloat", engine="shard", workers=workers,
        partitioner=PARTITIONER,
    )
    elapsed = time.perf_counter() - start
    shard = result.stats.shard
    per_shard = [e["ledger_words"] for e in shard["per_shard"]]
    return {
        "family": "path",
        "n": n,
        "workers": workers,
        "partitioner": PARTITIONER,
        "rounds": result.rounds,
        "per_shard_ledger_words": per_shard,
        "max_shard_ledger_words": max(per_shard),
        "total_ledger_words": sum(per_shard),
        "max_shard_fraction": round(max(per_shard) / sum(per_shard), 4),
        "shard_seconds": round(elapsed, 2),
    }


def write_json(rows, memory=None, path=OUTPUT):
    payload = {
        "benchmark": "shard_runtime",
        "arithmetic": "lfloat",
        "partitioner": PARTITIONER,
        "cpu_count": os.cpu_count(),
        "timing_note": (
            "measured on a {}-core container: shard_seconds is honest "
            "wall time (multi-process cannot beat single-process on one "
            "core), shard_cpu_seconds the total CPU across all "
            "processes, projected_speedup the workers*event/cpu "
            "projection for an ideal W-core host".format(os.cpu_count())
        ),
        "rows": rows,
        "summary": {
            "all_identical": all(r["identical_results"] for r in rows),
            "max_cross_bits_fraction": max(
                r["cross_bits"] / r["bits"] for r in rows
            ),
            "memory_split": memory,
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _print_rows(rows, title):
    print_table(
        ["family", "N", "protocol", "W", "cut", "cross bits",
         "event s", "shard s", "cpu s", "identical"],
        [
            [r["family"], r["n"], r["protocol"], r["workers"],
             r["edge_cut"], r["cross_bits"], r["event_seconds"],
             r["shard_seconds"], r["shard_cpu_seconds"],
             r["identical_results"]]
            for r in rows
        ],
        title=title,
    )


def test_shard_identity_and_traffic_split(benchmark):
    rows = once(benchmark, measure)
    memory = measure_memory_split()
    payload = write_json(rows, memory=memory)
    _print_rows(rows, "E16 shard runtime -> {}".format(OUTPUT.name))
    assert payload["summary"]["all_identical"]
    for row in rows:
        # Cross-shard traffic is a *view* of the billed totals: a strict
        # subset, never extra bits.
        assert 0 < row["cross_bits"] < row["bits"]
        assert 0 < row["cross_messages"] < row["messages"]
        # The ledger actually splits: no shard holds the whole thing.
        assert row["max_shard_ledger_words"] < row["total_ledger_words"]
    # The memory run demonstrates the ceiling lift: with 4 balanced
    # shards no process holds more than ~a third of the records.
    assert memory["max_shard_fraction"] < 0.35
