"""E19 — the CONGEST primitives: leader election and tree building in O(D).

The paper assumes BFS(u0) "rooted in a randomly selected vertex" as
given.  The primitives library discharges that premise inside the
model; this bench verifies both primitives scale with the *diameter*,
not with N:

* leader election (competing BFS candidacies) on paths vs complete
  graphs — rounds track D while N grows;
* BFS tree + census — likewise O(D).
"""


from repro.analysis import linear_fit, print_table
from repro.congest import elect_root, make_bfs_tree_factory, run_protocol
from repro.graphs import complete_graph, diameter, path_graph

from .conftest import once


def election_sweep():
    rows = []
    for graph in [path_graph(n) for n in (8, 16, 32, 64)] + [
        complete_graph(n) for n in (8, 16, 32, 64)
    ]:
        leader, rounds = elect_root(graph)
        rows.append((graph.name, graph.num_nodes, diameter(graph), rounds))
    return rows


def test_election_rounds_track_diameter(benchmark):
    rows = once(benchmark, election_sweep)
    print_table(
        ["graph", "N", "D", "election rounds"],
        rows,
        title="E19 leader election: O(D) rounds, independent of N",
    )
    paths = [r for r in rows if r[0].startswith("path")]
    completes = [r for r in rows if r[0].startswith("complete")]
    # on paths rounds grow with D ~ N
    fit = linear_fit([r[2] for r in paths], [r[3] for r in paths])
    assert fit.r_squared > 0.99
    assert 1 <= fit.slope <= 4
    # on complete graphs (D = 1) rounds are flat while N octuples
    complete_rounds = [r[3] for r in completes]
    assert max(complete_rounds) - min(complete_rounds) <= 2


def test_bfs_tree_census_rounds(benchmark):
    def sweep():
        rows = []
        for n in (8, 16, 32, 64):
            graph = path_graph(n)
            nodes, stats = run_protocol(graph, make_bfs_tree_factory(0))
            assert nodes[0].census == n
            rows.append((n, diameter(graph), stats.rounds))
        return rows

    rows = once(benchmark, sweep)
    print_table(
        ["N", "D", "tree+census rounds"],
        rows,
        title="E19 BFS tree with census: O(D) rounds",
    )
    for n, d, rounds in rows:
        assert rounds <= 3 * d + 8
