"""E18 — protocol anatomy: message complexity, phase by phase.

Beyond round complexity, the protocol's *message* complexity has exact
closed forms, all O(N·M):

=============  =========================================
TreeWave       2M            (every node broadcasts once)
TreeJoin       N − 1         (one join per tree edge)
SubtreeCount   N − 1
Announce       N − 1
DfsToken       2(N − 1)      (Euler tour of the tree)
BfsWave        2MN           (every node re-broadcasts every wave)
DoneReport     N − 1
AggStart       N − 1
AggValue       Σ_{u, s≠u} |P_s(u)|  (one send per predecessor link)
=============  =========================================

The traced run verifies every row and prints the round-timeline
"figure" showing the three phases of the algorithm.
"""

import pytest

from repro.analysis import print_table
from repro.congest import Tracer
from repro.core import distributed_betweenness
from repro.graphs import (
    grid_graph,
    karate_club_graph,
    predecessor_sets,
)

from .conftest import once

GRAPHS = [karate_club_graph(), grid_graph(4, 5)]


def traced_run(graph):
    tracer = Tracer()
    result = distributed_betweenness(graph, arithmetic="lfloat", tracer=tracer)
    return tracer, result


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_message_complexity_closed_forms(benchmark, graph):
    tracer, result = once(benchmark, traced_run, graph)
    n, m = graph.num_nodes, graph.num_edges
    pred_links = sum(
        len(predecessor_sets(graph, s)[u])
        for s in graph.nodes()
        for u in graph.nodes()
    )
    expected = {
        "TreeWave": 2 * m,
        "TreeJoin": n - 1,
        "SubtreeCount": n - 1,
        "Announce": n - 1,
        "DfsToken": 2 * (n - 1),
        "BfsWave": 2 * m * n,
        "DoneReport": n - 1,
        "AggStart": n - 1,
        "AggValue": pred_links,
    }
    summary = tracer.summary()
    rows = [
        (name, summary[name]["count"], expected[name],
         summary[name]["first_round"], summary[name]["last_round"])
        for name in expected
    ]
    print_table(
        ["message", "measured", "closed form", "first round", "last round"],
        rows,
        title="E18 message complexity on {} (N={}, M={})".format(
            graph.name, n, m
        ),
    )
    for name, measured, predicted, _f, _l in rows:
        assert measured == predicted, name
    print(tracer.timeline(width=64))
    print()


def test_phase_boundaries_ordered(benchmark):
    tracer, result = once(benchmark, traced_run, karate_club_graph())
    order = ["TreeWave", "BfsWave", "DoneReport", "AggStart", "AggValue"]
    firsts = [tracer.rounds_active(name)[0] for name in order]
    assert firsts == sorted(firsts)
    # aggregation ends the run
    assert tracer.rounds_active("AggValue")[1] >= result.rounds - 3
