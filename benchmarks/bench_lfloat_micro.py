"""E21 — micro-benchmarks of the Section VI arithmetic.

The CONGEST model charges nothing for local computation, but an
implementer pays for it; these micro-benchmarks price the L-float
operations (bit-true integer arithmetic) against Python's exact
integers/fractions, and confirm the costs stay flat in the *value
magnitude* (the whole point: 2^1000 costs the same as 7).
"""

from fractions import Fraction


from repro.arithmetic import LFloat, Rounding

PRECISION = 24
SMALL = LFloat.from_int(12345, PRECISION, Rounding.CEIL)
HUGE = LFloat.from_int(2**1000 + 12345, PRECISION, Rounding.CEIL)
SMALL_INT = 12345
HUGE_INT = 2**1000 + 12345


def test_lfloat_add_small(benchmark):
    result = benchmark(lambda: SMALL.add(SMALL, Rounding.CEIL))
    assert result.to_fraction() >= 2 * SMALL.to_fraction() * (1 - 2**-20)


def test_lfloat_add_huge(benchmark):
    result = benchmark(lambda: HUGE.add(HUGE, Rounding.CEIL))
    assert result.exponent == HUGE.exponent + 1


def test_lfloat_mul(benchmark):
    result = benchmark(lambda: HUGE.mul(SMALL, Rounding.NEAREST))
    assert not result.is_zero


def test_lfloat_reciprocal(benchmark):
    result = benchmark(lambda: HUGE.reciprocal(Rounding.FLOOR))
    assert result.exponent < 0


def test_lfloat_encode_decode(benchmark):
    def roundtrip():
        return LFloat.decode(HUGE.encode(), PRECISION)

    assert benchmark(roundtrip).to_fraction() == HUGE.to_fraction()


def test_exact_int_add_huge_baseline(benchmark):
    benchmark(lambda: HUGE_INT + HUGE_INT)


def test_exact_fraction_add_baseline(benchmark):
    a = Fraction(1, HUGE_INT)
    benchmark(lambda: a + a)


def test_lfloat_magnitude_independence(benchmark):
    """Cost of an add must not grow with the represented magnitude."""
    import timeit

    def measure(value):
        return min(
            timeit.repeat(
                lambda: value.add(value, Rounding.CEIL), number=2000, repeat=3
            )
        )

    def both():
        return measure(SMALL), measure(HUGE)

    small_t, huge_t = benchmark.pedantic(both, rounds=1, iterations=1)
    # identical mantissa widths => comparable cost (generous 3x band
    # for timer noise)
    assert huge_t < 3 * small_t + 1e-3
