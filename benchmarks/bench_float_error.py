"""E8 — Section VI / Theorem 1 / Corollary 1: floating-point error bounds.

Sweeps the precision L on fixed graphs (error must shrink as ~2^-L,
within the Theorem 1 envelope) and sweeps N at the automatic
L = 3 log2 N (error must stay polynomially small in N, Corollary 1).
"""

import pytest

from repro.analysis import print_table
from repro.arithmetic import (
    corollary1_error,
    lemma1_bound,
    recommended_precision,
    theorem1_bound,
)
from repro.centrality import brandes_betweenness
from repro.core import distributed_betweenness
from repro.graphs import (
    connected_erdos_renyi_graph,
    diamond_chain_graph,
    grid_graph,
    karate_club_graph,
)

from .conftest import once


def max_rel_error(graph, result, reference):
    worst = 0.0
    for v in graph.nodes():
        if reference[v]:
            worst = max(
                worst, abs(result.betweenness[v] / float(reference[v]) - 1.0)
            )
    return worst


def precision_sweep(graph, precisions):
    reference = brandes_betweenness(graph, exact=True)
    rows = []
    for precision in precisions:
        result = distributed_betweenness(
            graph, arithmetic="lfloat-{}".format(precision)
        )
        rows.append(
            (
                precision,
                max_rel_error(graph, result, reference),
                lemma1_bound(precision),
                theorem1_bound(precision, graph.num_nodes, result.diameter),
            )
        )
    return rows


@pytest.mark.parametrize(
    "graph",
    [karate_club_graph(), grid_graph(4, 5),
     connected_erdos_renyi_graph(24, 0.2, seed=6)],
    ids=lambda g: g.name,
)
def test_error_shrinks_with_precision(benchmark, graph):
    rows = once(benchmark, precision_sweep, graph, (10, 14, 18, 22, 26))
    print_table(
        ["L", "measured max rel err", "2^(1-L)", "Theorem 1 envelope"],
        rows,
        title="E8 precision sweep on {}".format(graph.name),
    )
    for precision, measured, _lemma, envelope in rows:
        assert measured <= envelope
    # monotone improvement across a 16-bit precision gap
    assert rows[-1][1] <= rows[0][1]


def test_corollary1_automatic_precision(benchmark):
    def sweep():
        rows = []
        for k in (4, 8, 12, 16, 20):
            graph = diamond_chain_graph(k)
            precision = recommended_precision(graph.num_nodes)
            reference = brandes_betweenness(graph, exact=True)
            result = distributed_betweenness(graph, arithmetic="lfloat")
            rows.append(
                (
                    graph.num_nodes,
                    precision,
                    max_rel_error(graph, result, reference),
                    corollary1_error(graph.num_nodes, 3.0),
                )
            )
        return rows

    rows = once(benchmark, sweep)
    print_table(
        ["N", "L = 3 log2 N", "measured max rel err", "N^-(c-2)"],
        rows,
        title="E8 Corollary 1: error at automatic precision "
        "(diamond chains, sigma = 2^k)",
    )
    for _n, _precision, measured, scale in rows:
        assert measured <= max(scale, 1e-9)


def test_exact_vs_lfloat_values_agree(benchmark):
    """The two arithmetic modes agree to the error envelope on one run."""
    graph = karate_club_graph()
    result = once(benchmark, distributed_betweenness, graph, "lfloat")
    exact = distributed_betweenness(graph, arithmetic="exact")
    for v in graph.nodes():
        reference = exact.betweenness[v]
        if reference:
            assert abs(result.betweenness[v] / reference - 1.0) < 1e-2
