"""E22 — how tight is the CONGEST constant?  Budget sensitivity ablation.

Lemma 3/5 say O(log N) bits per edge-round suffice; the O hides a
constant.  This bench binary-searches the *minimum* ``congest_factor``
(budget = factor × max(4, ⌈log₂N⌉) bits) at which the L-float protocol
completes without a violation, per graph family — the measured constant
of the paper's model compliance, and the headroom the default factor 32
leaves.
"""


from repro.analysis import print_table
from repro.core import distributed_betweenness
from repro.exceptions import CongestViolationError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    karate_club_graph,
    path_graph,
)

from .conftest import once

GRAPHS = [
    path_graph(24),
    cycle_graph(24),
    grid_graph(5, 5),
    complete_graph(12),
    karate_club_graph(),
]


def minimum_factor(graph, lo=1, hi=64):
    """Smallest congest_factor that completes without a violation."""
    def passes(factor):
        try:
            distributed_betweenness(
                graph, arithmetic="lfloat", congest_factor=factor
            )
            return True
        except CongestViolationError:
            return False

    assert passes(hi)
    while lo < hi:
        mid = (lo + hi) // 2
        if passes(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def test_minimum_budget_factors(benchmark):
    def sweep():
        rows = []
        for graph in GRAPHS:
            factor = minimum_factor(graph)
            run = distributed_betweenness(
                graph, arithmetic="lfloat", congest_factor=factor
            )
            rows.append(
                (
                    graph.name,
                    graph.num_nodes,
                    factor,
                    run.stats.max_edge_bits_per_round,
                    32 / factor,
                )
            )
        return rows

    rows = once(benchmark, sweep)
    print_table(
        ["graph", "N", "min factor", "max bits/edge/round at min",
         "default headroom (x)"],
        rows,
        title="E22 minimal CONGEST budget (budget = factor * "
        "max(4, log2 N) bits)",
    )
    for _name, _n, factor, _bits, _headroom in rows:
        # the protocol genuinely needs only a modest constant...
        assert factor <= 20
        # ...and the default leaves real headroom
        assert factor < 32


def test_minimum_factor_stable_in_n(benchmark):
    """The minimal constant does not grow with N (it IS a constant)."""

    def sweep():
        return [(n, minimum_factor(cycle_graph(n))) for n in (16, 32, 64)]

    rows = once(benchmark, sweep)
    print_table(
        ["N (cycle)", "min factor"],
        rows,
        title="E22 the constant stays constant",
    )
    factors = [f for _, f in rows]
    assert max(factors) - min(factors) <= 3
