"""E15 — execution-engine comparison: event-driven vs lockstep sweep.

The sweep engine steps all N nodes every round; under the paper's
pipelined schedule most of those steps are no-ops (a node settles each
source once and sends each aggregation value at one scheduled round).
The event engine steps only active nodes, so its work tracks the
protocol's true activity volume instead of N × rounds.

This benchmark times both engines on the high-diameter families from E6
(where idle rounds dominate), checks the outputs are bit-identical, and
writes the measured trajectory to ``BENCH_engine.json`` at the repo
root.  On a single-core container the observed end-to-end speedup is
roughly 2× at N ≥ 200; the theoretical ceiling is the step-count ratio
(≈ 5.4× on paths — see ``docs/simulator.md``), which Python-level
per-step costs keep out of reach.

Timings are wall-clock and noisy on shared machines, so measurements
interleave the engines and keep the best of ``REPS`` repetitions; the
hard assertions are deliberately conservative (event must not be
*slower* at N ≥ 200) while the table and JSON report the actual ratio.
"""

import json
import time
from pathlib import Path

from repro.analysis import print_table
from repro.core import distributed_betweenness
from repro.graphs import cycle_graph, path_graph
from repro.obs import Telemetry
from repro.wire import (
    BfsWave,
    IntMessage,
    WireFormat,
    encode_frame,
    registered_types,
)

from .conftest import once

SIZES = (100, 200, 300, 400)
FAMILIES = {"path": path_graph, "cycle": cycle_graph}
REPS = 2
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _fingerprint(result):
    """Everything the two engines must agree on, in comparable form."""
    return (
        sorted(result.betweenness.items()),
        result.diameter,
        result.rounds,
        sorted(result.start_times.items()),
        result.stats.summary(),
        result.stats.round_series,
        result.stats.worst_edge,
    )


def measure(sizes=SIZES, families=None, reps=REPS):
    """Time both engines on each family × size; best-of-``reps``.

    The engines are interleaved within each repetition so ambient noise
    (another process, thermal drift) hits both roughly equally.  Returns
    one row dict per instance with the best wall-clock per engine, the
    speedup, the result-identity check, and a ``phases`` map of
    per-phase round counts — collected by one extra telemetry-carrying
    run *outside* the timed repetitions, so the timed runs keep the
    telemetry-disabled fast path.
    """
    families = dict(FAMILIES) if families is None else families
    rows = []
    for family, build in sorted(families.items()):
        for n in sizes:
            graph = build(n)
            best = {}
            outputs = {}
            for _ in range(max(1, reps)):
                for engine in ("sweep", "event"):
                    start = time.perf_counter()
                    result = distributed_betweenness(
                        graph, arithmetic="lfloat", engine=engine
                    )
                    elapsed = time.perf_counter() - start
                    if engine not in best or elapsed < best[engine]:
                        best[engine] = elapsed
                    outputs[engine] = _fingerprint(result)
            telemetry = Telemetry()
            distributed_betweenness(
                graph, arithmetic="lfloat", engine="event", telemetry=telemetry
            )
            rows.append(
                {
                    "family": family,
                    "n": n,
                    "rounds": outputs["event"][2],
                    "sweep_seconds": round(best["sweep"], 4),
                    "event_seconds": round(best["event"], 4),
                    "speedup": round(best["sweep"] / best["event"], 3),
                    "identical_results": outputs["sweep"] == outputs["event"],
                    "phases": telemetry.phases.rounds_by_phase(),
                }
            )
    return rows


def write_json(rows, path=OUTPUT):
    """Persist the measured trajectory as ``BENCH_engine.json``."""
    big = [row for row in rows if row["n"] >= 200]
    payload = {
        "benchmark": "engine_comparison",
        "arithmetic": "lfloat",
        "engines": ["sweep", "event"],
        "reps": REPS,
        "rows": rows,
        "summary": {
            "all_identical": all(row["identical_results"] for row in rows),
            "min_speedup_n_ge_200": min(
                (row["speedup"] for row in big), default=None
            ),
            "max_speedup": max(row["speedup"] for row in rows),
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _print_rows(rows, title):
    print_table(
        ["family", "N", "rounds", "sweep s", "event s", "speedup", "identical"],
        [
            [
                row["family"],
                row["n"],
                row["rounds"],
                row["sweep_seconds"],
                row["event_seconds"],
                row["speedup"],
                row["identical_results"],
            ]
            for row in rows
        ],
        title=title,
    )


def test_engine_speedup_and_identity(benchmark):
    rows = once(benchmark, measure)
    payload = write_json(rows)
    _print_rows(
        rows,
        "E15 engine comparison (best of {} interleaved reps) -> {}".format(
            REPS, OUTPUT.name
        ),
    )
    # Bit-identical outputs on every instance, both engines.
    assert payload["summary"]["all_identical"]
    big = [row for row in rows if row["n"] >= 200]
    assert big, "benchmark must cover N >= 200"
    # Conservative gate (noise-proof); the JSON holds the real ratio.
    assert all(row["speedup"] > 1.0 for row in big)
    # The telemetry run must have seen all four protocol phases, with
    # the phase rounds partitioning the run (minus the final quiet round).
    for row in rows:
        assert sorted(row["phases"]) == [
            "aggregation",
            "counting",
            "diameter_broadcast",
            "tree_build",
        ]
        assert sum(row["phases"].values()) <= row["rounds"]


# ----------------------------------------------------------------------
# message-layer micro-benchmark (wire codec + __slots__ messages)
# ----------------------------------------------------------------------
MESSAGE_COUNT = 100_000
FRAME_BATCH = 2_048


def measure_message_layer(count=MESSAGE_COUNT, batch=FRAME_BATCH):
    """Bulk construction + exact sizing + frame encoding throughput.

    Every message class carries ``__slots__`` and memoizes its encoded
    width, so the simulator's hot loop (construct, size, bill) stays
    allocation-light.  Rates are wall-clock and machine-dependent; the
    test's gates are set an order of magnitude below anything a working
    implementation produces, so they only trip on a real regression
    (e.g. a message type silently growing a ``__dict__``).
    """
    wire = WireFormat(1024)

    start = time.perf_counter()
    total_bits = 0
    for i in range(count):
        message = BfsWave(i & 1023, i & 4095, i & 1023, (i & 0xFFFF) + 1)
        total_bits += message.bit_size(wire)
    construct_seconds = time.perf_counter() - start

    shared = BfsWave(1, 2, 3, 4)
    start = time.perf_counter()
    for _ in range(count):
        shared.bit_size(wire)
    cached_seconds = time.perf_counter() - start

    frame = [IntMessage(i) for i in range(batch)]
    start = time.perf_counter()
    _word, frame_bits = encode_frame(frame, wire)
    encode_seconds = time.perf_counter() - start
    assert frame_bits == sum(m.bit_size(wire) for m in frame)

    return {
        "messages": count,
        "total_bits": total_bits,
        "construct_per_second": round(count / construct_seconds),
        "cached_size_per_second": round(count / cached_seconds),
        "frame_messages": batch,
        "frame_bits": frame_bits,
        "encode_per_second": round(batch / encode_seconds),
    }


def test_message_layer_microbench(benchmark):
    import repro.congest.primitives  # noqa: F401 -- registers tags 12-15

    stats = once(benchmark, measure_message_layer)
    print_table(
        ["metric", "value"],
        [[key, value] for key, value in stats.items()],
        title="E15b message-layer micro-benchmark",
    )
    # Every registered message type is slotted: no class in its MRO
    # lacks __slots__, so instances carry no __dict__ and the
    # bulk-construction path cannot regress by silent dict allocation.
    for cls in registered_types().values():
        assert all(
            hasattr(klass, "__slots__") for klass in cls.__mro__ if klass is not object
        ), cls.__name__
    # Conservative throughput gates (real rates are >10x higher).
    assert stats["construct_per_second"] > 20_000
    assert stats["cached_size_per_second"] > 100_000
    assert stats["encode_per_second"] > 10_000
