"""E15 — execution-engine comparison: sweep vs event vs vectorized bulk.

The sweep engine steps all N nodes every round; under the paper's
pipelined schedule most of those steps are no-ops (a node settles each
source once and sends each aggregation value at one scheduled round).
The event engine steps only active nodes, so its work tracks the
protocol's true activity volume instead of N × rounds.  The bulk engine
drops the round loop entirely: it derives the protocol's closed-form
schedule and executes it as numpy array programs (`docs/simulator.md`,
"Bulk engine"), so its cost tracks the total send volume.

This benchmark times all three engines on the high-diameter families
from E6 (where idle rounds dominate), checks the outputs are
bit-identical, and writes the measured trajectory to
``BENCH_engine.json`` at the repo root.  On a single-core container the
event engine lands around 2× over sweep and the bulk engine at 10-15×
(N ≥ 400), tapering slightly at N = 800 where the O(sends · log sends)
sort terms grow.

Timings are wall-clock and noisy on shared machines, so measurements
interleave the engines and keep the best of ``REPS`` repetitions; the
hard assertions are deliberately conservative while the table and JSON
report the actual ratios.

A scaling microbenchmark additionally gates the bulk engine's stats
reduction (:func:`repro.engines.bulk.populate_stats`): quadrupling N at
a fixed send volume must not materially change its runtime — the
reduction is O(active edges), never O(N × rounds).
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import print_table
from repro.core import distributed_betweenness
from repro.graphs import cycle_graph, path_graph
from repro.obs import Telemetry
from repro.wire import (
    BfsWave,
    IntMessage,
    WireFormat,
    encode_frame,
    registered_types,
)

from .conftest import once

SIZES = (100, 200, 400, 800)
ENGINES = ("sweep", "event", "bulk")
FAMILIES = {"path": path_graph, "cycle": cycle_graph}
REPS = 2
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _fingerprint(result):
    """Everything the two engines must agree on, in comparable form."""
    return (
        sorted(result.betweenness.items()),
        result.diameter,
        result.rounds,
        sorted(result.start_times.items()),
        result.stats.summary(),
        result.stats.round_series,
        result.stats.worst_edge,
    )


def measure(sizes=SIZES, families=None, reps=REPS, engines=ENGINES):
    """Time each engine on each family × size; best-of-``reps``.

    The engines are interleaved within each repetition so ambient noise
    (another process, thermal drift) hits them roughly equally.  Returns
    one row dict per instance with the best wall-clock per engine, the
    sweep-relative speedups, the result-identity check, and a ``phases``
    map of per-phase round counts — collected by one extra
    telemetry-carrying run *outside* the timed repetitions, so the timed
    runs keep the telemetry-disabled fast path.
    """
    families = dict(FAMILIES) if families is None else families
    rows = []
    for family, build in sorted(families.items()):
        for n in sizes:
            graph = build(n)
            best = {}
            outputs = {}
            for _ in range(max(1, reps)):
                for engine in engines:
                    start = time.perf_counter()
                    result = distributed_betweenness(
                        graph, arithmetic="lfloat", engine=engine
                    )
                    elapsed = time.perf_counter() - start
                    if engine not in best or elapsed < best[engine]:
                        best[engine] = elapsed
                    outputs[engine] = _fingerprint(result)
            telemetry = Telemetry()
            distributed_betweenness(
                graph, arithmetic="lfloat", engine="event", telemetry=telemetry
            )
            reference = outputs[engines[0]]
            reference_summary = reference[4]
            row = {
                "family": family,
                "n": n,
                "rounds": reference[2],
                # Structural metrics: machine-independent, so the
                # history ledger's regression gates require them to
                # match exactly across runs of an identical config.
                "bits": reference_summary["bits"],
                "messages": reference_summary["messages"],
                "identical_results": all(
                    outputs[engine] == reference for engine in engines
                ),
                "phases": telemetry.phases.rounds_by_phase(),
                # Aggregate NodeLedger footprint (records + CSR
                # predecessor links, in abstract words) — the array
                # ledger's memory trajectory, from the telemetry run's
                # finalize gauges.
                "ledger_words": telemetry.registry.gauge(
                    "ledger.words"
                ).value,
            }
            for engine in engines:
                row[engine + "_seconds"] = round(best[engine], 4)
            if "event" in best:
                row["event_speedup"] = round(best["sweep"] / best["event"], 3)
            if "bulk" in best:
                row["bulk_speedup"] = round(best["sweep"] / best["bulk"], 3)
            rows.append(row)
    return rows


def write_json(rows, path=OUTPUT):
    """Persist the measured trajectory as ``BENCH_engine.json``.

    The ``bulk_speedup`` summary maps each family to its best
    bulk-over-sweep ratio at N ≥ 400 — the acceptance regime for the
    vectorized engine.
    """
    big = [row for row in rows if row["n"] >= 200]
    bulk_speedup = {}
    for row in rows:
        if row["n"] >= 400 and "bulk_speedup" in row:
            family = row["family"]
            bulk_speedup[family] = max(
                bulk_speedup.get(family, 0.0), row["bulk_speedup"]
            )
    payload = {
        "benchmark": "engine_comparison",
        "arithmetic": "lfloat",
        "engines": list(ENGINES),
        "reps": REPS,
        "rows": rows,
        "summary": {
            "all_identical": all(row["identical_results"] for row in rows),
            "peak_ledger_words": max(
                (row["ledger_words"] for row in rows
                 if row.get("ledger_words") is not None),
                default=None,
            ),
            "min_event_speedup_n_ge_200": min(
                (row["event_speedup"] for row in big if "event_speedup" in row),
                default=None,
            ),
            "bulk_speedup": bulk_speedup or None,
            "families_ge_10x_at_n_ge_400": sum(
                1 for ratio in bulk_speedup.values() if ratio >= 10.0
            ),
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _print_rows(rows, title):
    print_table(
        [
            "family",
            "N",
            "rounds",
            "sweep s",
            "event s",
            "bulk s",
            "event x",
            "bulk x",
            "identical",
        ],
        [
            [
                row["family"],
                row["n"],
                row["rounds"],
                row["sweep_seconds"],
                row.get("event_seconds", "-"),
                row.get("bulk_seconds", "-"),
                row.get("event_speedup", "-"),
                row.get("bulk_speedup", "-"),
                row["identical_results"],
            ]
            for row in rows
        ],
        title=title,
    )


def test_engine_speedup_and_identity(benchmark):
    rows = once(benchmark, measure)
    payload = write_json(rows)
    _print_rows(
        rows,
        "E15 engine comparison (best of {} interleaved reps) -> {}".format(
            REPS, OUTPUT.name
        ),
    )
    # Bit-identical outputs on every instance, all engines.
    assert payload["summary"]["all_identical"]
    big = [row for row in rows if row["n"] >= 200]
    assert big, "benchmark must cover N >= 200"
    # Conservative gates (noise-proof); the JSON holds the real ratios.
    assert all(row["event_speedup"] > 1.0 for row in big)
    assert all(row["bulk_speedup"] > 3.0 for row in rows if row["n"] >= 400)
    assert payload["summary"]["families_ge_10x_at_n_ge_400"] >= 2
    # The telemetry run must have seen all four protocol phases, with
    # the phase rounds partitioning the run (minus the final quiet round).
    for row in rows:
        assert sorted(row["phases"]) == [
            "aggregation",
            "counting",
            "diameter_broadcast",
            "tree_build",
        ]
        assert sum(row["phases"].values()) <= row["rounds"]
        # The array ledger stores N records per node on the full
        # protocol: the aggregate words gauge must reflect that scale.
        assert row["ledger_words"] is not None
        assert row["ledger_words"] >= 4 * row["n"] * row["n"]


# ----------------------------------------------------------------------
# bulk stats-reduction scaling: O(active edges), never O(N x rounds)
# ----------------------------------------------------------------------
STATS_SENDS = 200_000


def measure_stats_scaling(sends=STATS_SENDS):
    """Time ``populate_stats`` at a fixed send volume while N grows 4x.

    A per-round accumulator that touched every node (the sweep's shape)
    would slow down ~4x; the bulk reduction groups the send inventory
    directly, so its runtime must track the send count alone (plus an
    O(rounds) tail for the round series, held constant here).
    """
    np = pytest.importorskip("numpy")
    from repro.congest.stats import SimulationStats
    from repro.engines.bulk import populate_stats

    rounds = 2_000
    timings = {}
    rng = np.random.default_rng(7)
    for n_nodes in (2_000, 8_000):
        r = np.sort(rng.integers(0, rounds, size=sends)).astype(np.int64)
        snd = rng.integers(0, n_nodes, size=sends).astype(np.int64)
        tgt = (snd + 1 + rng.integers(0, 3, size=sends)) % n_nodes
        bits = rng.integers(8, 64, size=sends).astype(np.int64)
        rank = np.arange(sends, dtype=np.int64)
        best = None
        for _ in range(3):
            stats = SimulationStats()
            start = time.perf_counter()
            populate_stats(stats, rounds, n_nodes, r, snd, tgt, bits, rank)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            assert stats.message_count == sends
        timings[n_nodes] = best
    return {
        "sends": sends,
        "rounds": rounds,
        "seconds_n_2000": round(timings[2_000], 4),
        "seconds_n_8000": round(timings[8_000], 4),
        "n_scaling_ratio": round(timings[8_000] / timings[2_000], 3),
    }


def test_bulk_stats_reduction_is_active_edge_bound(benchmark):
    stats = once(benchmark, measure_stats_scaling)
    print_table(
        ["metric", "value"],
        [[key, value] for key, value in stats.items()],
        title="E15c bulk stats-reduction scaling (fixed sends, N x4)",
    )
    # 4x the nodes at a fixed send volume: an O(N)-per-round accumulator
    # would show ~4x; allow generous noise headroom around flat.
    assert stats["n_scaling_ratio"] < 2.0


# ----------------------------------------------------------------------
# message-layer micro-benchmark (wire codec + __slots__ messages)
# ----------------------------------------------------------------------
MESSAGE_COUNT = 100_000
FRAME_BATCH = 2_048


def measure_message_layer(count=MESSAGE_COUNT, batch=FRAME_BATCH):
    """Bulk construction + exact sizing + frame encoding throughput.

    Every message class carries ``__slots__`` and memoizes its encoded
    width, so the simulator's hot loop (construct, size, bill) stays
    allocation-light.  Rates are wall-clock and machine-dependent; the
    test's gates are set an order of magnitude below anything a working
    implementation produces, so they only trip on a real regression
    (e.g. a message type silently growing a ``__dict__``).
    """
    wire = WireFormat(1024)

    start = time.perf_counter()
    total_bits = 0
    for i in range(count):
        message = BfsWave(i & 1023, i & 4095, i & 1023, (i & 0xFFFF) + 1)
        total_bits += message.bit_size(wire)
    construct_seconds = time.perf_counter() - start

    shared = BfsWave(1, 2, 3, 4)
    start = time.perf_counter()
    for _ in range(count):
        shared.bit_size(wire)
    cached_seconds = time.perf_counter() - start

    frame = [IntMessage(i) for i in range(batch)]
    start = time.perf_counter()
    _word, frame_bits = encode_frame(frame, wire)
    encode_seconds = time.perf_counter() - start
    assert frame_bits == sum(m.bit_size(wire) for m in frame)

    return {
        "messages": count,
        "total_bits": total_bits,
        "construct_per_second": round(count / construct_seconds),
        "cached_size_per_second": round(count / cached_seconds),
        "frame_messages": batch,
        "frame_bits": frame_bits,
        "encode_per_second": round(batch / encode_seconds),
    }


def test_message_layer_microbench(benchmark):
    import repro.congest.primitives  # noqa: F401 -- registers tags 12-15

    stats = once(benchmark, measure_message_layer)
    print_table(
        ["metric", "value"],
        [[key, value] for key, value in stats.items()],
        title="E15b message-layer micro-benchmark",
    )
    # Every registered message type is slotted: no class in its MRO
    # lacks __slots__, so instances carry no __dict__ and the
    # bulk-construction path cannot regress by silent dict allocation.
    for cls in registered_types().values():
        assert all(
            hasattr(klass, "__slots__") for klass in cls.__mro__ if klass is not object
        ), cls.__name__
    # Conservative throughput gates (real rates are >10x higher).
    assert stats["construct_per_second"] > 20_000
    assert stats["cached_size_per_second"] > 100_000
    assert stats["encode_per_second"] > 10_000
