"""E10 — Figure 3 / Lemma 9 / Theorem 6: the BC lower-bound gadget.

Verifies CB(F_i) ∈ {1, 1.5} with Brandes, then runs the *distributed*
algorithm over the gadget with the left/right cut instrumented: the
protocol's own flag betweenness answers set disjointness, and the
measured bits crossing the m+1-wide cut realize the Theorem 6 counting
argument.
"""

import pytest

from repro.analysis import print_table
from repro.centrality import brandes_betweenness
from repro.lowerbound import (
    build_bc_gadget,
    disjointness_bits_lower_bound,
    family_pair,
    solve_disjointness_via_bc,
)

from .conftest import once


@pytest.mark.parametrize("intersect", [True, False], ids=["match", "disjoint"])
def test_lemma9_flag_values(benchmark, intersect):
    x_family, y_family, m = family_pair(
        4, m=6, seed=17, force_intersection=intersect
    )

    def build_and_score():
        gadget = build_bc_gadget(x_family, y_family, m)
        return gadget, brandes_betweenness(gadget.graph, exact=True)

    gadget, bc = once(benchmark, build_and_score)
    rows = [
        (
            "F{}".format(i + 1),
            str(bc[gadget.f[i]]),
            str(gadget.expected_flag_centrality(i)),
        )
        for i in range(gadget.n)
    ]
    print_table(
        ["flag", "CB measured", "CB Lemma 9"],
        rows,
        title="E10 Figure 3 gadget ({}): N={}".format(
            "X∩Y≠∅" if intersect else "X∩Y=∅", gadget.graph.num_nodes
        ),
    )
    for i in range(gadget.n):
        assert bc[gadget.f[i]] == gadget.expected_flag_centrality(i)


@pytest.mark.parametrize("intersect", [True, False], ids=["match", "disjoint"])
def test_distributed_reduction(benchmark, intersect):
    x_family, y_family, m = family_pair(
        3, m=6, seed=29, force_intersection=intersect
    )
    outcome = once(benchmark, solve_disjointness_via_bc, x_family, y_family, m)
    print_table(
        ["metric", "value"],
        [
            ["gadget nodes", outcome.num_nodes],
            ["cut width (m + 1)", outcome.cut_width],
            ["protocol rounds", outcome.rounds],
            ["bits across cut", outcome.cut_bits],
            ["messages across cut", outcome.cut_messages],
            ["flag values", str([round(f, 3) for f in outcome.flag_values])],
            ["answer (intersects?)", outcome.intersects],
            ["ground truth", outcome.expected_intersects],
        ],
        title="E10 Theorem 6 reduction via the live protocol "
        "({})".format("X∩Y≠∅" if intersect else "X∩Y=∅"),
    )
    assert outcome.correct
    # every flag lands within 0.499 relative error of 1 or 1.5
    for value in outcome.flag_values:
        nearest = min((1.0, 1.5), key=lambda t: abs(value - t))
        assert abs(value / nearest - 1.0) < 0.499


def test_cut_traffic_dominated_by_information_need(benchmark):
    """Across instance sizes, cut traffic scales at least like n log n:
    the protocol cannot dodge the disjointness information it must move."""

    def sweep():
        rows = []
        for n in (2, 4, 8):
            x_family, y_family, m = family_pair(
                n, seed=31, force_intersection=True
            )
            outcome = solve_disjointness_via_bc(x_family, y_family, m)
            rows.append(
                (
                    n,
                    m,
                    outcome.num_nodes,
                    outcome.cut_width,
                    outcome.cut_bits,
                    disjointness_bits_lower_bound(n),
                )
            )
        return rows

    rows = once(benchmark, sweep)
    print_table(
        ["n", "m", "gadget N", "cut width", "measured cut bits",
         "DISJ bits Ω(n log n)"],
        rows,
        title="E10 cut traffic vs information lower bound",
    )
    for _n, _m, _nn, _w, measured, needed in rows:
        assert measured >= needed
