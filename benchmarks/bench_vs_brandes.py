"""E3 — Algorithm 1 baselines: Brandes vs naive vs networkx vs distributed.

Cross-validates all betweenness implementations on the same graphs and
times them.  The simulator is of course slower in *wall-clock* time than
centralized Brandes — it simulates every message of every round — but
the point of the paper is round complexity, reported alongside.
"""

import networkx as nx
import pytest

from repro.analysis import print_table
from repro.centrality import brandes_betweenness, naive_betweenness
from repro.core import distributed_betweenness
from repro.graphs import (
    connected_erdos_renyi_graph,
    grid_graph,
    karate_club_graph,
)
from repro.graphs.convert import to_networkx

from .conftest import once

GRAPHS = [
    karate_club_graph(),
    grid_graph(5, 5),
    connected_erdos_renyi_graph(30, 0.15, seed=12),
]


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_brandes_timing(benchmark, graph):
    bc = benchmark(brandes_betweenness, graph)
    theirs = nx.betweenness_centrality(to_networkx(graph), normalized=False)
    for v in graph.nodes():
        assert bc[v] == pytest.approx(theirs[v], abs=1e-9)


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_networkx_timing(benchmark, graph):
    nxg = to_networkx(graph)
    benchmark(nx.betweenness_centrality, nxg, normalized=False)


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_naive_timing(benchmark, graph):
    bc = once(benchmark, naive_betweenness, graph)
    reference = brandes_betweenness(graph, exact=True)
    assert bc == reference


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_distributed_simulation_timing(benchmark, graph):
    result = once(benchmark, distributed_betweenness, graph, "exact")
    reference = brandes_betweenness(graph, exact=True)
    assert result.betweenness_exact == reference
    print_table(
        ["metric", "value"],
        [
            ["N", graph.num_nodes],
            ["rounds (the paper's metric)", result.rounds],
            ["messages simulated", result.stats.message_count],
            ["exact match with Brandes", True],
        ],
        title="E3 distributed vs centralized on {}".format(graph.name),
    )
