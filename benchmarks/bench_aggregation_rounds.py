"""E5 — Algorithm 3 / Lemma 7: the aggregation phase takes O(N) rounds.

Measures the full protocol against the counting-only run; the
difference is the aggregation phase plus its O(D) control rounds, and
Lemma 7 predicts it is bounded by (max_s T_s) + D + O(D) = O(N).
"""

import pytest

from repro.analysis import print_table
from repro.core import distributed_apsp, distributed_betweenness
from repro.graphs import (
    connected_erdos_renyi_graph,
    cycle_graph,
    grid_graph,
    karate_club_graph,
    path_graph,
)

from .conftest import once

GRAPHS = [
    path_graph(24),
    cycle_graph(24),
    grid_graph(5, 5),
    karate_club_graph(),
    connected_erdos_renyi_graph(30, 0.15, seed=2),
]


def run_pair(graph):
    full = distributed_betweenness(graph, arithmetic="lfloat")
    counting = distributed_apsp(graph)
    return full, counting


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_aggregation_rounds_bounded(benchmark, graph):
    full, counting = once(benchmark, run_pair, graph)
    aggregation_rounds = full.rounds - counting.rounds
    t_max = max(full.start_times.values())
    # Lemma 7: the last send is at T_max + D; add the AggStart broadcast
    # (D + 1) and the final local round.
    bound = t_max + 2 * full.diameter + 4
    print_table(
        ["metric", "value"],
        [
            ["N", graph.num_nodes],
            ["D", full.diameter],
            ["total rounds", full.rounds],
            ["counting-only rounds", counting.rounds],
            ["aggregation rounds (diff)", aggregation_rounds],
            ["Lemma 7 bound (T_max + 2D + 4)", bound],
        ],
        title="E5 aggregation phase, {}".format(graph.name),
    )
    assert 0 < aggregation_rounds <= bound


def test_aggregation_work_is_one_send_per_source_node_pair(benchmark):
    """Each node sends exactly once per foreign source (N*(N-1) sends)."""
    graph = cycle_graph(16)
    full, counting = once(benchmark, run_pair, graph)
    n = graph.num_nodes
    agg_messages = 0
    for node in full.nodes:
        for record in node.ledger:
            if record.source != node.node_id:
                agg_messages += len(record.preds)
    # cycle: every non-source node has exactly 1 predecessor, except the
    # two antipodal-ish nodes with 2.
    assert agg_messages >= n * (n - 1)
    assert full.stats.message_count > counting.stats.message_count
