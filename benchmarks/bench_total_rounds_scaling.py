"""E6 — Theorem 3: the complete protocol runs in O(N) rounds.

The headline complexity claim.  Four graph families spanning the
diameter spectrum (D = N-1 paths down to D = O(log N) expanders), each
swept over N; the table reports rounds, rounds/N, the linear fit, and
the distance to the Ω(D + N/log N) lower bound (Theorems 5/6) — the
measured gap stays O(log N), i.e. "nearly optimal".
"""

import pytest

from repro.analysis import linear_fit, power_law_exponent, print_table
from repro.core import distributed_betweenness
from repro.graphs import (
    balanced_tree,
    connected_erdos_renyi_graph,
    cycle_graph,
    path_graph,
)
from repro.lowerbound import optimality_gap, theorem_lower_bound

from .conftest import once

SIZES = (16, 32, 48, 64, 80)

FAMILIES = {
    "path": [path_graph(n) for n in SIZES],
    "cycle": [cycle_graph(n) for n in SIZES],
    "tree": [balanced_tree(2, h) for h in (3, 4, 5, 6)],
    "er": [
        connected_erdos_renyi_graph(n, 4.0 / n, seed=9) for n in SIZES
    ],
}


def run_family(graphs):
    return [(g, distributed_betweenness(g, arithmetic="lfloat")) for g in graphs]


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=str)
def test_total_rounds_linear_in_n(benchmark, family):
    samples = once(benchmark, run_family, FAMILIES[family])
    ns = [g.num_nodes for g, _ in samples]
    rounds = [r.rounds for _, r in samples]
    rows = []
    for g, r in samples:
        bound = theorem_lower_bound(g.num_nodes, r.diameter)
        rows.append(
            [
                g.num_nodes,
                r.diameter,
                r.rounds,
                r.rounds / g.num_nodes,
                bound,
                optimality_gap(r.rounds, g.num_nodes, r.diameter),
            ]
        )
    fit = linear_fit(ns, rounds)
    exponent = power_law_exponent(ns, rounds)
    print_table(
        ["N", "D", "rounds", "rounds/N", "lower bound", "gap (x)"],
        rows,
        title="E6 total rounds, {} family — fit: rounds = {:.2f} N + {:.1f} "
        "(R^2={:.4f}, log-log exponent {:.3f})".format(
            family, fit.slope, fit.intercept, fit.r_squared, exponent
        ),
    )
    assert exponent < 1.25
    assert fit.r_squared > 0.95
    assert all(r <= 14 * n + 40 for n, r in zip(ns, rounds))


def test_dense_graph_constant(benchmark):
    """Low-diameter dense graphs have the smallest rounds/N constants."""
    from repro.graphs import complete_graph

    result = once(
        benchmark, distributed_betweenness, complete_graph(24), "lfloat"
    )
    assert result.rounds / 24 < 8
