"""Shared helpers for the benchmark harness.

Every experiment of DESIGN.md's per-experiment index (E1–E14) has one
``bench_*.py`` module here.  Each test uses the pytest-benchmark fixture
to time the interesting computation once (``once`` helper — simulator
runs are deterministic, repetition adds nothing) and *prints the table
the experiment reproduces*; run with ``-s`` to see the tables::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single timed invocation and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
