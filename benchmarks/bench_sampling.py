"""E13 — Related work (Section II): sampling approximation trade-offs.

The approximations of Brandes–Pich / Eppstein–Wang and Bader et al.
trade accuracy for fewer SSSP computations.  This bench reproduces the
trade-off curve — error falling with the pivot count k — and the
adaptive scheme's early stopping on high-centrality nodes, contrasting
both with the exact algorithms (Brandes and the distributed protocol).
"""

import pytest

from repro.analysis import print_table
from repro.centrality import (
    adaptive_sampled_betweenness,
    brandes_betweenness,
    required_samples,
    sampled_betweenness,
)
from repro.graphs import barbell_graph, karate_club_graph

from .conftest import once

GRAPH = karate_club_graph()


def pivot_sweep():
    exact = brandes_betweenness(GRAPH)
    scale = max(exact.values())
    rows = []
    for k in (2, 4, 8, 16, 32, GRAPH.num_nodes):
        errors = []
        for seed in range(5):
            estimate = sampled_betweenness(GRAPH, k, seed=seed)
            errors.append(
                max(abs(estimate[v] - exact[v]) for v in GRAPH.nodes()) / scale
            )
        rows.append((k, sum(errors) / len(errors), max(errors)))
    return rows


def test_pivot_error_decreases_with_samples(benchmark):
    rows = once(benchmark, pivot_sweep)
    print_table(
        ["pivots k", "mean normalized max-error", "worst over 5 seeds"],
        rows,
        title="E13 Brandes–Pich sampling on {} (exact needs k=N={}; the "
        "eps=0.1 guarantee needs k={})".format(
            GRAPH.name,
            GRAPH.num_nodes,
            required_samples(GRAPH.num_nodes, 0.1, 0.1),
        ),
    )
    assert rows[-1][1] < 1e-9  # k = N without replacement is exact
    assert rows[0][1] > rows[-2][1] * 0.5 or rows[0][1] > rows[-1][1]


def test_adaptive_stops_early_for_central_nodes(benchmark):
    graph = barbell_graph(8, 2)
    bridge_node = 8  # first bridge node: near-maximal betweenness

    def run():
        return adaptive_sampled_betweenness(graph, bridge_node, c=2.0, seed=3)

    estimate, used = once(benchmark, run)
    exact = brandes_betweenness(graph)[bridge_node]
    print_table(
        ["metric", "value"],
        [
            ["node", bridge_node],
            ["exact CB", exact],
            ["adaptive estimate", estimate],
            ["SSSP used", used],
            ["SSSP for exact", graph.num_nodes],
        ],
        title="E13 Bader-style adaptive sampling on {}".format(graph.name),
    )
    assert used < graph.num_nodes
    assert estimate == pytest.approx(exact, rel=0.6)
