"""E16 — fault-layer cost: disabled overhead and recovery round-tax.

Two questions, one per measurement:

1. **Disabled overhead.**  The fault layer is threaded through the
   simulator as ``faults=None`` with an identity-check fast path (the
   same pattern as ``telemetry=``).  Passing ``faults=None`` must cost
   nothing measurable: this benchmark times the event engine with and
   without the keyword spelled out and asserts the runs are
   bit-identical; the timing ratio is reported (and asserted only
   loosely — wall-clock noise on a shared 1-core container dwarfs an
   identity check).

2. **Recovery round-tax vs drop rate.**  Under the resilient transport
   every lost frame costs retransmission round-trips; the round
   overhead (faulted rounds / fault-free resilient rounds) grows with
   the drop rate.  The benchmark sweeps drop ∈ {0, 2%, 5%, 10%} on a
   fixed graph, verifies every recovered run still matches the
   fault-free betweenness exactly, and records the trajectory.

Results go to ``BENCH_faults.json`` at the repo root;
``scripts/bench_smoke.py`` runs a reduced version as a CI gate.
"""

import json
import time
from pathlib import Path

from repro.analysis import print_table
from repro.core import distributed_betweenness
from repro.faults import FaultPlan
from repro.graphs import connected_erdos_renyi_graph, cycle_graph

from .conftest import once

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"
DROP_RATES = (0.0, 0.02, 0.05, 0.10)
REPS = 3


def _fingerprint(result):
    summary = result.stats.summary()
    summary.pop("faults", None)
    return (
        sorted(result.betweenness.items()),
        result.rounds,
        summary,
        result.stats.round_series,
    )


def measure_disabled_overhead(n=150, reps=REPS):
    """Time ``faults=None`` against the bare call; require identity."""
    graph = cycle_graph(n)
    best = {"bare": float("inf"), "faults_none": float("inf")}
    outputs = {}
    for _ in range(max(1, reps)):
        for variant in ("bare", "faults_none"):
            kwargs = {} if variant == "bare" else {"faults": None}
            start = time.perf_counter()
            result = distributed_betweenness(
                graph, arithmetic="lfloat", engine="event", **kwargs
            )
            elapsed = time.perf_counter() - start
            best[variant] = min(best[variant], elapsed)
            outputs[variant] = _fingerprint(result)
    return {
        "graph": graph.name,
        "n": n,
        "bare_seconds": round(best["bare"], 4),
        "faults_none_seconds": round(best["faults_none"], 4),
        "overhead_ratio": round(best["faults_none"] / best["bare"], 3),
        "identical_results": outputs["bare"] == outputs["faults_none"],
    }


def measure_recovery_overhead(drop_rates=DROP_RATES, seed=7):
    """Round overhead of exact recovery as a function of the drop rate."""
    graph = connected_erdos_renyi_graph(16, 0.25, seed=2)
    reference = distributed_betweenness(
        graph, arithmetic="exact", engine="event", resilient=True
    )
    rows = []
    for rate in drop_rates:
        plan = FaultPlan(seed=seed, drop_rate=rate)
        start = time.perf_counter()
        result = distributed_betweenness(
            graph,
            arithmetic="exact",
            engine="event",
            faults=plan,
            resilient=True,
        )
        elapsed = time.perf_counter() - start
        fault_numbers = result.stats.faults.as_dict()
        rows.append(
            {
                "drop_rate": rate,
                "rounds": result.rounds,
                "round_overhead": round(
                    result.rounds / reference.rounds, 3
                ),
                "dropped": fault_numbers["dropped"],
                "recovered_exactly": (
                    result.betweenness_exact == reference.betweenness_exact
                ),
                "complete": result.completeness.complete,
                "seconds": round(elapsed, 4),
            }
        )
    return {"graph": graph.name, "baseline_rounds": reference.rounds, "rows": rows}


def write_json(disabled, recovery, path=OUTPUT):
    payload = {
        "benchmark": "fault_layer",
        "disabled_overhead": disabled,
        "recovery_overhead": recovery,
        "summary": {
            "disabled_identical": disabled["identical_results"],
            "all_recovered_exactly": all(
                row["recovered_exactly"] for row in recovery["rows"]
            ),
            "max_round_overhead": max(
                row["round_overhead"] for row in recovery["rows"]
            ),
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def print_report(disabled, recovery):
    print_table(
        ["variant", "seconds"],
        [
            ["bare call", disabled["bare_seconds"]],
            ["faults=None", disabled["faults_none_seconds"]],
            ["ratio", disabled["overhead_ratio"]],
            ["identical", disabled["identical_results"]],
        ],
        title="Disabled fault layer on {} (event engine)".format(
            disabled["graph"]
        ),
    )
    print()
    print_table(
        ["drop rate", "rounds", "overhead", "dropped", "exact", "seconds"],
        [
            [
                row["drop_rate"],
                row["rounds"],
                row["round_overhead"],
                row["dropped"],
                row["recovered_exactly"],
                row["seconds"],
            ]
            for row in recovery["rows"]
        ],
        title="Recovery round-tax on {} (baseline {} rounds)".format(
            recovery["graph"], recovery["baseline_rounds"]
        ),
    )


def test_disabled_overhead_and_recovery_tax(benchmark):
    disabled = once(benchmark, measure_disabled_overhead)
    recovery = measure_recovery_overhead()
    write_json(disabled, recovery)
    print()
    print_report(disabled, recovery)
    # Hard gates: identity of the disabled path and exactness of every
    # recovered run.  Timing assertions stay deliberately loose (4x) —
    # the identity check is nanoseconds, the noise floor is not.
    assert disabled["identical_results"]
    assert disabled["overhead_ratio"] < 4.0
    assert all(row["recovered_exactly"] for row in recovery["rows"])
    # More drops can only mean more retransmission round-trips.
    rounds = [row["rounds"] for row in recovery["rows"]]
    assert rounds[-1] >= rounds[0]


if __name__ == "__main__":
    disabled = measure_disabled_overhead()
    recovery = measure_recovery_overhead()
    write_json(disabled, recovery)
    print_report(disabled, recovery)
