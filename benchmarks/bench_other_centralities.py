"""E14 — Section I: closeness and graph centrality in O(N) rounds.

The paper's introduction observes that once distributed APSP is
available, closeness and graph centrality are immediate — each node
holds its own distance row.  This bench runs the counting phase alone
and checks that (a) the derived centralities match the centralized
definitions exactly and (b) the round cost is the counting phase's O(N).
"""

import pytest

from repro.analysis import print_table
from repro.centrality import closeness_centrality, graph_centrality
from repro.core import distributed_apsp, distributed_betweenness
from repro.graphs import (
    connected_erdos_renyi_graph,
    grid_graph,
    karate_club_graph,
    path_graph,
)

from .conftest import once

GRAPHS = [
    path_graph(30),
    grid_graph(5, 6),
    karate_club_graph(),
    connected_erdos_renyi_graph(30, 0.15, seed=21),
]


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_closeness_and_graph_centrality_for_free(benchmark, graph):
    apsp = once(benchmark, distributed_apsp, graph)
    closeness = apsp.closeness()
    graph_c = apsp.graph_centrality()
    exact_cc = closeness_centrality(graph)
    exact_cg = graph_centrality(graph)
    for v in graph.nodes():
        assert closeness[v] == pytest.approx(exact_cc[v])
        assert graph_c[v] == pytest.approx(exact_cg[v])
    full = distributed_betweenness(graph, arithmetic="lfloat")
    print_table(
        ["metric", "value"],
        [
            ["N", graph.num_nodes],
            ["counting-only rounds (CC + CG)", apsp.rounds],
            ["full BC rounds", full.rounds],
            ["extra rounds BC needs", full.rounds - apsp.rounds],
            ["diameter", apsp.diameter],
        ],
        title="E14 closeness/graph centrality from the counting phase, "
        "{}".format(graph.name),
    )
    assert apsp.rounds < full.rounds
    assert apsp.rounds <= 12 * graph.num_nodes + 40
