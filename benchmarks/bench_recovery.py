"""E17 — supervised shard runtime: resume identity, respawn, overhead.

The supervisor adds three things to the shard engine (`docs/recovery.md`):
a heartbeat watchdog, round-boundary checkpoints, and worker respawn
with rollback.  This benchmark proves each is *invisible in the answer*
and *bounded in cost*, writing ``BENCH_recovery.json``:

* **Resume identity** — family × N × protocol rows: run supervised with
  checkpoints, resume from the newest snapshot, and demand the resumed
  run reproduce the uninterrupted run bit for bit (betweenness, rounds,
  bits, messages, per-round series, worst edge).  Hard-gated.
* **Hang respawn** — a worker wedged mid-run is detected by the
  watchdog, respawned, rolled back, and still finishes bit-identical;
  the restart count must replay exactly (fault plans are keyed hashes).
  Hard-gated.
* **Checkpoint overhead** — at N = 400, the supervisor's own
  ``checkpoint_seconds`` gauge over the rest of the run's wall, taken
  within one run (A/B wall differences on a shared single-core
  container drift more than the whole checkpoint cost; a single run's
  internal ratio does not).  ``overhead_fraction`` is soft-gated
  at ≤ 5%
  (:data:`repro.obs.history.MAX_CHECKPOINT_OVERHEAD`).  The watchdog's
  own cost is *not* hidden inside that ratio: rows carry
  ``uninterrupted_seconds`` (no supervision at all) next to
  ``supervised_seconds`` so the heartbeat tax stays visible, gated as a
  latency ratio like every other wall figure (skipped by ``--no-wall``).
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis import print_table
from repro.core import distributed_betweenness
from repro.faults import FaultPlan, WorkerHang
from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.shard import SupervisionConfig, resolve_checkpoint

from .conftest import once

WORKERS = 3
PARTITIONER = "greedy"
SIZES = (64,)
FAMILIES = {
    "path": path_graph,
    "cycle": cycle_graph,
}
PROTOCOLS = ("hua-bc", "cfp-bc")
OVERHEAD_N = 400
OVERHEAD_EVERY = 1200
OVERHEAD_REPEATS = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"


def _fingerprint(result):
    """Everything a recovered run must agree on, in comparable form."""
    return (
        sorted(result.betweenness.items()),
        result.diameter,
        result.rounds,
        sorted(result.start_times.items()),
        result.stats.round_series,
        result.stats.worst_edge,
    )


def _run(graph, protocol="hua-bc", **kwargs):
    return distributed_betweenness(
        graph,
        arithmetic="lfloat",
        engine="shard",
        workers=WORKERS,
        partitioner=PARTITIONER,
        protocol=protocol,
        **kwargs,
    )


def measure_resume(sizes=SIZES, families=None, protocols=PROTOCOLS):
    """One ``resume`` row per family × N × protocol."""
    families = dict(FAMILIES) if families is None else families
    rows = []
    for family, build in sorted(families.items()):
        for n in sizes:
            graph = build(n)
            for protocol in protocols:
                reference = _run(graph, protocol)
                ref_print = _fingerprint(reference)
                ckpt_dir = tempfile.mkdtemp(prefix="bench-recovery-")
                try:
                    start = time.perf_counter()
                    supervised = _run(
                        graph,
                        protocol,
                        checkpoint_every=20,
                        checkpoint_dir=ckpt_dir,
                    )
                    supervised_seconds = time.perf_counter() - start
                    ckpt = resolve_checkpoint(Path(ckpt_dir))
                    start = time.perf_counter()
                    resumed = _run(graph, protocol, resume_from=str(ckpt))
                    recovery_seconds = time.perf_counter() - start
                finally:
                    shutil.rmtree(ckpt_dir, ignore_errors=True)
                summary = resumed.stats.summary()
                sup = resumed.stats.supervisor
                rows.append({
                    "family": family,
                    "n": graph.num_nodes,
                    "protocol": protocol,
                    "scenario": "resume",
                    "workers": WORKERS,
                    "rounds": resumed.rounds,
                    "bits": summary["bits"],
                    "messages": summary["messages"],
                    "identical_after_resume": (
                        _fingerprint(supervised) == ref_print
                        and _fingerprint(resumed) == ref_print
                    ),
                    "resumed_from_round": sup["resumed_from"],
                    "checkpoints_written":
                        supervised.stats.supervisor["checkpoints_written"],
                    "checkpoint_bytes":
                        supervised.stats.supervisor["checkpoint_bytes"],
                    "restarts": 0,
                    "supervised_seconds": round(supervised_seconds, 4),
                    "recovery_seconds": round(recovery_seconds, 4),
                })
    return rows


def measure_respawn(n=SIZES[0], protocols=PROTOCOLS):
    """One ``hang_respawn`` row per protocol × hang-repeat count.

    ``repeats`` is the restart matrix axis: a worker that wedges once,
    then twice in a row, against a budget of three.  The supervisor must
    burn exactly ``repeats`` restarts — deterministic, because the
    fault plan is a keyed hash replayed identically after rollback.
    """
    graph = cycle_graph(n)
    rows = []
    for protocol in protocols:
        reference = _fingerprint(_run(graph, protocol))
        for repeats in (1, 2):
            plan = FaultPlan(
                seed=7,
                worker_hangs=(
                    WorkerHang(shard=1, round=9, repeats=repeats),
                ),
            )
            start = time.perf_counter()
            recovered = _run(
                graph,
                protocol,
                faults=plan,
                supervision=SupervisionConfig(
                    heartbeat_timeout=0.5,
                    max_restarts=3,
                    backoff_base=0.01,
                ),
            )
            recovery_seconds = time.perf_counter() - start
            summary = recovered.stats.summary()
            summary.pop("faults", None)  # all-zero block, plan attached
            sup = recovered.stats.supervisor
            rows.append({
                "family": "cycle",
                "n": graph.num_nodes,
                "protocol": protocol,
                "scenario": "hang_respawn_x{}".format(repeats),
                "workers": WORKERS,
                "rounds": recovered.rounds,
                "bits": summary["bits"],
                "messages": summary["messages"],
                "identical_after_resume":
                    _fingerprint(recovered) == reference,
                "restarts": sup["restarts"],
                "hang_detections": sup["hang_detections"],
                "faults": "hang@9x{}".format(repeats),
                "recovery_seconds": round(recovery_seconds, 4),
            })
    return rows


def measure_overhead(n=OVERHEAD_N, every=OVERHEAD_EVERY,
                     repeats=OVERHEAD_REPEATS):
    """The ``overhead`` row: checkpoint cost at N = 400.

    Three configurations, interleaved min-of-``repeats`` walls for
    context: no supervision at all (``uninterrupted_seconds``),
    heartbeats only (``supervised_seconds``), heartbeats + checkpoints
    every ``every`` rounds (``checkpointed_seconds``).

    ``overhead_fraction`` — the gated figure — is *not* an A/B
    difference of those walls: on a shared single-core container,
    back-to-back identical runs drift by more than the entire
    checkpoint cost, so subtracting two noisy runs measures the host's
    neighbours, not the subsystem.  Instead the supervisor's own
    ``checkpoint_seconds`` gauge times every ``_write_checkpoint``
    call from inside the run — on one core the coordinator blocks
    while workers serialize, so the gauge covers the whole marginal
    cost (snapshot, pipe transfer, checksum, write, prune) — and the
    ratio ``checkpoint_seconds / (wall - checkpoint_seconds)`` shares
    one run's noise regime between numerator and denominator.  The
    minimum ratio across the checkpointed repeats is reported.
    """
    graph = grid_graph(int(n ** 0.5), int(n ** 0.5))
    walls = {"plain": [], "hb": [], "ckpt": []}
    ratios = []
    result = plain = None
    for _ in range(repeats):
        start = time.perf_counter()
        plain = _run(graph)
        walls["plain"].append(time.perf_counter() - start)
        start = time.perf_counter()
        _run(graph, supervision=SupervisionConfig(heartbeat_timeout=30.0))
        walls["hb"].append(time.perf_counter() - start)
        ckpt_dir = tempfile.mkdtemp(prefix="bench-recovery-")
        try:
            start = time.perf_counter()
            result = _run(
                graph, checkpoint_every=every, checkpoint_dir=ckpt_dir
            )
            wall = time.perf_counter() - start
        finally:
            shutil.rmtree(ckpt_dir, ignore_errors=True)
        walls["ckpt"].append(wall)
        spent = result.stats.supervisor["checkpoint_seconds"]
        ratios.append(spent / (wall - spent))
    summary = result.stats.summary()
    sup = result.stats.supervisor
    return {
        "family": "grid",
        "n": graph.num_nodes,
        "protocol": "hua-bc",
        "scenario": "overhead",
        "workers": WORKERS,
        "rounds": result.rounds,
        "bits": summary["bits"],
        "messages": summary["messages"],
        "identical_after_resume":
            _fingerprint(result) == _fingerprint(plain),
        "restarts": 0,
        "checkpoint_every": every,
        "checkpoints_written": sup["checkpoints_written"],
        "checkpoint_bytes": sup["checkpoint_bytes"],
        "checkpoint_seconds": round(sup["checkpoint_seconds"], 4),
        "uninterrupted_seconds": round(min(walls["plain"]), 4),
        "supervised_seconds": round(min(walls["hb"]), 4),
        "checkpointed_seconds": round(min(walls["ckpt"]), 4),
        "overhead_fraction": round(min(ratios), 4),
    }


def write_json(rows, path=OUTPUT):
    payload = {
        "benchmark": "recovery",
        "arithmetic": "lfloat",
        "partitioner": PARTITIONER,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "timing_note": (
            "wall clocks on this {}-core container are noisy; every "
            "timed figure is an interleaved min-of-{}.  "
            "overhead_fraction is checkpoint_seconds (time inside "
            "_write_checkpoint, which on one core covers worker "
            "serialization, transfer, checksum and write) over the "
            "rest of the same run's wall — an in-run ratio, because "
            "A/B differences between runs drift more than the whole "
            "checkpoint cost here; the watchdog's own cost is the "
            "separate supervised_seconds vs uninterrupted_seconds "
            "gap".format(os.cpu_count(), OVERHEAD_REPEATS)
        ),
        "rows": rows,
        "summary": {
            "all_identical": all(
                r["identical_after_resume"] for r in rows
            ),
            "max_overhead_fraction": max(
                (r["overhead_fraction"] for r in rows
                 if "overhead_fraction" in r),
                default=None,
            ),
            "total_restarts": sum(r.get("restarts", 0) for r in rows),
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _print_rows(rows, title):
    print_table(
        ["family", "N", "protocol", "scenario", "rounds", "restarts",
         "identical", "seconds"],
        [
            [r["family"], r["n"], r["protocol"], r["scenario"],
             r["rounds"], r.get("restarts", 0),
             r["identical_after_resume"],
             r.get("recovery_seconds",
                   r.get("checkpointed_seconds", ""))]
            for r in rows
        ],
        title=title,
    )


def test_recovery_identity_and_overhead(benchmark):
    rows = once(benchmark, measure_resume)
    rows += measure_respawn()
    overhead = measure_overhead()
    rows.append(overhead)
    payload = write_json(rows)
    _print_rows(rows, "E17 recovery -> {}".format(OUTPUT.name))
    assert payload["summary"]["all_identical"]
    for row in rows:
        if row["scenario"].startswith("hang_respawn"):
            # The restart count replays exactly: one per scheduled wedge.
            assert row["restarts"] == int(row["scenario"][-1])
    assert overhead["checkpoints_written"] >= 2
