"""E15–E17 — the paper's stated extensions, measured.

* **E15 distributed stress** (footnote 3: "the stress centrality can
  also be computed in a similar way"): same two-phase protocol, unit
  term 1 instead of 1/sigma; exact integer agreement with the
  centralized definition at the same O(N) round cost.
* **E16 weighted graphs via virtual nodes** (conclusion, after
  Nanongkai [16]): subdivision preserves weighted BC exactly; rounds
  scale with the subdivided size N' = N + sum(w - 1).
* **E17 sampled distributed BC** (Holzer's thesis [15] direction):
  pivot subsets cut message volume proportionally but *not* the round
  count — quantifying why the paper's exact O(N) algorithm dominates in
  the CONGEST model.
"""

import pytest

from repro.analysis import print_table
from repro.centrality import (
    brandes_betweenness,
    stress_centrality,
    weighted_brandes_betweenness,
)
from repro.core import (
    distributed_betweenness,
    distributed_sampled_betweenness,
    distributed_stress,
    distributed_weighted_betweenness,
)
from repro.graphs import WeightedGraph, grid_graph, karate_club_graph

from .conftest import once


# ----------------------------------------------------------------------
# E15 — distributed stress
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "graph", [karate_club_graph(), grid_graph(4, 5)], ids=lambda g: g.name
)
def test_e15_distributed_stress(benchmark, graph):
    result = once(benchmark, distributed_stress, graph)
    reference = stress_centrality(graph)
    bc_run = distributed_betweenness(graph, arithmetic="exact")
    assert result.stress == reference
    top = sorted(graph.nodes(), key=lambda v: result.stress[v], reverse=True)[:5]
    print_table(
        ["node", "stress (distributed)", "stress (centralized)"],
        [[v, result.stress[v], reference[v]] for v in top],
        title="E15 distributed stress on {} — rounds {} (betweenness run: "
        "{})".format(graph.name, result.rounds, bc_run.rounds),
    )
    # identical protocol skeleton ⇒ identical round count
    assert result.rounds == bc_run.rounds


# ----------------------------------------------------------------------
# E16 — weighted graphs via subdivision
# ----------------------------------------------------------------------
def _weighted_instance(scale):
    base = [(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 4, 2), (4, 0, 3), (1, 3, 2)]
    return WeightedGraph(
        5,
        [(u, v, w * scale) for u, v, w in base],
        name="weighted-pentagon-x{}".format(scale),
    )


def test_e16_weighted_exact_agreement(benchmark):
    graph = _weighted_instance(2)
    result = once(benchmark, distributed_weighted_betweenness, graph)
    reference = weighted_brandes_betweenness(graph, exact=True)
    assert result.betweenness_exact == reference
    print_table(
        ["node", "distributed weighted CB", "weighted Brandes"],
        [
            [v, str(result.betweenness_exact[v]), str(reference[v])]
            for v in graph.nodes()
        ],
        title="E16 weighted betweenness via virtual nodes "
        "(N={} real + {} virtual, rounds={})".format(
            graph.num_nodes, result.subdivision.num_virtual, result.rounds
        ),
    )


def test_e16_rounds_scale_with_total_weight(benchmark):
    def sweep():
        rows = []
        for scale in (1, 2, 3, 4):
            graph = _weighted_instance(scale)
            result = distributed_weighted_betweenness(graph)
            n_prime = result.subdivision.graph.num_nodes
            rows.append((scale, graph.total_weight(), n_prime, result.rounds,
                         result.rounds / n_prime))
        return rows

    rows = once(benchmark, sweep)
    print_table(
        ["weight scale", "total weight", "N' (subdivided)", "rounds",
         "rounds/N'"],
        rows,
        title="E16 the virtual-node price: rounds grow with N' = N + Σ(w-1)",
    )
    per_nprime = [r[-1] for r in rows]
    assert max(per_nprime) / min(per_nprime) < 2.5  # linear in N'
    assert rows[-1][3] > rows[0][3]


# ----------------------------------------------------------------------
# E17 — sampled distributed BC
# ----------------------------------------------------------------------
def test_e17_sampling_tradeoff(benchmark):
    graph = karate_club_graph()
    exact = brandes_betweenness(graph)
    scale = max(exact.values())

    def sweep():
        rows = []
        full = distributed_betweenness(graph)
        for k in (4, 8, 16, 34):
            run = distributed_sampled_betweenness(graph, k, seed=5)
            err = max(
                abs(run.estimate[v] - exact[v]) for v in graph.nodes()
            ) / scale
            rows.append(
                (
                    k,
                    run.rounds,
                    run.stats.message_count,
                    run.stats.message_count / full.stats.message_count,
                    err,
                )
            )
        return rows, full

    rows, full = once(benchmark, sweep)
    print_table(
        ["pivots k", "rounds", "messages", "msg fraction of exact run",
         "normalized max error"],
        rows,
        title="E17 sampled distributed BC on {} (exact run: {} rounds, "
        "{} messages)".format(
            graph.name, full.rounds, full.stats.message_count
        ),
    )
    messages = [r[2] for r in rows]
    assert messages == sorted(messages)  # messages grow with k
    # k = N is exact up to L-float rounding (the default arithmetic)
    assert rows[-1][4] < 1e-3
    # rounds do NOT shrink with k — the DFS tour dominates
    assert max(r[1] for r in rows) <= full.rounds + 5
