"""E7 — Lemmas 3–5 / Theorem 2: every round respects the CONGEST model.

Measures the worst per-edge per-direction per-round bit load across
graph families and sizes, and its ratio to ceil(log2 N).  A bounded
ratio as N grows is the measurable form of "each message contains
O(log N) bits"; the per-edge *message* count additionally witnesses
Lemma 4's collision-freedom (never two BFS waves or two aggregation
sends share an edge-round — only a wave plus a control message can).
"""

import math


from repro.analysis import print_table
from repro.core import distributed_betweenness
from repro.graphs import (
    complete_graph,
    connected_erdos_renyi_graph,
    cycle_graph,
    grid_graph,
    karate_club_graph,
    path_graph,
)

from .conftest import once

GRAPHS = [
    path_graph(40),
    cycle_graph(40),
    grid_graph(6, 6),
    complete_graph(16),
    karate_club_graph(),
    connected_erdos_renyi_graph(40, 0.12, seed=4),
]


def sweep():
    rows = []
    for graph in GRAPHS:
        result = distributed_betweenness(graph, arithmetic="lfloat")
        log_n = max(1, math.ceil(math.log2(graph.num_nodes)))
        rows.append(
            (
                graph.name,
                graph.num_nodes,
                result.arithmetic,
                result.stats.max_edge_bits_per_round,
                result.stats.max_edge_bits_per_round / log_n,
                result.stats.max_edge_messages_per_round,
            )
        )
    return rows


def test_max_edge_bits_are_olog_n(benchmark):
    rows = once(benchmark, sweep)
    print_table(
        ["graph", "N", "arith", "max bits/edge/round", "ratio to log2 N",
         "max msgs/edge/round"],
        rows,
        title="E7 CONGEST compliance (strict mode enforced a 32*log2 N "
        "budget throughout)",
    )
    for name, n, _arith, bits, ratio, msgs in rows:
        assert ratio <= 32, "{} exceeded the CONGEST envelope".format(name)
        assert msgs <= 3, "{} stacked too many messages on one edge".format(
            name
        )


def test_ratio_does_not_grow_with_n(benchmark):
    """The bits/log2(N) ratio stays flat as N quadruples (cycle family)."""

    def measure():
        out = []
        for n in (16, 32, 64, 128):
            result = distributed_betweenness(cycle_graph(n), arithmetic="lfloat")
            log_n = math.ceil(math.log2(n))
            out.append((n, result.stats.max_edge_bits_per_round / log_n))
        return out

    ratios = once(benchmark, measure)
    print_table(
        ["N", "max-bits ratio to log2 N"],
        ratios,
        title="E7 scaling of the congestion ratio (cycles)",
    )
    values = [ratio for _, ratio in ratios]
    assert max(values) <= 32
    assert max(values) / min(values) < 2.0
