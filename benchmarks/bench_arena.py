"""E16 — protocol arena: the registry's league table.

Every protocol registered in :mod:`repro.protocols` runs the same graph
instances on the same engine with the same arithmetic; each row of the
league table records rounds, billed bits, messages and wall clock, plus
a correctness column — the run's maximum per-node relative error
against exact Brandes, gated by the Theorem 1 envelope for the L the
context actually chose.

The table exists to answer "what did pluggability cost?" with numbers,
and it documents a deliberate finding: ``cfp-bc``'s time-reversed
accumulation produces **identical totals** to ``hua-bc`` — same rounds,
same billed bits, same message count — because both schedules are affine
in the settle round with unit slope, so the complexity is a property of
the shared pipelined BFS, not of the accumulation direction.  Only the
*temporal* traffic distribution differs (``repro trace diff
--protocols hua-bc,cfp-bc`` finds the divergence).  The arena asserts
that identity rather than pretending there is a horse race.

Results land in ``BENCH_arena.json`` at the repo root; the run-history
ledger ingests it under the ``protocol_arena`` kind and ``repro bench
compare`` gates rounds/bits/messages exactly across runs.
"""

import json
import time
from pathlib import Path

from repro.analysis import print_table
from repro.arithmetic import max_relative_error, theorem1_bound
from repro.centrality import brandes_betweenness
from repro.core import distributed_betweenness
from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.protocols import protocol_names

from .conftest import once

SIZES = (32, 64)
FAMILIES = {
    "path": path_graph,
    "cycle": cycle_graph,
    "grid": lambda n: grid_graph(max(2, n // 8), 8),
}
REPS = 2
ENGINE = "event"  # level playing field: cfp-bc is not bulk-capable
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_arena.json"


def _lfloat_precision(arithmetic_name):
    """The L of an ``lfloat-<L>`` context name (None for exact)."""
    prefix = "lfloat-"
    if not arithmetic_name.startswith(prefix):
        return None
    return int(arithmetic_name[len(prefix):])


def measure_arena(
    sizes=SIZES,
    families=None,
    reps=REPS,
    protocols=None,
    engine=ENGINE,
):
    """One league-table row per protocol × family × N; best-of-``reps``.

    Protocol runs are interleaved within each repetition so ambient
    noise hits every contender roughly equally.  The Brandes reference
    is computed once per instance (exact Fractions) and every
    protocol's float output is checked against it through the Theorem 1
    relative-error envelope.
    """
    families = dict(FAMILIES) if families is None else families
    protocols = list(protocol_names()) if protocols is None else list(protocols)
    rows = []
    for family, build in sorted(families.items()):
        for n in sizes:
            graph = build(n)
            exact = brandes_betweenness(graph, exact=True)
            best = {}
            results = {}
            for _ in range(max(1, reps)):
                for protocol in protocols:
                    start = time.perf_counter()
                    result = distributed_betweenness(
                        graph,
                        arithmetic="lfloat",
                        engine=engine,
                        protocol=protocol,
                    )
                    elapsed = time.perf_counter() - start
                    if protocol not in best or elapsed < best[protocol]:
                        best[protocol] = elapsed
                    results[protocol] = result
            for protocol in protocols:
                result = results[protocol]
                measured = {
                    v: float(result.betweenness[v]) for v in graph.nodes()
                }
                precision = _lfloat_precision(result.arithmetic)
                max_err = max_relative_error(measured, exact)
                envelope = theorem1_bound(
                    precision, graph.num_nodes, result.diameter
                )
                rows.append(
                    {
                        "protocol": protocol,
                        "family": family,
                        "n": graph.num_nodes,
                        "engine": engine,
                        "arithmetic": result.arithmetic,
                        "rounds": result.rounds,
                        "bits": result.stats.bit_count,
                        "messages": result.stats.message_count,
                        "max_edge_bits": result.stats.max_edge_bits_per_round,
                        "wall_seconds": round(best[protocol], 4),
                        "max_rel_error": max_err,
                        "theorem1_envelope": envelope,
                        "matches_brandes": max_err <= envelope,
                    }
                )
    return rows


def identical_totals(rows):
    """True when every protocol posts the same rounds/bits/messages on
    every instance — the arena's headline finding."""
    by_instance = {}
    for row in rows:
        by_instance.setdefault((row["family"], row["n"]), []).append(
            (row["rounds"], row["bits"], row["messages"])
        )
    return all(
        len(set(totals)) == 1 for totals in by_instance.values()
    )


def write_json(rows, path=OUTPUT):
    """Persist the league table as ``BENCH_arena.json``."""
    protocols = sorted({row["protocol"] for row in rows})
    payload = {
        "benchmark": "protocol_arena",
        "arithmetic": "lfloat",
        "engine": ENGINE,
        "protocols": protocols,
        "reps": REPS,
        "rows": rows,
        "summary": {
            "all_match_brandes": all(row["matches_brandes"] for row in rows),
            "identical_totals_across_protocols": identical_totals(rows),
            "worst_rel_error": max(
                (row["max_rel_error"] for row in rows), default=0.0
            ),
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def print_league_table(rows, title="E16 protocol arena"):
    print_table(
        [
            "protocol",
            "family",
            "N",
            "rounds",
            "bits",
            "messages",
            "wall s",
            "max rel err",
            "Brandes ok",
        ],
        [
            [
                row["protocol"],
                row["family"],
                row["n"],
                row["rounds"],
                row["bits"],
                row["messages"],
                row["wall_seconds"],
                "{:.2e}".format(row["max_rel_error"]),
                row["matches_brandes"],
            ]
            for row in rows
        ],
        title=title,
    )


def test_protocol_arena_league_table(benchmark):
    rows = once(benchmark, measure_arena)
    payload = write_json(rows)
    print_league_table(
        rows, "E16 protocol arena -> {}".format(OUTPUT.name)
    )
    # Every registered protocol took the field...
    assert sorted(payload["protocols"]) == sorted(protocol_names())
    assert len(payload["protocols"]) >= 2
    # ...every row cross-validates against exact Brandes within the
    # Theorem 1 envelope for the L the context chose...
    assert payload["summary"]["all_match_brandes"]
    # ...and the headline finding holds: the accumulation direction
    # does not change a single structural total.
    assert payload["summary"]["identical_totals_across_protocols"]
