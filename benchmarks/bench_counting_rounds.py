"""E4 — Algorithm 2 / Lemma 6: the counting phase takes O(N) rounds.

Runs the counting phase alone (distributed APSP) on growing instances
and fits rounds against N; the fit's log-log exponent ≈ 1 and a
bounded rounds/N ratio are the measurable form of Lemma 6.
"""

import pytest

from repro.analysis import linear_fit, power_law_exponent, print_table
from repro.core import distributed_apsp
from repro.graphs import (
    balanced_tree,
    connected_erdos_renyi_graph,
    cycle_graph,
    path_graph,
)

from .conftest import once

FAMILIES = {
    "path": [path_graph(n) for n in (16, 32, 48, 64)],
    "cycle": [cycle_graph(n) for n in (16, 32, 48, 64)],
    "tree": [balanced_tree(2, h) for h in (3, 4, 5)],
    "er": [connected_erdos_renyi_graph(n, 4.0 / n, seed=3) for n in (16, 32, 48, 64)],
}


def run_family(graphs):
    return [(g.num_nodes, distributed_apsp(g)) for g in graphs]


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=str)
def test_counting_rounds_linear(benchmark, family):
    samples = once(benchmark, run_family, FAMILIES[family])
    ns = [n for n, _ in samples]
    rounds = [r.rounds for _, r in samples]
    print_table(
        ["N", "D", "counting rounds", "rounds/N"],
        [
            [n, r.diameter, r.rounds, r.rounds / n]
            for n, r in samples
        ],
        title="E4 counting phase, {} family".format(family),
    )
    exponent = power_law_exponent(ns, rounds)
    fit = linear_fit(ns, rounds)
    assert exponent < 1.25, "counting rounds grew super-linearly"
    assert fit.r_squared > 0.95
    assert all(r <= 12 * n + 40 for n, r in zip(ns, rounds))


def test_counting_correct_while_fast(benchmark):
    """The speed does not come at the cost of wrong distances."""
    from repro.graphs import all_pairs_distances

    graph = cycle_graph(32)
    result = once(benchmark, distributed_apsp, graph)
    reference = all_pairs_distances(graph)
    for v in graph.nodes():
        for s in graph.nodes():
            assert result.distances[v][s] == reference[s][v]
