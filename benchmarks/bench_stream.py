"""E16 — streaming telemetry overhead: the live bus must be near-free.

The streaming layer (:mod:`repro.obs.stream`) publishes telemetry rows
*during* the run — meta at start, phase rows as spans close, a flushed
JSONL line per row, progress heartbeats from the engines' round loops.
The design constraint is that none of this disturbs the engines' fast
paths: ``wants_ticks`` gates the per-round hook the same way
``wants_sends``/``wants_rounds`` gate the per-send and per-round
snapshots, and streaming flips **only** ``wants_ticks`` — so the bulk
engine keeps its closed-form no-replay path and the sweep/event round
loops add a single predictable branch.

This benchmark measures that claim on the acceptance configuration
(bulk engine, N=400 cycle): a live-streaming run — bus, flushed JSONL
sink and progress estimator attached — against a telemetry-free run.
Gate: ≤5% wall-clock overhead (best-of-``REPS`` interleaved, so noise
hits both arms equally).  It also asserts the streamed run's outputs
are bit-identical to the bare run's — streaming must observe, never
perturb.
"""

import json
import time
from pathlib import Path

from repro.analysis import print_table
from repro.core import distributed_betweenness
from repro.graphs import cycle_graph
from repro.obs import Telemetry

from .conftest import once

N = 400
REPS = 7
MAX_OVERHEAD = 1.05
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_stream.json"


def _fingerprint(result):
    return (
        sorted(result.betweenness.items()),
        result.diameter,
        result.rounds,
        result.stats.summary(),
    )


def measure(n=N, reps=REPS, tmp_dir=None):
    """Best-of-``reps`` wall clock: telemetry-off vs live streaming.

    The two arms interleave within each repetition.  The streaming arm
    rebuilds its Telemetry every repetition (a bus is one-run state)
    and writes its JSONL to a throwaway path.
    """
    import tempfile

    graph = cycle_graph(n)
    stream_path = Path(
        tmp_dir or tempfile.gettempdir()
    ) / "bench_stream_live.jsonl"
    best_off = None
    best_stream = None
    fingerprint_off = fingerprint_stream = None
    rows_written = 0
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        result = distributed_betweenness(graph, engine="bulk")
        elapsed = time.perf_counter() - start
        best_off = elapsed if best_off is None else min(best_off, elapsed)
        fingerprint_off = _fingerprint(result)

        telemetry = Telemetry.with_streaming(
            jsonl_path=str(stream_path), progress=True
        )
        start = time.perf_counter()
        result = distributed_betweenness(
            graph, engine="bulk", telemetry=telemetry
        )
        elapsed = time.perf_counter() - start
        telemetry.bus.close()
        best_stream = (
            elapsed if best_stream is None else min(best_stream, elapsed)
        )
        fingerprint_stream = _fingerprint(result)
        rows_written = telemetry.bus.published
    stream_path.unlink(missing_ok=True)
    return {
        "n": n,
        "engine": "bulk",
        "reps": reps,
        "off_seconds": round(best_off, 5),
        "stream_seconds": round(best_stream, 5),
        "overhead_ratio": round(best_stream / best_off, 4),
        "rows_streamed": rows_written,
        "identical_results": fingerprint_stream == fingerprint_off,
    }


def write_json(stats, path=OUTPUT):
    payload = {"benchmark": "stream_overhead", **stats}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_streaming_overhead_within_five_percent(benchmark, tmp_path):
    stats = once(benchmark, measure, tmp_dir=tmp_path)
    write_json(stats)
    print_table(
        ["metric", "value"],
        [[key, value] for key, value in stats.items()],
        title="E16 streaming overhead (bulk, cycle N={}) -> {}".format(
            N, OUTPUT.name
        ),
    )
    # Streaming must observe, never perturb.
    assert stats["identical_results"]
    # The bus published the run's full core-row set plus the final
    # progress heartbeat (bulk has no round loop to tick in).
    assert stats["rows_streamed"] >= 6
    # The acceptance gate: ≤5% wall-clock over the telemetry-off run.
    assert stats["overhead_ratio"] <= MAX_OVERHEAD, stats


def test_streaming_off_keeps_fast_paths_dark():
    """Without a bus, telemetry reports no tick appetite at all.

    This is the zero-cost contract: the engines consult ``wants_ticks``
    once per run, and a plain (post-hoc) Telemetry keeps every
    streaming hook switched off.
    """
    plain = Telemetry()
    assert plain.wants_ticks is False
    assert plain.wants_rounds is False
    assert plain.wants_sends is False
    streaming = Telemetry.with_streaming(progress=True)
    assert streaming.wants_ticks is True
    # Streaming must NOT flip the expensive per-send/per-round hooks —
    # that would silently force the bulk engine into replay mode.
    assert streaming.wants_rounds is False
    assert streaming.wants_sends is False
