"""E9 — Figure 2 / Lemma 8 / Theorem 5: the diameter lower-bound gadget.

Builds gadget instances for matched and unmatched subset families,
verifies the x vs x+2 diameter dichotomy and the d(S'_i, T'_j) table,
and evaluates the communication counting argument: only m + 1 edges
cross the cut, so Ω(n log n) disjointness bits force Ω(D + N/log N)
rounds.
"""

import pytest

from repro.analysis import print_table
from repro.graphs import bfs_distances, diameter
from repro.lowerbound import (
    build_diameter_gadget,
    cut_capacity_per_round,
    disjointness_bits_lower_bound,
    family_pair,
    information_lower_bound_rounds,
    minimal_m,
)

from .conftest import once


def build_and_measure(intersect, x=10, n=4, m=6, seed=13):
    x_family, y_family, m = family_pair(
        n, m=m, seed=seed, force_intersection=intersect
    )
    gadget = build_diameter_gadget(x_family, y_family, x=x, m=m)
    measured = diameter(gadget.graph)
    return gadget, measured


@pytest.mark.parametrize("intersect", [True, False], ids=["match", "disjoint"])
def test_lemma8_dichotomy(benchmark, intersect):
    gadget, measured = once(benchmark, build_and_measure, intersect)
    expected = gadget.expected_diameter()
    rows = []
    for i in range(gadget.n):
        dist = bfs_distances(gadget.graph, gadget.s_prime[i])
        for j in range(gadget.n):
            rows.append(
                (
                    "d(S'{}, T'{})".format(i + 1, j + 1),
                    dist[gadget.t_prime[j]],
                    gadget.expected_distance(i, j),
                )
            )
    print_table(
        ["pair", "measured", "Lemma 8"],
        rows,
        title="E9 Figure 2 gadget ({}): N={}, diameter measured {} / "
        "expected {}".format(
            "X∩Y≠∅" if intersect else "X∩Y=∅",
            gadget.graph.num_nodes,
            measured,
            expected,
        ),
    )
    assert measured == expected
    for _pair, got, want in rows:
        assert got == want


def test_counting_argument_scaling(benchmark):
    """The Ω(N/log N) round bound emerges from cut width m+1 = O(log N)."""

    def sweep():
        rows = []
        for n in (4, 8, 16, 32, 64):
            m = minimal_m(n)
            # construction size: 2n subsets' gadget nodes + (m+1) paths
            x = 10
            num_nodes = 2 * m + 6 * n + 2 + (m + 1) * (x - 7)
            bits = disjointness_bits_lower_bound(n)
            capacity = cut_capacity_per_round(m + 1, num_nodes)
            rounds = information_lower_bound_rounds(
                n, m + 1, num_nodes, diameter=x
            )
            rows.append((n, m, num_nodes, bits, capacity, rounds))
        return rows

    rows = once(benchmark, sweep)
    print_table(
        ["n (sets)", "m", "gadget N", "DISJ bits Ω(n log n)",
         "cut bits/round", "round lower bound"],
        rows,
        title="E9 Theorem 5 counting argument",
    )
    # the forced round count grows with n
    bounds = [r[-1] for r in rows]
    assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))


def test_gadget_cut_width_matches_theory(benchmark):
    gadget, _ = once(benchmark, build_and_measure, True)
    assert gadget.cut_width() == gadget.m + 1


def test_distributed_diameter_computation_on_gadget(benchmark):
    """Run an actual distributed diameter protocol across the cut.

    The counting phase of the BC algorithm *is* a distributed APSP /
    diameter protocol; running it on the Figure 2 gadget with the cut
    instrumented realizes the Theorem 5 simulation: the protocol's
    answer (x vs x+2) reveals disjointness, and all its information
    crossed the m+1-edge cut.
    """
    from repro.core import ProtocolConfig, distributed_betweenness

    def run():
        rows = []
        for intersect in (False, True):
            x_family, y_family, m = family_pair(
                2, m=4, seed=3, force_intersection=intersect
            )
            gadget = build_diameter_gadget(x_family, y_family, x=8, m=m)
            result = distributed_betweenness(
                gadget.graph,
                arithmetic="lfloat",
                cut=gadget.left_side,
                config=ProtocolConfig(aggregate=False),
            )
            rows.append(
                (
                    intersect,
                    gadget.expected_diameter(),
                    result.diameter,
                    result.rounds,
                    result.stats.cut.bits,
                )
            )
        return rows

    rows = once(benchmark, run)
    print_table(
        ["X∩Y≠∅ planted", "Lemma 8 diameter", "protocol diameter",
         "rounds", "bits across cut"],
        rows,
        title="E9 live distributed diameter decision on the gadget",
    )
    for intersect, expected, measured, _rounds, cut_bits in rows:
        assert measured == expected
        assert cut_bits > 0
    # the two cases are distinguished by the protocol's own output
    assert rows[0][2] != rows[1][2]
