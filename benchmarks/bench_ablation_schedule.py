"""E12 — Lemma 4 ablation: why the T_s + D - d(s,u) schedule matters.

Compares three schedules on the same graphs:

* the paper's **shortcut** DFS start times (Figure 1's numbers),
* the implementable **tree-walk** start times (what the simulator runs),
* a **naive** schedule where every source aggregates simultaneously.

The separated schedules produce zero collisions (no node ever has to
send aggregation values for two sources in one round); the naive one
collides Θ(N) times per node — exactly the "Aggregation Challenge" of
Section V that makes a straightforward distributed Brandes impossible
under CONGEST.
"""

import pytest

from repro.analysis import print_table
from repro.core import (
    bfs_start_times,
    count_collisions,
    naive_start_times,
    verify_separation,
)
from repro.graphs import (
    connected_erdos_renyi_graph,
    cycle_graph,
    grid_graph,
    karate_club_graph,
    path_graph,
)

from .conftest import once

GRAPHS = [
    path_graph(32),
    cycle_graph(32),
    grid_graph(6, 6),
    karate_club_graph(),
    connected_erdos_renyi_graph(36, 0.12, seed=8),
]


def evaluate(graph):
    shortcut = bfs_start_times(graph, 0, mode="shortcut")
    tree_walk = bfs_start_times(graph, 0, mode="tree_walk")
    naive = naive_start_times(graph)
    return {
        "shortcut": (
            verify_separation(graph, shortcut),
            count_collisions(graph, shortcut),
            max(shortcut.values()),
        ),
        "tree_walk": (
            verify_separation(graph, tree_walk),
            count_collisions(graph, tree_walk),
            max(tree_walk.values()),
        ),
        "naive": (
            verify_separation(graph, naive),
            count_collisions(graph, naive),
            max(naive.values()),
        ),
    }


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_schedule_ablation(benchmark, graph):
    outcome = once(benchmark, evaluate, graph)
    print_table(
        ["schedule", "Lemma 4 separation", "collisions", "makespan (max T_s)"],
        [
            [name, separated, collisions, makespan]
            for name, (separated, collisions, makespan) in outcome.items()
        ],
        title="E12 schedule ablation on {} (N={})".format(
            graph.name, graph.num_nodes
        ),
    )
    assert outcome["shortcut"][0] and outcome["shortcut"][1] == 0
    assert outcome["tree_walk"][0] and outcome["tree_walk"][1] == 0
    assert not outcome["naive"][0]
    assert outcome["naive"][1] > graph.num_nodes


def test_naive_collisions_scale_linearly_per_node(benchmark):
    def sweep():
        rows = []
        for n in (16, 32, 64):
            graph = cycle_graph(n)
            collisions = count_collisions(graph, naive_start_times(graph))
            rows.append((n, collisions, collisions / n))
        return rows

    rows = once(benchmark, sweep)
    print_table(
        ["N", "naive collisions", "per node"],
        rows,
        title="E12 naive aggregation collides Θ(N) per node",
    )
    per_node = [p for _, _, p in rows]
    assert per_node[-1] >= per_node[0]
