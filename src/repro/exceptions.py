"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch all library-specific failures with a single ``except``
clause.  Sub-hierarchies mirror the package layout: graph construction
errors, CONGEST-model violations raised by the simulator, arithmetic
errors from the L-bit floating point substrate, and protocol errors from
the distributed algorithm itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for graph construction or query failures."""


class InvalidEdgeError(GraphError):
    """An edge is malformed: a self loop, a duplicate, or an unknown node."""


class UnknownNodeError(GraphError, KeyError):
    """A node identifier does not exist in the graph."""


class GraphNotConnectedError(GraphError):
    """An algorithm requiring a connected graph was given a disconnected one.

    The paper's algorithm pipelines one BFS per node over a single global
    BFS tree, so every node must be reachable from the root.
    """


class EmptyGraphError(GraphError):
    """An operation that needs at least one node was given an empty graph."""


class CongestError(ReproError):
    """Base class for CONGEST-model simulator failures."""


class CongestViolationError(CongestError):
    """A node exceeded the per-edge per-round bit budget in strict mode.

    Attributes
    ----------
    round_number:
        The round in which the violation occurred.
    sender, receiver:
        The directed edge on which too many bits were enqueued.
    bits_used, bits_allowed:
        The offending load and the configured budget.
    """

    def __init__(self, round_number, sender, receiver, bits_used, bits_allowed):
        self.round_number = round_number
        self.sender = sender
        self.receiver = receiver
        self.bits_used = bits_used
        self.bits_allowed = bits_allowed
        super().__init__(
            "CONGEST violation in round {}: edge {} -> {} carries {} bits "
            "but only {} are allowed".format(
                round_number, sender, receiver, bits_used, bits_allowed
            )
        )


class EngineCapabilityError(CongestError):
    """A run was pinned to an engine that cannot execute it.

    Raised when ``engine="bulk"`` is requested explicitly but the run
    falls outside the bulk engine's capability envelope (numpy missing,
    exact arithmetic, fault injection, custom node algorithms, ...).
    ``engine="auto"`` never raises this: the dispatcher silently falls
    back to the next capable engine instead.

    Attributes
    ----------
    engine:
        The engine that was requested.
    reason:
        Why the engine cannot run this simulation.
    """

    def __init__(self, engine: str, reason: str):
        self.engine = engine
        self.reason = reason
        super().__init__(
            "engine {!r} cannot run this simulation: {}".format(engine, reason)
        )


class SimulationNotTerminatedError(CongestError):
    """The simulator hit its round limit before all nodes halted.

    Attributes
    ----------
    round_number:
        The round at which the simulator gave up (first round past the
        limit).
    round_limit:
        The configured ``max_rounds`` safety valve.
    pending_nodes:
        Ids of the nodes that had not set ``done`` when the limit was
        hit — the first place to look when a protocol hangs.
    graph_name:
        Name of the graph the run was on (diagnostic convenience).
    """

    def __init__(self, round_number, round_limit, pending_nodes, graph_name=None):
        self.round_number = round_number
        self.round_limit = round_limit
        self.pending_nodes = tuple(pending_nodes)
        self.graph_name = graph_name
        shown = ", ".join(str(v) for v in self.pending_nodes[:10])
        if len(self.pending_nodes) > 10:
            shown += ", ... ({} total)".format(len(self.pending_nodes))
        super().__init__(
            "simulation exceeded {} rounds on {!r}: {} node(s) never "
            "halted ({})".format(
                round_limit,
                graph_name,
                len(self.pending_nodes),
                shown or "none pending, messages still in flight",
            )
        )


class SimulationStalledError(CongestError):
    """Fault injection starved the run of progress (crash-aware termination).

    Raised by the fault injector when no *fresh* protocol traffic (a
    send that is neither a retransmission nor an acknowledgement) has
    appeared for ``FaultPlan.stall_patience`` consecutive rounds while
    nodes are still pending — the signature of an unrecoverable fault
    (e.g. a permanently crashed node partitioning the protocol).  The
    pipeline converts it into a structured *partial* result instead of
    letting the run spin to the round limit.

    Attributes
    ----------
    round_number:
        The round at which the stall was declared.
    last_progress_round:
        The last round that carried fresh (non-recovery) traffic.
    pending_nodes:
        Ids of nodes that had not halted at stall time.
    crashed_nodes:
        Ids of nodes inside a crash window at stall time (permanent
        crashes stay here forever).
    """

    def __init__(
        self, round_number, last_progress_round, pending_nodes, crashed_nodes
    ):
        self.round_number = round_number
        self.last_progress_round = last_progress_round
        self.pending_nodes = tuple(pending_nodes)
        self.crashed_nodes = tuple(crashed_nodes)
        super().__init__(
            "simulation stalled at round {}: no fresh traffic since round "
            "{}; {} node(s) pending, {} crashed ({})".format(
                round_number,
                last_progress_round,
                len(self.pending_nodes),
                len(self.crashed_nodes),
                ", ".join(str(v) for v in self.crashed_nodes[:10]) or "-",
            )
        )


class WireCodecError(CongestError):
    """The typed wire codec was misused or detected an inconsistency.

    Raised when a value cannot be represented in its declared field
    (negative or over-wide), when an unregistered message type is
    encoded or an unknown type tag decoded, and by the simulator's
    frame audit when a materialized per-edge frame disagrees with the
    bits the accounting charged for it.
    """


class FrameChecksumError(WireCodecError):
    """A checked frame failed its CRC-8 verification.

    Raised by :func:`repro.wire.codec.decode_frame_checked` when the
    transmitted checksum disagrees with the one recomputed from the
    received payload — the corruption-rejecting decode path of the
    fault model (a receiver discards the frame; link-level recovery is
    the transport's job).

    Attributes
    ----------
    expected, actual:
        The recomputed and the transmitted CRC-8 values.
    """

    def __init__(self, expected, actual):
        self.expected = expected
        self.actual = actual
        super().__init__(
            "frame checksum mismatch: payload hashes to {:#04x} but the "
            "frame carries {:#04x}".format(expected, actual)
        )


class CheckpointError(CongestError):
    """A shard-runtime checkpoint could not be read back safely.

    Raised by :mod:`repro.shard.checkpoint` when a snapshot directory is
    unusable: a missing or torn manifest, a schema-version mismatch, a
    per-file blake2b checksum that does not match the bytes on disk, or
    metadata (graph fingerprint, worker count, partitioner, protocol)
    that disagrees with the run asking to resume.  The invariant is
    *fail loudly, never resume wrong*: a corrupt checkpoint produces
    this error (and the supervisor falls back to an older snapshot),
    not a silently divergent run.
    """


class CheckpointPause(CongestError):
    """Control-flow signal: a run stopped cleanly at a checkpoint.

    Raised by the shard coordinator when ``SupervisionConfig.stop_after``
    is set, *after* the round-``stop_after`` checkpoint is durably on
    disk.  Test harnesses and the CLI catch it to simulate "the process
    died here" without an actual SIGKILL; ``repro bc`` converts it into
    exit code 3 and prints the checkpoint path to resume from.

    Attributes
    ----------
    checkpoint_path:
        Directory of the snapshot the run can be resumed from.
    round_number:
        The round boundary at which the run paused.
    """

    def __init__(self, checkpoint_path, round_number):
        self.checkpoint_path = str(checkpoint_path)
        self.round_number = round_number
        super().__init__(
            "run paused at round {} after writing checkpoint {}".format(
                round_number, self.checkpoint_path
            )
        )


class InvariantViolationError(CongestError):
    """A telemetry monitor observed a violated runtime invariant.

    Raised only by monitors configured with ``mode="raise"``
    (:mod:`repro.obs.monitors`): an aggregation-schedule collision that
    Lemma 4 forbids, a per-edge load above the CONGEST budget of
    Lemmas 3–5, or an L-float error outside the Theorem 1 envelope.

    Attributes
    ----------
    monitor:
        Name of the monitor that fired.
    description:
        Human-readable account of the specific violation.
    """

    def __init__(self, monitor: str, description: str):
        self.monitor = monitor
        self.description = description
        super().__init__("[{}] {}".format(monitor, description))


class ProtocolError(ReproError):
    """A distributed protocol reached an internally inconsistent state.

    Raised, for example, when two aggregation messages for different
    sources collide at a node in the same round, which Lemma 4 of the
    paper proves cannot happen; seeing this error indicates a scheduling
    bug rather than a user mistake.
    """


class ArithmeticModeError(ReproError):
    """An arithmetic value or mode was used inconsistently."""


class LFloatRangeError(ArithmeticModeError):
    """A value falls outside the representable range of the L-bit format.

    The paper's format stores a number ``a = y * 2**x`` with an L-bit
    mantissa and an exponent bounded by ``|x| <= 2**L - 1``; values beyond
    that range cannot be encoded and indicate L was chosen too small for
    the graph at hand.
    """


class LowerBoundParameterError(ReproError):
    """Parameters for a lower-bound gadget violate its preconditions.

    The Figure 2 construction needs ``x >= 8`` and an even ``m`` with
    ``C(m, m/2) >= n**2``; the Figure 3 construction inherits the subset
    family requirements.
    """
