"""Shared single-source machinery for the centralized centrality baselines.

Brandes' algorithm (Algorithm 1 of the paper) factors into a BFS stage
that produces, per source s: distances d(s, ·), shortest-path counts
sigma_s·, predecessor sets P_s(·) and a non-increasing-distance
traversal order; and a dependency-accumulation stage applying the
recursion delta_s·(v) = sum_{w: v in P_s(w)} sigma_sv/sigma_sw *
(1 + delta_s·(w)) (Eq. 9).  Stress centrality and the psi-form recursion
(Eq. 14) reuse the same BFS stage, so it lives here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple, Union

from repro.graphs.graph import Graph

NumberLike = Union[float, Fraction]


@dataclass
class SSSPResult:
    """Everything Brandes' BFS stage learns about one source.

    Attributes
    ----------
    source:
        The BFS root s.
    dist:
        ``dist[v]`` = d(s, v), or -1 if unreachable.
    sigma:
        ``sigma[v]`` = number of shortest s-v paths (exact int).
    preds:
        ``preds[v]`` = P_s(v), the shortest-path predecessors of v.
    order:
        Visited nodes in non-decreasing distance (the BFS pop order);
        dependency accumulation walks it backwards.
    """

    source: int
    dist: List[int]
    sigma: List[int]
    preds: List[List[int]]
    order: List[int]


def single_source_shortest_paths(graph: Graph, source: int) -> SSSPResult:
    """Lines 1–19 of Algorithm 1: BFS with path counting from ``source``."""
    n = graph.num_nodes
    dist = [-1] * n
    sigma = [0] * n
    preds: List[List[int]] = [[] for _ in range(n)]
    order: List[int] = []
    dist[source] = 0
    sigma[source] = 1
    queue = deque([source])
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in graph.neighbors(v):
            if dist[w] < 0:
                dist[w] = dist[v] + 1
                queue.append(w)
            if dist[w] == dist[v] + 1:
                sigma[w] += sigma[v]
                preds[w].append(v)
    return SSSPResult(source, dist, sigma, preds, order)


def accumulate_dependencies(
    result: SSSPResult, exact: bool = False
) -> List[NumberLike]:
    """Lines 20–29 of Algorithm 1: the dependency recursion (Eq. 9).

    Returns ``delta`` with ``delta[v] = delta_{s·}(v)``; entries for
    unreachable nodes are 0.  With ``exact=True`` the arithmetic uses
    :class:`fractions.Fraction` so the result is the true rational value.
    """
    zero: NumberLike = Fraction(0) if exact else 0.0
    one: NumberLike = Fraction(1) if exact else 1.0
    delta: List[NumberLike] = [zero] * len(result.dist)
    for w in reversed(result.order):
        coefficient = (one + delta[w]) / result.sigma[w]
        for v in result.preds[w]:
            delta[v] = delta[v] + result.sigma[v] * coefficient
    return delta


def accumulate_psi(result: SSSPResult, exact: bool = True) -> List[NumberLike]:
    """The psi-form recursion of Eq. (14): psi_s(v) = delta_s·(v)/sigma_sv.

    This is the quantity the *distributed* algorithm propagates; having a
    centralized reference lets tests pin down each node's aggregation
    value independently of the simulator.
    """
    zero: NumberLike = Fraction(0) if exact else 0.0
    psi: List[NumberLike] = [zero] * len(result.dist)
    for w in reversed(result.order):
        if w == result.source:
            continue
        term = (
            Fraction(1, result.sigma[w]) if exact else 1.0 / result.sigma[w]
        ) + psi[w]
        for v in result.preds[w]:
            psi[v] = psi[v] + term
    return psi


def shortest_path_descendants(graph: Graph, source: int) -> List[set]:
    """R_s(v): all descendants of v on shortest paths from ``source``.

    w is a descendant of v iff some shortest path from s through v
    continues to w, i.e. v is an ancestor of w in the shortest-path DAG.
    The paper's Lemma 2 characterizes the psi recursion through these
    sets; note that the correct identity weights each descendant by its
    DAG-path multiplicity (:func:`descendant_path_counts`):

        ``psi_s(v) = sum over q in R_s(v) of sigma^s_vq / sigma_sq``

    where ``sigma^s_vq`` counts the shortest v-q paths lying on shortest
    s-q paths.  The paper's unweighted set form holds exactly when the
    DAG below v is a tree (every sigma^s_vq = 1); tests
    (`test_section6_inequalities.py`) demonstrate both the corrected
    identity and a counterexample to the literal one.
    """
    result = single_source_shortest_paths(graph, source)
    descendants: List[set] = [set() for _ in range(graph.num_nodes)]
    for w in reversed(result.order):
        if w == source:
            continue
        for v in result.preds[w]:
            descendants[v].add(w)
            descendants[v] |= descendants[w]
    return descendants


def descendant_path_counts(graph: Graph, source: int, v: int) -> Dict[int, int]:
    """sigma^s_vq: shortest v-q paths lying on shortest s-q paths.

    For every descendant q of v in the shortest-path DAG of ``source``,
    counts the DAG paths from v to q (the multiplicity with which q's
    reciprocal appears in psi_s(v)).  Returns only nonzero entries,
    excluding v itself.
    """
    result = single_source_shortest_paths(graph, source)
    counts: Dict[int, int] = {v: 1}
    for w in result.order:
        if result.dist[w] <= result.dist[v] or result.dist[w] < 0:
            continue
        total = sum(counts.get(p, 0) for p in result.preds[w])
        if total:
            counts[w] = total
    counts.pop(v, None)
    return counts


def pair_dependencies(
    graph: Graph, source: int
) -> Dict[Tuple[int, int], Fraction]:
    """All pair dependencies delta_{s,t}(v) for one source, exactly.

    Returns a map ``(t, v) -> delta_st(v)`` including only nonzero
    entries with ``v not in {s, t}``.  Quadratic per source — used only
    by tests and the naive baseline on small graphs.
    """
    result = single_source_shortest_paths(graph, source)
    out: Dict[Tuple[int, int], Fraction] = {}
    # delta_st(v) = sigma_sv * sigma_vt / sigma_st if d(s,v)+d(v,t)=d(s,t)
    per_target = {
        t: single_source_shortest_paths(graph, t) for t in graph.nodes()
    }
    for t in graph.nodes():
        if t == source or result.dist[t] < 0:
            continue
        back = per_target[t]
        for v in graph.nodes():
            if v in (source, t) or result.dist[v] < 0:
                continue
            if result.dist[v] + back.dist[v] == result.dist[t]:
                value = Fraction(
                    result.sigma[v] * back.sigma[v], result.sigma[t]
                )
                if value:
                    out[(t, v)] = value
    return out
