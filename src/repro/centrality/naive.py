"""Naive betweenness baselines, used as independent correctness oracles.

Two implementations that share no code with Brandes:

* :func:`naive_betweenness` uses the textbook pair-dependency formula
  ``delta_st(v) = sigma_sv * sigma_vt / sigma_st`` over all ordered
  pairs — O(N^2) BFS work plus an O(N^3) triple loop.  This is the
  pre-Brandes approach the paper's related work attributes to Jacob et
  al. [9].
* :func:`enumerate_betweenness` literally enumerates every shortest
  path by backtracking through predecessor DAGs and counts interior
  visits.  Exponential in the worst case; only for tiny graphs, but it
  is the most direct transcription of Eq. (4).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

from repro.centrality.accumulation import single_source_shortest_paths
from repro.graphs.graph import Graph


def naive_betweenness(
    graph: Graph, normalized: bool = False
) -> Dict[int, Fraction]:
    """Exact BC via the pair-dependency formula (no Brandes recursion)."""
    n = graph.num_nodes
    sssp = [single_source_shortest_paths(graph, s) for s in graph.nodes()]
    bc: Dict[int, Fraction] = {v: Fraction(0) for v in graph.nodes()}
    for s in graph.nodes():
        for t in graph.nodes():
            if t == s or sssp[s].dist[t] < 0:
                continue
            d_st = sssp[s].dist[t]
            sigma_st = sssp[s].sigma[t]
            for v in graph.nodes():
                if v in (s, t) or sssp[s].dist[v] < 0:
                    continue
                if sssp[s].dist[v] + sssp[t].dist[v] == d_st:
                    bc[v] += Fraction(
                        sssp[s].sigma[v] * sssp[t].sigma[v], sigma_st
                    )
    for v in bc:
        bc[v] /= 2  # undirected: each unordered pair counted twice
    if normalized:
        pairs = Fraction((n - 1) * (n - 2), 2)
        if pairs > 0:
            for v in bc:
                bc[v] /= pairs
        else:
            bc = {v: Fraction(0) for v in bc}
    return bc


def _all_shortest_paths(graph: Graph, s: int, t: int) -> List[List[int]]:
    """Every shortest s-t path, via predecessor-DAG backtracking."""
    result = single_source_shortest_paths(graph, s)
    if result.dist[t] < 0:
        return []
    paths: List[List[int]] = []

    def backtrack(v: int, suffix: List[int]) -> None:
        if v == s:
            paths.append([s] + suffix)
            return
        for p in result.preds[v]:
            backtrack(p, [v] + suffix)

    backtrack(t, [])
    return paths


def enumerate_betweenness(graph: Graph) -> Dict[int, Fraction]:
    """Exact BC by brute-force shortest-path enumeration (tiny graphs!).

    Directly evaluates Eq. (4):
    ``CB(v) = sum_{s != t != v} sigma_st(v) / sigma_st`` then halves for
    the undirected convention.
    """
    bc: Dict[int, Fraction] = {v: Fraction(0) for v in graph.nodes()}
    for s in graph.nodes():
        for t in graph.nodes():
            if t == s:
                continue
            paths = _all_shortest_paths(graph, s, t)
            if not paths:
                continue
            total = len(paths)
            for v in graph.nodes():
                if v in (s, t):
                    continue
                through = sum(1 for p in paths if v in p)
                if through:
                    bc[v] += Fraction(through, total)
    return {v: value / 2 for v, value in bc.items()}
