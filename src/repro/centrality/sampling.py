"""Sampling-based betweenness approximation (related work, Section II).

The paper contrasts its exact distributed algorithm with the sampling
approximations of Brandes–Pich [11] / Eppstein–Wang [12] and the
adaptive scheme of Bader et al. [13].  We implement both so the
benchmark suite can reproduce the accuracy-versus-work trade-off the
related-work section describes:

* :func:`sampled_betweenness` extrapolates from k uniformly random
  pivot sources: the estimate of CB(v) is ``(N / k) * sum over sampled
  sources of delta_s·(v)`` (halved for the undirected convention).
  Hoeffding gives the paper's quoted Omega(log(N/delta)/eps^2) sample
  bound for +-eps*N(N-1)/2... accuracy.
* :func:`adaptive_sampled_betweenness` targets one node and keeps
  sampling until its accumulated dependency exceeds ``c * N``, after
  which the estimate ``N * S / k`` is within a constant factor with
  high probability for high-centrality nodes.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.centrality.accumulation import (
    accumulate_dependencies,
    single_source_shortest_paths,
)
from repro.graphs.graph import Graph


def sampled_betweenness(
    graph: Graph,
    num_samples: int,
    seed: int = 0,
    normalized: bool = False,
) -> Dict[int, float]:
    """Brandes–Pich pivot sampling estimate of every node's BC.

    Parameters
    ----------
    num_samples:
        Number of pivot sources k (sampled without replacement when
        k <= N, otherwise with replacement).
    seed:
        RNG seed; the estimate is deterministic given the seed.
    normalized:
        Divide by (N-1)(N-2)/2 as in :func:`brandes_betweenness`.
    """
    n = graph.num_nodes
    if n == 0 or num_samples <= 0:
        return {v: 0.0 for v in graph.nodes()}
    rng = random.Random(seed)
    if num_samples <= n:
        pivots = rng.sample(range(n), num_samples)
    else:
        pivots = [rng.randrange(n) for _ in range(num_samples)]
    totals = {v: 0.0 for v in graph.nodes()}
    for s in pivots:
        result = single_source_shortest_paths(graph, s)
        delta = accumulate_dependencies(result, exact=False)
        for v in graph.nodes():
            if v != s:
                totals[v] += delta[v]
    scale = n / len(pivots) / 2.0  # extrapolate, then undirected halving
    estimate = {v: value * scale for v, value in totals.items()}
    if normalized:
        pairs = (n - 1) * (n - 2) / 2.0
        if pairs > 0:
            estimate = {v: value / pairs for v, value in estimate.items()}
        else:
            estimate = {v: 0.0 for v in estimate}
    return estimate


def required_samples(num_nodes: int, eps: float, delta: float) -> int:
    """The Omega(log(N/delta)/eps^2) sample count quoted in Section II."""
    import math

    if eps <= 0 or not 0 < delta < 1:
        raise ValueError("need eps > 0 and 0 < delta < 1")
    if num_nodes < 2:
        return 1
    return max(1, int(math.ceil(math.log(num_nodes / delta) / (eps * eps))))


def adaptive_sampled_betweenness(
    graph: Graph,
    node: int,
    c: float = 5.0,
    seed: int = 0,
    max_samples: Optional[int] = None,
) -> Tuple[float, int]:
    """Bader-style adaptive estimate of one node's BC.

    Samples random sources, accumulating S = sum delta_s·(node), and
    stops as soon as ``S >= c * N`` (the node has proven itself
    high-centrality) or after ``max_samples`` (default N) sources.

    Returns
    -------
    (estimate, samples_used):
        The BC estimate ``N * S / (2 * k)`` and the number of SSSP
        computations spent.
    """
    n = graph.num_nodes
    if not graph.has_node(node):
        raise KeyError(node)
    if n < 3:
        return 0.0, 0
    rng = random.Random(seed)
    budget = max_samples if max_samples is not None else n
    accumulated = 0.0
    used = 0
    while used < budget:
        s = rng.randrange(n)
        used += 1
        if s != node:
            result = single_source_shortest_paths(graph, s)
            delta = accumulate_dependencies(result, exact=False)
            accumulated += delta[node]
        if accumulated >= c * n:
            break
    if used == 0:
        return 0.0, 0
    return n * accumulated / (2.0 * used), used
