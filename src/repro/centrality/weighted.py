"""Centralized weighted betweenness (the Dijkstra variant of Brandes).

The O(NM + N^2 log N) weighted Brandes algorithm the paper's related
work cites — the reference the subdivision-based distributed variant is
validated against.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Dict, List, Union

from repro.graphs.weighted import WeightedGraph

NumberLike = Union[float, Fraction]


def weighted_brandes_betweenness(
    graph: WeightedGraph,
    normalized: bool = False,
    exact: bool = False,
) -> Dict[int, NumberLike]:
    """Exact betweenness of every node of a weighted graph.

    Same conventions as the unweighted
    :func:`repro.centrality.brandes_betweenness`: the undirected
    dependency sum is halved; ``normalized`` divides by (N-1)(N-2)/2.
    """
    zero: NumberLike = Fraction(0) if exact else 0.0
    one: NumberLike = Fraction(1) if exact else 1.0
    bc: Dict[int, NumberLike] = {v: zero for v in graph.nodes()}
    n = graph.num_nodes
    for s in graph.nodes():
        dist, sigma, preds, order = _dijkstra_with_preds(graph, s)
        delta: List[NumberLike] = [zero] * n
        for w in reversed(order):
            coefficient = (one + delta[w]) / sigma[w]
            for v in preds[w]:
                delta[v] = delta[v] + sigma[v] * coefficient
        for v in graph.nodes():
            if v != s:
                bc[v] = bc[v] + delta[v]
    if normalized:
        pairs = (n - 1) * (n - 2)
        if pairs <= 0:
            return {v: zero for v in bc}
        factor = Fraction(1, pairs) if exact else 1.0 / pairs
    else:
        factor = Fraction(1, 2) if exact else 0.5
    return {v: value * factor for v, value in bc.items()}


def _dijkstra_with_preds(graph: WeightedGraph, source: int):
    """Dijkstra producing (dist, sigma, preds, settle order)."""
    inf = float("inf")
    n = graph.num_nodes
    dist = [inf] * n
    sigma = [0] * n
    preds: List[List[int]] = [[] for _ in range(n)]
    order: List[int] = []
    done = [False] * n
    dist[source] = 0
    sigma[source] = 1
    heap = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        order.append(v)
        for u, w in graph.neighbors(v):
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                sigma[u] = sigma[v]
                preds[u] = [v]
                heapq.heappush(heap, (nd, u))
            elif nd == dist[u] and not done[u]:
                sigma[u] += sigma[v]
                preds[u].append(v)
    return dist, sigma, preds, order
