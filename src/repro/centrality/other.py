"""The other centrality indices defined in Section I of the paper.

Closeness (Eq. 1), graph centrality (Eq. 2) and stress centrality
(Eq. 3).  Closeness and graph centrality reduce to SSSP and are
therefore "easy" (the paper's motivation for focusing on betweenness);
stress centrality shares Brandes' structure with an integer-valued
recursion.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Union

from repro.centrality.accumulation import (
    SSSPResult,
    single_source_shortest_paths,
)
from repro.exceptions import GraphNotConnectedError
from repro.graphs.graph import Graph
from repro.graphs.properties import bfs_distances

NumberLike = Union[float, Fraction]


def closeness_centrality(graph: Graph, exact: bool = False) -> Dict[int, NumberLike]:
    """CC(v) = 1 / sum_t d(v, t) (Eq. 1).  Requires a connected graph.

    For the degenerate single-node graph the sum of distances is 0 and
    closeness is defined as 0.
    """
    out: Dict[int, NumberLike] = {}
    for v in graph.nodes():
        dist = bfs_distances(graph, v)
        if any(d < 0 for d in dist):
            raise GraphNotConnectedError("closeness needs a connected graph")
        total = sum(dist)
        if total == 0:
            out[v] = Fraction(0) if exact else 0.0
        else:
            out[v] = Fraction(1, total) if exact else 1.0 / total
    return out


def graph_centrality(graph: Graph, exact: bool = False) -> Dict[int, NumberLike]:
    """CG(v) = 1 / max_t d(v, t) (Eq. 2).  Requires a connected graph."""
    out: Dict[int, NumberLike] = {}
    for v in graph.nodes():
        dist = bfs_distances(graph, v)
        if any(d < 0 for d in dist):
            raise GraphNotConnectedError(
                "graph centrality needs a connected graph"
            )
        ecc = max(dist)
        if ecc == 0:
            out[v] = Fraction(0) if exact else 0.0
        else:
            out[v] = Fraction(1, ecc) if exact else 1.0 / ecc
    return out


def stress_centrality(graph: Graph) -> Dict[int, int]:
    """CS(v) = number of shortest paths through v (Eq. 3), exactly.

    Computed with the stress variant of Brandes' accumulation: per
    source s, the number of shortest paths passing an interior node v is
    ``sigma_sv * tau_s(v)`` where ``tau_s(v)`` counts shortest-path
    continuations beyond v (see :func:`_stress_from_source`).  The
    undirected convention counts each unordered {s, t} pair once, so the
    ordered-pair total is halved; the result is always integral.
    """
    totals: Dict[int, int] = {v: 0 for v in graph.nodes()}
    for s in graph.nodes():
        result = single_source_shortest_paths(graph, s)
        stress = _stress_from_source(graph, result)
        for v in graph.nodes():
            totals[v] += stress[v]
    return {v: value // 2 for v, value in totals.items()}


def _stress_from_source(graph: Graph, result: SSSPResult) -> List[int]:
    """Shortest paths from ``result.source`` passing through each node.

    ``tau[v]`` counts shortest paths that start at v's level and extend
    strictly beyond v, via the reverse recursion
    ``tau[v] = sum_{w: v in P_s(w)} (1 + tau[w])`` — each shortest-path
    descendant w contributes the path segment ending at w plus all of
    w's own extensions.  Then ``sigma_sv * tau[v]`` is the number of
    shortest s-t paths (t != v) with v interior, because every such path
    factors uniquely into one of the sigma_sv prefixes and one of the
    tau[v] suffixes.
    """
    tau = [0] * graph.num_nodes
    for w in reversed(result.order):
        if w == result.source:
            continue
        for v in result.preds[w]:
            tau[v] += 1 + tau[w]
    stress = [0] * graph.num_nodes
    for v in graph.nodes():
        if v != result.source and result.dist[v] > 0:
            stress[v] = result.sigma[v] * tau[v]
    return stress
