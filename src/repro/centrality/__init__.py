"""Centralized centrality baselines: Brandes (Algorithm 1) and friends."""

from repro.centrality.accumulation import (
    SSSPResult,
    accumulate_dependencies,
    accumulate_psi,
    pair_dependencies,
    descendant_path_counts,
    shortest_path_descendants,
    single_source_shortest_paths,
)
from repro.centrality.brandes import (
    brandes_betweenness,
    dependency_matrix,
    single_node_betweenness,
)
from repro.centrality.naive import enumerate_betweenness, naive_betweenness
from repro.centrality.other import (
    closeness_centrality,
    graph_centrality,
    stress_centrality,
)
from repro.centrality.weighted import weighted_brandes_betweenness
from repro.centrality.sampling import (
    adaptive_sampled_betweenness,
    required_samples,
    sampled_betweenness,
)

__all__ = [
    "SSSPResult",
    "accumulate_dependencies",
    "accumulate_psi",
    "adaptive_sampled_betweenness",
    "brandes_betweenness",
    "closeness_centrality",
    "dependency_matrix",
    "enumerate_betweenness",
    "graph_centrality",
    "naive_betweenness",
    "pair_dependencies",
    "required_samples",
    "sampled_betweenness",
    "single_node_betweenness",
    "descendant_path_counts",
    "shortest_path_descendants",
    "single_source_shortest_paths",
    "stress_centrality",
    "weighted_brandes_betweenness",
]
