"""Centralized Brandes betweenness centrality (Algorithm 1 of the paper).

This is the O(NM) reference implementation the distributed algorithm is
validated against.  Two conventions, both exposed:

* **Paper/networkx convention (default):** for undirected graphs the sum
  of dependencies over all sources counts every (s, t) pair twice, so
  the total is halved — this is how the paper's Figure 1 example reaches
  CB(v2) = 7/2.
* ``normalized=True`` additionally divides by (N-1)(N-2)/2, the number
  of pairs that could pass through a node.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Union

from repro.centrality.accumulation import (
    accumulate_dependencies,
    single_source_shortest_paths,
)
from repro.graphs.graph import Graph

NumberLike = Union[float, Fraction]


def brandes_betweenness(
    graph: Graph,
    normalized: bool = False,
    exact: bool = False,
) -> Dict[int, NumberLike]:
    """Betweenness centrality of every node via Brandes' algorithm.

    Parameters
    ----------
    graph:
        Undirected unweighted graph (need not be connected; pairs in
        different components simply contribute nothing).
    normalized:
        Divide by (N-1)(N-2)/2 (0 for N < 3 ⇒ all-zero output).
    exact:
        Use :class:`fractions.Fraction` arithmetic end to end; the
        returned dict then maps to exact rationals.

    Returns
    -------
    dict
        ``node -> CB(node)``.

    Examples
    --------
    >>> from repro.graphs import figure1_graph
    >>> bc = brandes_betweenness(figure1_graph(), exact=True)
    >>> bc[1]  # v2 in the paper's numbering
    Fraction(7, 2)
    """
    zero: NumberLike = Fraction(0) if exact else 0.0
    bc: Dict[int, NumberLike] = {v: zero for v in graph.nodes()}
    for s in graph.nodes():
        result = single_source_shortest_paths(graph, s)
        delta = accumulate_dependencies(result, exact=exact)
        # delta is a list indexed by node id; accumulate it directly
        # instead of re-enumerating graph.nodes() per source.
        for v, dep in enumerate(delta):
            if v != s:
                bc[v] = bc[v] + dep
    return _rescale(bc, graph.num_nodes, normalized, exact)


def _rescale(
    bc: Dict[int, NumberLike],
    num_nodes: int,
    normalized: bool,
    exact: bool,
) -> Dict[int, NumberLike]:
    """Apply the undirected halving and optional normalization."""
    if normalized:
        pairs = (num_nodes - 1) * (num_nodes - 2)  # ordered pairs
        if pairs <= 0:
            zero: NumberLike = Fraction(0) if exact else 0.0
            return {v: zero for v in bc}
        factor = Fraction(1, pairs) if exact else 1.0 / pairs
    else:
        factor = Fraction(1, 2) if exact else 0.5
    return {v: value * factor for v, value in bc.items()}


def single_node_betweenness(
    graph: Graph, node: int, exact: bool = True
) -> NumberLike:
    """CB of one node (still runs all N sources; convenience for tests)."""
    return brandes_betweenness(graph, exact=exact)[node]


def dependency_matrix(
    graph: Graph, exact: bool = True
) -> Dict[int, Dict[int, NumberLike]]:
    """All dependencies ``delta[s][v] = delta_{s·}(v)``.

    The paper's Figure 1 walkthrough quotes individual delta values
    (e.g. delta_{v1·}(v2) = 3); this helper reproduces that table.
    """
    out: Dict[int, Dict[int, NumberLike]] = {}
    for s in graph.nodes():
        result = single_source_shortest_paths(graph, s)
        delta = accumulate_dependencies(result, exact=exact)
        out[s] = {v: delta[v] for v in graph.nodes()}
    return out
