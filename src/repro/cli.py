"""Command-line interface: ``python -m repro <command> ...``.

Subcommands
-----------
``bc``        distributed betweenness on a named or file-loaded graph
``apsp``      counting phase only: distances, closeness, graph centrality
``stress``    distributed stress centrality
``sample``    sampled (approximate) distributed betweenness
``schedule``  analytic BFS start / sending times (Figure 1 style tables)
``gadget``    build and verify a Section IX lower-bound gadget
``report``    instrumented run: phase table, invariant monitor verdicts,
              optional profile and JSONL metrics export
``info``      graph statistics

Graphs are specified with ``--graph``: either a named generator
(``karate``, ``figure1``, ``path:20``, ``cycle:16``, ``grid:4x5``,
``er:30:0.2:7`` as name:args) or ``--file edgelist.txt``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import print_table
from repro.centrality import brandes_betweenness
from repro.core import (
    bfs_start_times,
    distributed_apsp,
    distributed_betweenness,
    distributed_sampled_betweenness,
    distributed_stress,
    sending_times,
)
from repro.exceptions import ReproError
from repro.graphs import (
    Graph,
    balanced_tree,
    complete_graph,
    connected_erdos_renyi_graph,
    cycle_graph,
    diamond_chain_graph,
    figure1_graph,
    grid_graph,
    hypercube_graph,
    karate_club_graph,
    path_graph,
    read_edge_list,
    star_graph,
)


def parse_graph_spec(spec: str) -> Graph:
    """Resolve a ``name[:arg[:arg...]]`` graph spec into a Graph."""
    name, _, rest = spec.partition(":")
    args = rest.split(":") if rest else []
    try:
        if name == "karate":
            return karate_club_graph()
        if name == "figure1":
            return figure1_graph()
        if name == "path":
            return path_graph(int(args[0]))
        if name == "cycle":
            return cycle_graph(int(args[0]))
        if name == "star":
            return star_graph(int(args[0]))
        if name == "complete":
            return complete_graph(int(args[0]))
        if name == "grid":
            rows, cols = args[0].split("x")
            return grid_graph(int(rows), int(cols))
        if name == "tree":
            return balanced_tree(int(args[0]), int(args[1]))
        if name == "hypercube":
            return hypercube_graph(int(args[0]))
        if name == "diamonds":
            return diamond_chain_graph(int(args[0]))
        if name == "er":
            n = int(args[0])
            p = float(args[1])
            seed = int(args[2]) if len(args) > 2 else 0
            return connected_erdos_renyi_graph(n, p, seed)
    except (IndexError, ValueError) as err:
        raise SystemExit("bad graph spec {!r}: {}".format(spec, err))
    raise SystemExit(
        "unknown graph {!r} (try karate, figure1, path:N, cycle:N, star:N, "
        "complete:N, grid:RxC, tree:B:H, hypercube:D, diamonds:K, "
        "er:N:P[:SEED])".format(name)
    )


def _load_graph(args: argparse.Namespace) -> Graph:
    if getattr(args, "file", None):
        if str(args.file).endswith(".json"):
            from repro.graphs import read_json

            return read_json(args.file)
        return read_edge_list(args.file)
    return parse_graph_spec(args.graph)


def _add_graph_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--graph", default="karate", help="graph spec (default: karate)"
    )
    parser.add_argument("--file", help="edge-list file (overrides --graph)")


def _add_protocol_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arithmetic",
        default="lfloat",
        help='"exact", "lfloat", or "lfloat-<L>" (default: lfloat)',
    )
    parser.add_argument("--root", type=int, default=0, help="BFS tree root u0")
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="disable strict CONGEST budget enforcement",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "bulk", "event", "sweep"),
        default="auto",
        help="simulator engine: auto (default) picks the fastest capable "
        "backend — the vectorized numpy bulk engine when available, else "
        "event-driven active-node scheduling; sweep is the lockstep "
        "reference",
    )
    parser.add_argument(
        "--frame-audit",
        action="store_true",
        help="materialize every per-edge frame through the wire codec "
        "and verify its length against the billed bits",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )


def cmd_bc(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    from repro.graphs.weighted import WeightedGraph

    if isinstance(graph, WeightedGraph):
        return _cmd_bc_weighted(args, graph)
    result = distributed_betweenness(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        strict=not args.lenient,
        engine=args.engine,
        frame_audit=args.frame_audit,
    )
    ranked = sorted(
        graph.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    rows = [[v, result.betweenness[v], graph.degree(v)] for v in ranked[: args.top]]
    if args.check:
        reference = brandes_betweenness(graph)
        for row in rows:
            row.append(reference[row[0]])
    print_table(
        ["node", "betweenness", "degree"] + (["Brandes"] if args.check else []),
        rows,
        title="Distributed betweenness on {} (N={}, rounds={}, D={}, "
        "max bits/edge/round={})".format(
            graph.name,
            graph.num_nodes,
            result.rounds,
            result.diameter,
            result.stats.max_edge_bits_per_round,
        ),
    )
    return 0


def _cmd_bc_weighted(args: argparse.Namespace, graph) -> int:
    from repro.centrality import weighted_brandes_betweenness
    from repro.core import distributed_weighted_betweenness

    result = distributed_weighted_betweenness(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        strict=not args.lenient,
        engine=args.engine,
        frame_audit=args.frame_audit,
    )
    ranked = sorted(
        graph.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    rows = [[v, result.betweenness[v]] for v in ranked[: args.top]]
    if args.check:
        reference = weighted_brandes_betweenness(graph)
        for row in rows:
            row.append(reference[row[0]])
    print_table(
        ["node", "weighted betweenness"]
        + (["weighted Brandes"] if args.check else []),
        rows,
        title="Distributed weighted betweenness on {} (N={} + {} virtual, "
        "rounds={})".format(
            graph.name,
            graph.num_nodes,
            result.subdivision.num_virtual,
            result.rounds,
        ),
    )
    return 0


def cmd_apsp(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = distributed_apsp(
        graph,
        root=args.root,
        strict=not args.lenient,
        engine=args.engine,
        frame_audit=args.frame_audit,
    )
    closeness = result.closeness()
    graph_c = result.graph_centrality()
    ecc = result.eccentricities()
    ranked = sorted(graph.nodes(), key=lambda v: closeness[v], reverse=True)
    print_table(
        ["node", "closeness", "graph centrality", "eccentricity"],
        [[v, closeness[v], graph_c[v], ecc[v]] for v in ranked[: args.top]],
        title="Counting phase on {} (rounds={}, D={})".format(
            graph.name, result.rounds, result.diameter
        ),
    )
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = distributed_stress(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        engine=args.engine,
        frame_audit=args.frame_audit,
    )
    ranked = sorted(graph.nodes(), key=lambda v: result.stress[v], reverse=True)
    print_table(
        ["node", "stress", "degree"],
        [[v, result.stress[v], graph.degree(v)] for v in ranked[: args.top]],
        title="Distributed stress centrality on {} (rounds={})".format(
            graph.name, result.rounds
        ),
    )
    return 0


def cmd_sample(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = distributed_sampled_betweenness(
        graph,
        args.pivots,
        seed=args.seed,
        arithmetic=args.arithmetic,
        root=args.root,
        engine=args.engine,
        frame_audit=args.frame_audit,
    )
    ranked = sorted(graph.nodes(), key=lambda v: result.estimate[v], reverse=True)
    print_table(
        ["node", "estimated betweenness"],
        [[v, result.estimate[v]] for v in ranked[: args.top]],
        title="Sampled distributed BC on {} (k={}, rounds={}, messages={})".format(
            graph.name, args.pivots, result.rounds, result.stats.message_count
        ),
    )
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    times = bfs_start_times(graph, root=args.root, mode=args.mode)
    tables = sending_times(graph, times)
    shown = sorted(times)[: args.top]
    print_table(
        ["source", "T_s"],
        [[s, times[s]] for s in shown],
        title="BFS start times on {} ({} token)".format(graph.name, args.mode),
    )
    for s in shown[: min(3, len(shown))]:
        print_table(
            ["node", "sending time T_s + D - d(s, v)"],
            sorted(tables[s].items()),
            title="Sending times in BFS({})".format(s),
        )
    return 0


def cmd_gadget(args: argparse.Namespace) -> int:
    from repro.graphs import diameter as graph_diameter
    from repro.lowerbound import (
        build_bc_gadget,
        build_diameter_gadget,
        family_pair,
    )

    x_family, y_family, m = family_pair(
        args.sets, seed=args.seed, force_intersection=args.intersect
    )
    if args.kind == "diameter":
        gadget = build_diameter_gadget(x_family, y_family, x=args.x, m=m)
        measured = graph_diameter(gadget.graph)
        print_table(
            ["metric", "value"],
            [
                ["N", gadget.graph.num_nodes],
                ["families intersect", bool(set(x_family) & set(y_family))],
                ["measured diameter", measured],
                ["Lemma 8 prediction", gadget.expected_diameter()],
                ["cut width", gadget.cut_width()],
            ],
            title="Figure 2 diameter gadget",
        )
    else:
        gadget = build_bc_gadget(x_family, y_family, m)
        bc = brandes_betweenness(gadget.graph, exact=True)
        print_table(
            ["flag", "CB", "Lemma 9"],
            [
                [
                    "F{}".format(i + 1),
                    str(bc[gadget.f[i]]),
                    str(gadget.expected_flag_centrality(i)),
                ]
                for i in range(gadget.n)
            ],
            title="Figure 3 BC gadget (N={})".format(gadget.graph.num_nodes),
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.congest import Tracer

    graph = _load_graph(args)
    tracer = Tracer()
    result = distributed_betweenness(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        strict=not args.lenient,
        tracer=tracer,
        engine=args.engine,
        frame_audit=args.frame_audit,
    )
    print(
        "{}: {} rounds, {} messages, {} bits\n".format(
            graph.name,
            result.rounds,
            result.stats.message_count,
            result.stats.bit_count,
        )
    )
    print(tracer.timeline(width=args.width))
    print()
    print_table(
        ["message type", "count", "bits", "active rounds"],
        [
            [
                name,
                stats["count"],
                stats["bits"],
                "{}..{}".format(stats["first_round"], stats["last_round"]),
            ]
            for name, stats in tracer.summary().items()
        ],
        title="Traffic by message type",
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import Telemetry, default_monitors

    graph = _load_graph(args)
    tracer = None
    if args.timeline:
        from repro.congest import Tracer

        tracer = Tracer()
    telemetry = Telemetry(
        monitors=default_monitors(args.monitor_mode),
        profile=args.profile,
    )
    from repro.exceptions import SimulationNotTerminatedError

    try:
        result = distributed_betweenness(
            graph,
            arithmetic=args.arithmetic,
            root=args.root,
            strict=not args.lenient,
            tracer=tracer,
            telemetry=telemetry,
            engine=args.engine,
            frame_audit=args.frame_audit,
        )
    except SimulationNotTerminatedError as err:
        # The structured fields answer the first three questions a
        # non-terminating run raises: how far, what limit, who's stuck.
        print_table(
            ["field", "value"],
            [
                ["graph", err.graph_name or graph.name],
                ["final round", err.round_number],
                ["round limit", err.round_limit],
                ["nodes still running", list(err.pending_nodes)],
            ],
            title="Run did NOT terminate",
        )
        return 1
    print_table(
        ["statistic", "value"],
        [[key, value] for key, value in result.stats.summary().items()],
        title="Run statistics on {} (N={}, D={}, {}, engine={})".format(
            graph.name,
            graph.num_nodes,
            result.diameter,
            result.arithmetic,
            result.stats.engine or args.engine,
        ),
    )
    print()
    print_table(
        ["phase", "start round", "end round", "rounds", "wall ms"],
        telemetry.phases.table_rows(),
        title="Protocol phases (round boundaries from protocol state)",
    )
    print()
    print_table(
        ["monitor", "status", "checked", "violations", "detail"],
        [
            [
                verdict.monitor,
                verdict.status,
                verdict.checked,
                verdict.violation_count,
                ", ".join(
                    "{}={}".format(key, value)
                    for key, value in verdict.detail.items()
                ),
            ]
            for verdict in telemetry.verdicts()
        ],
        title="Invariant monitors",
    )
    for verdict in telemetry.verdicts():
        for description in verdict.violations:
            print("  ! {}".format(description))
    if args.profile:
        print()
        print_table(
            ["section", "seconds", "calls/count"],
            telemetry.profiler.table_rows(),
            title="Profile",
        )
    if tracer is not None:
        print()
        print(tracer.timeline(width=args.width))
    if args.metrics_out:
        telemetry.write_jsonl(args.metrics_out)
        print("\nmetrics written to {}".format(args.metrics_out))
    return 0 if telemetry.all_ok() else 1


def _parse_crash_spec(spec: str):
    """``node@start[:end]`` -> CrashWindow (end omitted = permanent)."""
    from repro.faults import CrashWindow

    try:
        node_part, _, window = spec.partition("@")
        start_part, _, end_part = window.partition(":")
        return CrashWindow(
            int(node_part),
            int(start_part),
            int(end_part) if end_part else None,
        )
    except ValueError as err:
        raise SystemExit(
            "bad crash spec {!r} (want node@start[:end]): {}".format(
                spec, err
            )
        )


def _parse_link_spec(spec: str):
    """``u-v@start:end`` -> LinkOutage."""
    from repro.faults import LinkOutage

    try:
        edge, _, window = spec.partition("@")
        u_part, _, v_part = edge.partition("-")
        start_part, _, end_part = window.partition(":")
        return LinkOutage(
            int(u_part), int(v_part), int(start_part), int(end_part)
        )
    except ValueError as err:
        raise SystemExit(
            "bad link-down spec {!r} (want u-v@start:end): {}".format(
                spec, err
            )
        )


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan

    if args.frame_audit:
        raise SystemExit(
            "--frame-audit is incompatible with chaos runs: the resilient "
            "transport's Envelope/Fence/Ack frames carry no wire tag (the "
            "4-bit registry is full) and cannot be materialized"
        )
    graph = _load_graph(args)
    if args.plan:
        with open(args.plan, "r", encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())
    else:
        plan = FaultPlan(
            seed=args.seed,
            drop_rate=args.drop,
            duplicate_rate=args.dup,
            delay_rate=args.delay_rate,
            max_delay=args.max_delay,
            corrupt_rate=args.corrupt,
            crashes=tuple(_parse_crash_spec(s) for s in args.crash or ()),
            link_outages=tuple(
                _parse_link_spec(s) for s in args.link_down or ()
            ),
        )
    if args.plan_out:
        with open(args.plan_out, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json() + "\n")
        print("fault plan written to {}".format(args.plan_out))
    result = distributed_betweenness(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        strict=not args.lenient,
        engine=args.engine,
        faults=plan,
        resilient=not args.raw,
    )
    completeness = result.completeness
    fault_stats = getattr(result.stats, "faults", None)
    rows = [
        ["engine", result.stats.engine or args.engine],
        ["transport", "raw (no recovery)" if args.raw else "resilient"],
        ["rounds", result.rounds],
        ["complete", completeness.complete],
        ["source coverage", "{:.0%}".format(completeness.coverage)],
    ]
    if fault_stats is not None:
        rows.extend(
            [key, value] for key, value in fault_stats.as_dict().items()
        )
    if not completeness.complete:
        rows.append(["stalled at round", completeness.stalled_round])
        rows.append(
            ["affected sources", list(completeness.affected_sources)]
        )
        rows.append(["crashed nodes", list(completeness.crashed_nodes)])
    print_table(
        ["metric", "value"],
        rows,
        title="Chaos run on {} (N={}, seed={})".format(
            graph.name, graph.num_nodes, plan.seed
        ),
    )
    ranked = sorted(
        graph.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    print()
    print_table(
        ["node", "betweenness"],
        [[v, result.betweenness[v]] for v in ranked[: args.top]],
        title="Recovered betweenness"
        if completeness.complete
        else "Partial betweenness ({} of {} sources)".format(
            len(completeness.complete_sources),
            len(completeness.complete_sources)
            + len(completeness.affected_sources),
        ),
    )
    if args.check:
        if not completeness.complete:
            print(
                "\ncheck skipped: partial run ({} sources lost)".format(
                    len(completeness.affected_sources)
                )
            )
        else:
            # The fault-layer guarantee is differential: a recovered run
            # must equal a fault-free run of the same protocol bit for
            # bit.  (Under L-bit floats the protocol itself differs from
            # Brandes by the Theorem 1 envelope, faults or no faults, so
            # Brandes is the reference only when the arithmetic is exact.)
            exact = args.arithmetic == "exact"
            if exact:
                reference = brandes_betweenness(graph, exact=True)
                mismatched = [
                    v
                    for v in graph.nodes()
                    if result.betweenness_exact[v] != reference[v]
                ]
                against = "Brandes"
            else:
                clean = distributed_betweenness(
                    graph,
                    arithmetic=args.arithmetic,
                    root=args.root,
                    strict=not args.lenient,
                    engine=args.engine,
                )
                mismatched = [
                    v
                    for v in graph.nodes()
                    if result.betweenness[v] != clean.betweenness[v]
                ]
                against = "the fault-free run"
            if mismatched:
                print(
                    "\ncheck FAILED: recovered betweenness differs from "
                    "{} at nodes {}".format(against, mismatched[:10])
                )
                return 1
            print(
                "\ncheck OK: recovered betweenness matches {}".format(
                    against
                )
            )
    return 0 if completeness.complete else 2


def cmd_elect(args: argparse.Namespace) -> int:
    from repro.congest import elect_root

    graph = _load_graph(args)
    leader, rounds = elect_root(graph, seed=args.seed)
    print_table(
        ["metric", "value"],
        [
            ["graph", graph.name],
            ["elected root u0", leader],
            ["election rounds", rounds],
            ["priority", "min id" if args.seed is None else
             "seeded permutation ({})".format(args.seed)],
        ],
        title="Leader election (the paper's 'randomly selected vertex')",
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from repro.graphs import (
        degree_histogram,
        diameter as graph_diameter,
        is_connected,
        max_shortest_path_count,
    )

    graph = _load_graph(args)
    from repro.graphs.weighted import (
        WeightedGraph,
        is_weighted_connected,
        subdivide,
        weighted_diameter,
    )

    if isinstance(graph, WeightedGraph):
        rows = [
            ["name", graph.name],
            ["nodes", graph.num_nodes],
            ["weighted edges", graph.num_edges],
            ["total weight", graph.total_weight()],
            ["connected", is_weighted_connected(graph)],
        ]
        if is_weighted_connected(graph) and graph.num_nodes:
            rows.append(["weighted diameter", weighted_diameter(graph)])
            rows.append(
                ["subdivision size", subdivide(graph).graph.num_nodes]
            )
        print_table(["property", "value"], rows, title="Weighted graph info")
        return 0
    rows = [
        ["name", graph.name],
        ["nodes", graph.num_nodes],
        ["edges", graph.num_edges],
        ["connected", is_connected(graph)],
        ["max degree", graph.max_degree()],
    ]
    if is_connected(graph) and graph.num_nodes:
        rows.append(["diameter", graph_diameter(graph)])
        if graph.num_nodes <= 200:
            rows.append(["max sigma", max_shortest_path_count(graph)])
    rows.append(["degree histogram", str(dict(sorted(degree_histogram(graph).items())))])
    print_table(["property", "value"], rows, title="Graph info")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed betweenness centrality (ICDCS 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bc = sub.add_parser("bc", help="distributed betweenness")
    _add_graph_options(p_bc)
    _add_protocol_options(p_bc)
    p_bc.add_argument(
        "--check", action="store_true", help="also print the Brandes reference"
    )
    p_bc.set_defaults(func=cmd_bc)

    p_apsp = sub.add_parser("apsp", help="counting phase: closeness etc.")
    _add_graph_options(p_apsp)
    _add_protocol_options(p_apsp)
    p_apsp.set_defaults(func=cmd_apsp)

    p_stress = sub.add_parser("stress", help="distributed stress centrality")
    _add_graph_options(p_stress)
    _add_protocol_options(p_stress)
    p_stress.set_defaults(func=cmd_stress, arithmetic="exact")

    p_sample = sub.add_parser("sample", help="sampled distributed BC")
    _add_graph_options(p_sample)
    _add_protocol_options(p_sample)
    p_sample.add_argument("--pivots", type=int, default=8)
    p_sample.add_argument("--seed", type=int, default=0)
    p_sample.set_defaults(func=cmd_sample)

    p_sched = sub.add_parser("schedule", help="analytic sending-time tables")
    _add_graph_options(p_sched)
    p_sched.add_argument("--root", type=int, default=0)
    p_sched.add_argument(
        "--mode", choices=("shortcut", "tree_walk"), default="shortcut"
    )
    p_sched.add_argument("--top", type=int, default=10)
    p_sched.set_defaults(func=cmd_schedule)

    p_gadget = sub.add_parser("gadget", help="Section IX gadget verification")
    p_gadget.add_argument("kind", choices=("diameter", "bc"))
    p_gadget.add_argument("--sets", type=int, default=3, help="n subsets")
    p_gadget.add_argument("--x", type=int, default=10, help="diameter parameter")
    p_gadget.add_argument("--seed", type=int, default=0)
    p_gadget.add_argument(
        "--intersect",
        action="store_const",
        const=True,
        default=None,
        help="force a family match (default: random)",
    )
    p_gadget.set_defaults(func=cmd_gadget)

    p_trace = sub.add_parser("trace", help="traced run with phase timeline")
    _add_graph_options(p_trace)
    _add_protocol_options(p_trace)
    p_trace.add_argument("--width", type=int, default=70)
    p_trace.set_defaults(func=cmd_trace)

    p_report = sub.add_parser(
        "report",
        help="instrumented run: phases, invariant monitors, metrics export",
    )
    _add_graph_options(p_report)
    _add_protocol_options(p_report)
    p_report.add_argument(
        "--monitor-mode",
        choices=("record", "warn", "raise"),
        default="record",
        help="how monitors react to a violation (default: record; the "
        "command exits 1 on any recorded violation either way)",
    )
    p_report.add_argument(
        "--profile",
        action="store_true",
        help="time the simulator's hot sections and print the profile",
    )
    p_report.add_argument(
        "--timeline",
        action="store_true",
        help="also trace every delivery and print the message timeline",
    )
    p_report.add_argument("--width", type=int, default=70)
    p_report.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's metrics/phases/verdicts as JSON Lines",
    )
    p_report.set_defaults(func=cmd_report)

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injected run: drops, delays, corruption, crashes",
    )
    _add_graph_options(p_chaos)
    _add_protocol_options(p_chaos)
    p_chaos.add_argument(
        "--drop", type=float, default=0.0, help="message drop probability"
    )
    p_chaos.add_argument(
        "--dup", type=float, default=0.0, help="duplication probability"
    )
    p_chaos.add_argument(
        "--delay-rate", type=float, default=0.0, help="delay probability"
    )
    p_chaos.add_argument(
        "--max-delay", type=int, default=3, help="max extra rounds of delay"
    )
    p_chaos.add_argument(
        "--corrupt", type=float, default=0.0, help="bit-flip probability"
    )
    p_chaos.add_argument(
        "--crash",
        action="append",
        metavar="NODE@START[:END]",
        help="crash window (omit END for a permanent crash); repeatable",
    )
    p_chaos.add_argument(
        "--link-down",
        action="append",
        metavar="U-V@START:END",
        help="link outage window; repeatable",
    )
    p_chaos.add_argument("--seed", type=int, default=0, help="fault seed")
    p_chaos.add_argument(
        "--plan", metavar="PATH", help="load a FaultPlan JSON (overrides flags)"
    )
    p_chaos.add_argument(
        "--plan-out", metavar="PATH", help="save the effective FaultPlan JSON"
    )
    p_chaos.add_argument(
        "--raw",
        action="store_true",
        help="run the bare protocol without the resilient transport "
        "(no recovery guarantee; for demonstrating failure modes)",
    )
    p_chaos.add_argument(
        "--check",
        action="store_true",
        help="compare the recovered betweenness against Brandes",
    )
    p_chaos.set_defaults(func=cmd_chaos)

    p_elect = sub.add_parser("elect", help="leader election for the root u0")
    _add_graph_options(p_elect)
    p_elect.add_argument("--seed", type=int, default=None)
    p_elect.set_defaults(func=cmd_elect)

    p_info = sub.add_parser("info", help="graph statistics")
    _add_graph_options(p_info)
    p_info.set_defaults(func=cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print("error: {}".format(err), file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
