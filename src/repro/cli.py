"""Command-line interface: ``python -m repro <command> ...``.

Subcommands
-----------
``bc``        distributed betweenness on a named or file-loaded graph
``apsp``      counting phase only: distances, closeness, graph centrality
``stress``    distributed stress centrality
``sample``    sampled (approximate) distributed betweenness
``schedule``  analytic BFS start / sending times (Figure 1 style tables)
``gadget``    build and verify a Section IX lower-bound gadget
``report``    instrumented run: phase table, invariant monitor verdicts,
              optional profile, JSONL metrics export, live streaming
              (``--progress``/``--stream-jsonl``), partial-log rendering
              (``--from``) and Chrome trace export (``--chrome-trace``)
``watch``     tail a live-streamed telemetry JSONL
``bench``     benchmark regression gates (``compare``) and history
              ledger ingestion (``ingest``)
``chaos``     run under an adversarial fault plan (message faults, node
              crashes, and ``--hang``/``--slow`` worker-process faults)
``resume``    restart an interrupted supervised run from its newest
              round-boundary checkpoint (bit-identical continuation)
``info``      graph statistics

``trace diff`` compares two saved traces (or two engines on one graph)
and pinpoints the first divergent delivery down to the decoded frame
field when payload words were captured (``trace --payloads``).

Graphs are specified with ``--graph``: either a named generator
(``karate``, ``figure1``, ``path:20``, ``cycle:16``, ``grid:4x5``,
``er:30:0.2:7`` as name:args) or ``--file edgelist.txt``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import print_table
from repro.centrality import brandes_betweenness
from repro.core import (
    bfs_start_times,
    distributed_apsp,
    distributed_betweenness,
    distributed_sampled_betweenness,
    distributed_stress,
    sending_times,
)
from repro.exceptions import ReproError
from repro.graphs import (
    Graph,
    balanced_tree,
    complete_graph,
    connected_erdos_renyi_graph,
    cycle_graph,
    diamond_chain_graph,
    figure1_graph,
    grid_graph,
    hypercube_graph,
    karate_club_graph,
    path_graph,
    read_edge_list,
    star_graph,
)


def parse_graph_spec(spec: str) -> Graph:
    """Resolve a ``name[:arg[:arg...]]`` graph spec into a Graph."""
    name, _, rest = spec.partition(":")
    args = rest.split(":") if rest else []
    try:
        if name == "karate":
            return karate_club_graph()
        if name == "figure1":
            return figure1_graph()
        if name == "path":
            return path_graph(int(args[0]))
        if name == "cycle":
            return cycle_graph(int(args[0]))
        if name == "star":
            return star_graph(int(args[0]))
        if name == "complete":
            return complete_graph(int(args[0]))
        if name == "grid":
            rows, cols = args[0].split("x")
            return grid_graph(int(rows), int(cols))
        if name == "tree":
            return balanced_tree(int(args[0]), int(args[1]))
        if name == "hypercube":
            return hypercube_graph(int(args[0]))
        if name == "diamonds":
            return diamond_chain_graph(int(args[0]))
        if name == "er":
            n = int(args[0])
            p = float(args[1])
            seed = int(args[2]) if len(args) > 2 else 0
            return connected_erdos_renyi_graph(n, p, seed)
    except (IndexError, ValueError) as err:
        raise SystemExit("bad graph spec {!r}: {}".format(spec, err))
    raise SystemExit(
        "unknown graph {!r} (try karate, figure1, path:N, cycle:N, star:N, "
        "complete:N, grid:RxC, tree:B:H, hypercube:D, diamonds:K, "
        "er:N:P[:SEED])".format(name)
    )


def _load_graph(args: argparse.Namespace) -> Graph:
    if getattr(args, "file", None):
        if str(args.file).endswith(".json"):
            from repro.graphs import read_json

            return read_json(args.file)
        return read_edge_list(args.file)
    return parse_graph_spec(args.graph)


def _add_graph_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--graph", default="karate", help="graph spec (default: karate)"
    )
    parser.add_argument("--file", help="edge-list file (overrides --graph)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            "must be a positive int, got {}".format(text)
        )
    return value


def _add_protocol_options(parser: argparse.ArgumentParser) -> None:
    from repro.protocols import DEFAULT_PROTOCOL, protocol_names

    parser.add_argument(
        "--protocol",
        choices=protocol_names(),
        default=DEFAULT_PROTOCOL,
        help="registered node algorithm to run (default: {}; cfp-bc is "
        "the time-reversed accumulation rival)".format(DEFAULT_PROTOCOL),
    )
    parser.add_argument(
        "--arithmetic",
        default="lfloat",
        help='"exact", "lfloat", or "lfloat-<L>" (default: lfloat)',
    )
    parser.add_argument("--root", type=int, default=0, help="BFS tree root u0")
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="disable strict CONGEST budget enforcement",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "bulk", "event", "sweep", "shard"),
        default="auto",
        help="simulator engine: auto (default) picks the fastest capable "
        "backend — the vectorized numpy bulk engine when available, else "
        "event-driven active-node scheduling; sweep is the lockstep "
        "reference; shard is the multi-process runtime (see --workers), "
        "never auto-selected",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes for --engine shard (default 1; ignored "
        "by the single-process engines)",
    )
    parser.add_argument(
        "--partitioner",
        choices=("block", "greedy"),
        default="greedy",
        help="node partitioner for --engine shard: greedy (default) "
        "grows shards along BFS frontiers to cut fewer edges; block "
        "slices node ids into contiguous ranges",
    )
    parser.add_argument(
        "--frame-audit",
        action="store_true",
        help="materialize every per-edge frame through the wire codec "
        "and verify its length against the billed bits",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )


def _streaming_telemetry(args: argparse.Namespace):
    """A live-streaming Telemetry when ``--progress``/``--stream-jsonl``
    was given, else None (keeping the zero-cost no-telemetry path)."""
    if not (getattr(args, "progress", False) or getattr(args, "stream_jsonl", None)):
        return None
    from repro.obs import Telemetry

    return Telemetry.with_streaming(
        jsonl_path=args.stream_jsonl,
        progress=True,
        console=bool(args.progress),
    )


def _add_supervision_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="ROUNDS",
        help="write a resumable snapshot every this many processed "
        "rounds (requires --engine shard and --checkpoint-dir; "
        "0 = off)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="root directory for checkpoints (a run-key subdirectory "
        "is created per run); see `repro resume`",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        metavar="N",
        help="respawn budget per shard worker: a dead or hung worker "
        "is restarted from the last checkpoint up to N times before "
        "its shard is abandoned (deterministic partial result)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog patience: a worker whose heartbeat is older "
        "than this mid-round is declared hung (default 30)",
    )
    # Testing aid for the recovery suite: pause (exit 3) right after
    # the first checkpoint at or past this round is durable.
    parser.add_argument(
        "--checkpoint-stop-after",
        type=int,
        default=None,
        help=argparse.SUPPRESS,
    )


def _supervision_from_args(args: argparse.Namespace, plan=None):
    """A SupervisionConfig from CLI flags, or None when all are off.

    The returned config carries the command-line recipe in its manifest
    metadata so ``repro resume`` can rebuild the graph, protocol and
    fault plan without re-asking.
    """
    every = getattr(args, "checkpoint_every", 0) or 0
    ckpt_dir = getattr(args, "checkpoint_dir", None)
    restarts = getattr(args, "max_restarts", 0) or 0
    timeout = getattr(args, "heartbeat_timeout", None)
    stop_after = getattr(args, "checkpoint_stop_after", None)
    if not (
        every or ckpt_dir or restarts or timeout is not None
        or stop_after is not None
    ):
        return None
    from repro.shard.supervisor import (
        DEFAULT_HEARTBEAT_TIMEOUT,
        SupervisionConfig,
    )

    recipe = {
        "graph": getattr(args, "graph", None),
        "file": str(args.file) if getattr(args, "file", None) else None,
        "protocol": getattr(args, "protocol", None),
        "arithmetic": getattr(args, "arithmetic", None),
        "root": getattr(args, "root", 0),
        "lenient": bool(getattr(args, "lenient", False)),
        "workers": getattr(args, "workers", 1),
        "partitioner": getattr(args, "partitioner", "greedy"),
        "resilient": not getattr(args, "raw", True),
        "checkpoint_every": every,
        "checkpoint_dir": ckpt_dir,
        "plan": plan.to_dict() if plan is not None else None,
    }
    return SupervisionConfig(
        heartbeat_timeout=(
            timeout if timeout is not None else DEFAULT_HEARTBEAT_TIMEOUT
        ),
        max_restarts=restarts,
        checkpoint_every=every,
        checkpoint_dir=ckpt_dir,
        stop_after=stop_after,
        meta={"cli": recipe},
    )


def _print_supervisor_summary(stats) -> None:
    """One-line recovery story for supervised runs (chaos/bc/resume)."""
    supervisor = getattr(stats, "supervisor", None)
    if supervisor is None:
        return
    parts = [
        "{} restart(s)".format(supervisor["restarts"]),
        "{} hang detection(s)".format(supervisor["hang_detections"]),
        "{} rollback(s)".format(supervisor["rollbacks"]),
        "{} checkpoint(s)".format(supervisor["checkpoints_written"]),
    ]
    if supervisor["resumed_from"] is not None:
        parts.append("resumed from round {}".format(supervisor["resumed_from"]))
    if supervisor["shards_abandoned"]:
        parts.append(
            "shard(s) {} abandoned".format(supervisor["shards_abandoned"])
        )
    print("supervisor: " + ", ".join(parts))


def cmd_bc(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    from repro.graphs.weighted import WeightedGraph

    if isinstance(graph, WeightedGraph):
        if getattr(args, "protocol", None) not in (None, "hua-bc"):
            raise SystemExit(
                "--protocol {} is not available for weighted graphs "
                "(the subdivision pipeline drives the stock protocol "
                "directly)".format(args.protocol)
            )
        return _cmd_bc_weighted(args, graph)
    telemetry = _streaming_telemetry(args)
    from repro.exceptions import CheckpointPause

    try:
        result = distributed_betweenness(
            graph,
            arithmetic=args.arithmetic,
            root=args.root,
            strict=not args.lenient,
            engine=args.engine,
            workers=args.workers,
            partitioner=args.partitioner,
            frame_audit=args.frame_audit,
            telemetry=telemetry,
            protocol=args.protocol,
            supervision=_supervision_from_args(args),
        )
    except CheckpointPause as pause:
        print(
            "run paused at round {}; resume with: repro resume {}".format(
                pause.round_number, pause.checkpoint_path
            )
        )
        return 3
    if telemetry is not None and telemetry.bus is not None:
        telemetry.bus.close()
    ranked = sorted(
        graph.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    rows = [[v, result.betweenness[v], graph.degree(v)] for v in ranked[: args.top]]
    if args.check:
        reference = brandes_betweenness(graph)
        for row in rows:
            row.append(reference[row[0]])
    print_table(
        ["node", "betweenness", "degree"] + (["Brandes"] if args.check else []),
        rows,
        title="Distributed betweenness on {} ({}, N={}, rounds={}, D={}, "
        "max bits/edge/round={})".format(
            graph.name,
            result.protocol,
            graph.num_nodes,
            result.rounds,
            result.diameter,
            result.stats.max_edge_bits_per_round,
        ),
    )
    _print_supervisor_summary(result.stats)
    return 0


def _cmd_bc_weighted(args: argparse.Namespace, graph) -> int:
    from repro.centrality import weighted_brandes_betweenness
    from repro.core import distributed_weighted_betweenness

    result = distributed_weighted_betweenness(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        strict=not args.lenient,
        engine=args.engine,
        workers=args.workers,
        partitioner=args.partitioner,
        frame_audit=args.frame_audit,
    )
    ranked = sorted(
        graph.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    rows = [[v, result.betweenness[v]] for v in ranked[: args.top]]
    if args.check:
        reference = weighted_brandes_betweenness(graph)
        for row in rows:
            row.append(reference[row[0]])
    print_table(
        ["node", "weighted betweenness"]
        + (["weighted Brandes"] if args.check else []),
        rows,
        title="Distributed weighted betweenness on {} (N={} + {} virtual, "
        "rounds={})".format(
            graph.name,
            graph.num_nodes,
            result.subdivision.num_virtual,
            result.rounds,
        ),
    )
    return 0


def cmd_apsp(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = distributed_apsp(
        graph,
        root=args.root,
        strict=not args.lenient,
        engine=args.engine,
        workers=args.workers,
        partitioner=args.partitioner,
        frame_audit=args.frame_audit,
        protocol=args.protocol,
    )
    closeness = result.closeness()
    graph_c = result.graph_centrality()
    ecc = result.eccentricities()
    ranked = sorted(graph.nodes(), key=lambda v: closeness[v], reverse=True)
    print_table(
        ["node", "closeness", "graph centrality", "eccentricity"],
        [[v, closeness[v], graph_c[v], ecc[v]] for v in ranked[: args.top]],
        title="Counting phase on {} (rounds={}, D={})".format(
            graph.name, result.rounds, result.diameter
        ),
    )
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = distributed_stress(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        engine=args.engine,
        workers=args.workers,
        partitioner=args.partitioner,
        frame_audit=args.frame_audit,
        protocol=args.protocol,
    )
    ranked = sorted(graph.nodes(), key=lambda v: result.stress[v], reverse=True)
    print_table(
        ["node", "stress", "degree"],
        [[v, result.stress[v], graph.degree(v)] for v in ranked[: args.top]],
        title="Distributed stress centrality on {} (rounds={})".format(
            graph.name, result.rounds
        ),
    )
    return 0


def cmd_sample(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = distributed_sampled_betweenness(
        graph,
        args.pivots,
        seed=args.seed,
        arithmetic=args.arithmetic,
        root=args.root,
        engine=args.engine,
        workers=args.workers,
        partitioner=args.partitioner,
        frame_audit=args.frame_audit,
        protocol=args.protocol,
    )
    ranked = sorted(graph.nodes(), key=lambda v: result.estimate[v], reverse=True)
    print_table(
        ["node", "estimated betweenness"],
        [[v, result.estimate[v]] for v in ranked[: args.top]],
        title="Sampled distributed BC on {} (k={}, rounds={}, messages={})".format(
            graph.name, args.pivots, result.rounds, result.stats.message_count
        ),
    )
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    times = bfs_start_times(graph, root=args.root, mode=args.mode)
    tables = sending_times(graph, times)
    shown = sorted(times)[: args.top]
    print_table(
        ["source", "T_s"],
        [[s, times[s]] for s in shown],
        title="BFS start times on {} ({} token)".format(graph.name, args.mode),
    )
    for s in shown[: min(3, len(shown))]:
        print_table(
            ["node", "sending time T_s + D - d(s, v)"],
            sorted(tables[s].items()),
            title="Sending times in BFS({})".format(s),
        )
    return 0


def cmd_gadget(args: argparse.Namespace) -> int:
    from repro.graphs import diameter as graph_diameter
    from repro.lowerbound import (
        build_bc_gadget,
        build_diameter_gadget,
        family_pair,
    )

    x_family, y_family, m = family_pair(
        args.sets, seed=args.seed, force_intersection=args.intersect
    )
    if args.kind == "diameter":
        gadget = build_diameter_gadget(x_family, y_family, x=args.x, m=m)
        measured = graph_diameter(gadget.graph)
        print_table(
            ["metric", "value"],
            [
                ["N", gadget.graph.num_nodes],
                ["families intersect", bool(set(x_family) & set(y_family))],
                ["measured diameter", measured],
                ["Lemma 8 prediction", gadget.expected_diameter()],
                ["cut width", gadget.cut_width()],
            ],
            title="Figure 2 diameter gadget",
        )
    else:
        gadget = build_bc_gadget(x_family, y_family, m)
        bc = brandes_betweenness(gadget.graph, exact=True)
        print_table(
            ["flag", "CB", "Lemma 9"],
            [
                [
                    "F{}".format(i + 1),
                    str(bc[gadget.f[i]]),
                    str(gadget.expected_flag_centrality(i)),
                ]
                for i in range(gadget.n)
            ],
            title="Figure 3 BC gadget (N={})".format(gadget.graph.num_nodes),
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.congest import Tracer

    graph = _load_graph(args)
    tracer = Tracer(capture_payloads=args.payloads)
    result = distributed_betweenness(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        strict=not args.lenient,
        tracer=tracer,
        engine=args.engine,
        workers=args.workers,
        partitioner=args.partitioner,
        frame_audit=args.frame_audit,
        protocol=args.protocol,
    )
    print(
        "{} ({}): {} rounds, {} messages, {} bits\n".format(
            graph.name,
            result.protocol,
            result.rounds,
            result.stats.message_count,
            result.stats.bit_count,
        )
    )
    print(tracer.timeline(width=args.width))
    print()
    print_table(
        ["message type", "count", "bits", "active rounds"],
        [
            [
                name,
                stats["count"],
                stats["bits"],
                "{}..{}".format(stats["first_round"], stats["last_round"]),
            ]
            for name, stats in tracer.summary().items()
        ],
        title="Traffic by message type",
    )
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(tracer.to_json())
        print(
            "\ntrace written to {} ({} deliveries{})".format(
                args.trace_out,
                len(tracer),
                ", payload words included" if args.payloads else "",
            )
        )
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.congest import Tracer
    from repro.obs.tracediff import diff_report, first_divergence

    if args.traces and len(args.traces) != 2:
        raise SystemExit(
            "trace diff wants exactly two trace files (or none, to run "
            "--engines on --graph); got {}".format(len(args.traces))
        )
    if args.traces:
        traces = []
        for path in args.traces:
            with open(path, "r", encoding="utf-8") as fh:
                traces.append(Tracer.from_json(fh.read()))
        trace_a, trace_b = traces
        label_a, label_b = args.traces
    elif args.protocols:
        # Protocol-vs-protocol mode: same engine, two registered node
        # algorithms — the forensic view of where a rival's traffic
        # schedule departs from the stock one.
        protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
        if len(protocols) != 2:
            raise SystemExit(
                "--protocols wants two comma-separated protocol names, "
                "got {!r}".format(args.protocols)
            )
        graph = _load_graph(args)
        traces = []
        for protocol in protocols:
            tracer = Tracer(capture_payloads=True)
            distributed_betweenness(
                graph,
                arithmetic=args.arithmetic,
                root=args.root,
                tracer=tracer,
                engine="event",
                protocol=protocol,
            )
            traces.append(tracer)
        trace_a, trace_b = traces
        label_a, label_b = protocols
    else:
        engines = [e.strip() for e in args.engines.split(",") if e.strip()]
        if len(engines) != 2:
            raise SystemExit(
                "--engines wants two comma-separated engines, "
                "got {!r}".format(args.engines)
            )
        graph = _load_graph(args)
        traces = []
        for engine in engines:
            tracer = Tracer(capture_payloads=True)
            distributed_betweenness(
                graph,
                arithmetic=args.arithmetic,
                root=args.root,
                tracer=tracer,
                engine=engine,
            )
            traces.append(tracer)
        trace_a, trace_b = traces
        label_a, label_b = engines
    report = diff_report(
        trace_a,
        trace_b,
        arithmetic=args.arithmetic,
        label_a=label_a,
        label_b=label_b,
        context=args.context,
    )
    print(report)
    diverged = (
        first_divergence(trace_a, trace_b, arithmetic=args.arithmetic)
        is not None
    )
    return 1 if diverged else 0


def _report_from_rows(args: argparse.Namespace) -> int:
    """Render ``repro report`` output from a (possibly torn) JSONL export."""
    from repro.obs.schema import load_jsonl_rows, meta_row

    rows, warnings = load_jsonl_rows(args.from_path)
    for warning in warnings:
        print("warning: {}".format(warning), file=sys.stderr)
    meta = meta_row(rows)
    if meta is None:
        print(
            "error: {} has no meta header row — not a telemetry "
            "export".format(args.from_path),
            file=sys.stderr,
        )
        return 2
    print(
        "Run on {} ({}, N={}, engine={}, requested={}{})".format(
            meta.get("graph"),
            meta.get("protocol", "hua-bc"),
            meta.get("num_nodes"),
            meta.get("engine"),
            meta.get("engine_requested", meta.get("engine")),
            ", {}".format(meta["engine_reason"])
            if meta.get("engine_reason")
            else "",
        )
    )
    progress_rows = [r for r in rows if r.get("event") == "progress"]
    metric_rows = [r for r in rows if r.get("event") == "metric"]
    if progress_rows and not metric_rows:
        last = progress_rows[-1]
        print(
            "run INCOMPLETE: last heartbeat at round {}{} — the stream "
            "ended before finalization".format(
                last.get("round"),
                " ({}%)".format(last["percent"]) if "percent" in last else "",
            )
        )
    phase_rows = [r for r in rows if r.get("event") == "phase"]
    if phase_rows:
        print()
        print_table(
            ["phase", "start round", "end round", "rounds", "wall ms"],
            [
                [
                    row.get("name"),
                    row.get("start_round"),
                    row.get("end_round"),
                    row.get("rounds"),
                    round(1000 * row.get("wall_seconds", 0.0), 3),
                ]
                for row in phase_rows
            ],
            title="Protocol phases",
        )
    if metric_rows:
        print()
        print_table(
            ["metric", "value"],
            [
                [row.get("name"), row.get("value")]
                for row in sorted(
                    metric_rows, key=lambda r: str(r.get("name"))
                )
            ],
            title="Metrics",
        )
    monitor_rows = [r for r in rows if r.get("event") == "monitor"]
    if monitor_rows:
        print()
        print_table(
            ["monitor", "status", "checked", "violations"],
            [
                [
                    row.get("monitor"),
                    row.get("status"),
                    row.get("checked"),
                    row.get("violation_count"),
                ]
                for row in monitor_rows
            ],
            title="Invariant monitors",
        )
    if args.chrome_trace:
        from repro.obs.chrometrace import write_chrome_trace

        count = write_chrome_trace(rows, args.chrome_trace)
        print(
            "\nchrome trace written to {} ({} events)".format(
                args.chrome_trace, count
            )
        )
    return 0 if all(row.get("ok", True) for row in monitor_rows) else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import Telemetry, default_monitors

    if args.from_path:
        return _report_from_rows(args)
    graph = _load_graph(args)
    tracer = None
    if args.timeline:
        from repro.congest import Tracer

        tracer = Tracer()
    if args.progress or args.stream_jsonl:
        telemetry = Telemetry.with_streaming(
            jsonl_path=args.stream_jsonl,
            progress=True,
            console=bool(args.progress),
            monitors=default_monitors(args.monitor_mode),
            profile=args.profile,
        )
    else:
        telemetry = Telemetry(
            monitors=default_monitors(args.monitor_mode),
            profile=args.profile,
        )
    from repro.exceptions import SimulationNotTerminatedError

    try:
        result = distributed_betweenness(
            graph,
            arithmetic=args.arithmetic,
            root=args.root,
            strict=not args.lenient,
            tracer=tracer,
            telemetry=telemetry,
            engine=args.engine,
            workers=args.workers,
            partitioner=args.partitioner,
            frame_audit=args.frame_audit,
            protocol=args.protocol,
        )
    except SimulationNotTerminatedError as err:
        # The structured fields answer the first three questions a
        # non-terminating run raises: how far, what limit, who's stuck.
        print_table(
            ["field", "value"],
            [
                ["graph", err.graph_name or graph.name],
                ["final round", err.round_number],
                ["round limit", err.round_limit],
                ["nodes still running", list(err.pending_nodes)],
            ],
            title="Run did NOT terminate",
        )
        if telemetry.bus is not None:
            # The streamed partial log is exactly what post-mortems
            # want from a non-terminating run; leave it closed cleanly.
            telemetry.bus.close()
        return 1
    print_table(
        ["statistic", "value"],
        [[key, value] for key, value in result.stats.summary().items()],
        title="Run statistics on {} ({}, N={}, D={}, {}, engine={})".format(
            graph.name,
            result.protocol,
            graph.num_nodes,
            result.diameter,
            result.arithmetic,
            result.stats.engine or args.engine,
        ),
    )
    meta = telemetry.events()[0]
    print(
        "engine: requested={} resolved={}{}".format(
            meta.get("engine_requested", args.engine),
            meta.get("engine"),
            " ({})".format(meta["engine_reason"])
            if meta.get("engine_reason")
            else "",
        )
    )
    ledger_words = telemetry.registry.gauge("ledger.words").value
    if ledger_words is not None:
        print(
            "memory: {} ledger records, {} predecessor links, "
            "{} words total across nodes".format(
                telemetry.registry.gauge("ledger.records").value,
                telemetry.registry.gauge("ledger.pred_links").value,
                ledger_words,
            )
        )
    print()
    print_table(
        ["phase", "start round", "end round", "rounds", "wall ms"],
        telemetry.phases.table_rows(),
        title="Protocol phases (round boundaries from protocol state)",
    )
    print()
    print_table(
        ["monitor", "status", "checked", "violations", "detail"],
        [
            [
                verdict.monitor,
                verdict.status,
                verdict.checked,
                verdict.violation_count,
                ", ".join(
                    "{}={}".format(key, value)
                    for key, value in verdict.detail.items()
                ),
            ]
            for verdict in telemetry.verdicts()
        ],
        title="Invariant monitors",
    )
    for verdict in telemetry.verdicts():
        for description in verdict.violations:
            print("  ! {}".format(description))
    if args.profile:
        print()
        print_table(
            ["section", "seconds", "calls/count"],
            telemetry.profiler.table_rows(),
            title="Profile",
        )
    if tracer is not None:
        print()
        print(tracer.timeline(width=args.width))
    if args.metrics_out:
        telemetry.write_jsonl(args.metrics_out)
        print("\nmetrics written to {}".format(args.metrics_out))
    if args.chrome_trace:
        from repro.obs.chrometrace import write_chrome_trace

        count = write_chrome_trace(telemetry.events(), args.chrome_trace)
        print(
            "\nchrome trace written to {} ({} events)".format(
                args.chrome_trace, count
            )
        )
    if telemetry.bus is not None:
        telemetry.bus.close()
    return 0 if telemetry.all_ok() else 1


def _parse_hang_spec(spec: str):
    """``shard@round[:repeats]`` -> WorkerHang."""
    from repro.faults import WorkerHang

    try:
        shard_part, _, window = spec.partition("@")
        round_part, _, repeats_part = window.partition(":")
        return WorkerHang(
            int(shard_part),
            int(round_part),
            int(repeats_part) if repeats_part else 1,
        )
    except ValueError as err:
        raise SystemExit(
            "bad hang spec {!r} (want shard@round[:repeats]): {}".format(
                spec, err
            )
        )


def _parse_slow_spec(spec: str):
    """``shard@round[:delay_seconds]`` -> SlowWorker."""
    from repro.faults import SlowWorker

    try:
        shard_part, _, window = spec.partition("@")
        round_part, _, delay_part = window.partition(":")
        return SlowWorker(
            int(shard_part),
            int(round_part),
            float(delay_part) if delay_part else 0.5,
        )
    except ValueError as err:
        raise SystemExit(
            "bad slow spec {!r} (want shard@round[:delay]): {}".format(
                spec, err
            )
        )


def _parse_crash_spec(spec: str):
    """``node@start[:end]`` -> CrashWindow (end omitted = permanent)."""
    from repro.faults import CrashWindow

    try:
        node_part, _, window = spec.partition("@")
        start_part, _, end_part = window.partition(":")
        return CrashWindow(
            int(node_part),
            int(start_part),
            int(end_part) if end_part else None,
        )
    except ValueError as err:
        raise SystemExit(
            "bad crash spec {!r} (want node@start[:end]): {}".format(
                spec, err
            )
        )


def _parse_link_spec(spec: str):
    """``u-v@start:end`` -> LinkOutage."""
    from repro.faults import LinkOutage

    try:
        edge, _, window = spec.partition("@")
        u_part, _, v_part = edge.partition("-")
        start_part, _, end_part = window.partition(":")
        return LinkOutage(
            int(u_part), int(v_part), int(start_part), int(end_part)
        )
    except ValueError as err:
        raise SystemExit(
            "bad link-down spec {!r} (want u-v@start:end): {}".format(
                spec, err
            )
        )


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan

    if args.frame_audit:
        raise SystemExit(
            "--frame-audit is incompatible with chaos runs: the resilient "
            "transport's Envelope/Fence/Ack frames carry no wire tag (the "
            "4-bit registry is full) and cannot be materialized"
        )
    graph = _load_graph(args)
    if args.plan:
        with open(args.plan, "r", encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())
    else:
        plan = FaultPlan(
            seed=args.seed,
            drop_rate=args.drop,
            duplicate_rate=args.dup,
            delay_rate=args.delay_rate,
            max_delay=args.max_delay,
            corrupt_rate=args.corrupt,
            crashes=tuple(_parse_crash_spec(s) for s in args.crash or ()),
            link_outages=tuple(
                _parse_link_spec(s) for s in args.link_down or ()
            ),
            worker_hangs=tuple(
                _parse_hang_spec(s) for s in args.hang or ()
            ),
            slow_workers=tuple(
                _parse_slow_spec(s) for s in args.slow or ()
            ),
        )
    if plan.has_infra_faults and args.engine != "shard":
        raise SystemExit(
            "--hang/--slow (worker_hangs/slow_workers) target shard "
            "worker processes; rerun with --engine shard --workers N"
        )
    if args.plan_out:
        with open(args.plan_out, "w", encoding="utf-8") as fh:
            fh.write(plan.to_json() + "\n")
        print("fault plan written to {}".format(args.plan_out))
    result = distributed_betweenness(
        graph,
        arithmetic=args.arithmetic,
        root=args.root,
        strict=not args.lenient,
        engine=args.engine,
        workers=args.workers,
        partitioner=args.partitioner,
        faults=plan,
        resilient=not args.raw,
        protocol=args.protocol,
        supervision=_supervision_from_args(args, plan=plan),
    )
    completeness = result.completeness
    fault_stats = getattr(result.stats, "faults", None)
    rows = [
        ["protocol", result.protocol],
        ["engine", result.stats.engine or args.engine],
        ["transport", "raw (no recovery)" if args.raw else "resilient"],
        ["rounds", result.rounds],
        ["complete", completeness.complete],
        ["source coverage", "{:.0%}".format(completeness.coverage)],
    ]
    if fault_stats is not None:
        rows.extend(
            [key, value] for key, value in fault_stats.as_dict().items()
        )
    if not completeness.complete:
        rows.append(["stalled at round", completeness.stalled_round])
        rows.append(
            ["affected sources", list(completeness.affected_sources)]
        )
        rows.append(["crashed nodes", list(completeness.crashed_nodes)])
    print_table(
        ["metric", "value"],
        rows,
        title="Chaos run on {} (N={}, seed={})".format(
            graph.name, graph.num_nodes, plan.seed
        ),
    )
    ranked = sorted(
        graph.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    print()
    print_table(
        ["node", "betweenness"],
        [[v, result.betweenness[v]] for v in ranked[: args.top]],
        title="Recovered betweenness"
        if completeness.complete
        else "Partial betweenness ({} of {} sources)".format(
            len(completeness.complete_sources),
            len(completeness.complete_sources)
            + len(completeness.affected_sources),
        ),
    )
    _print_supervisor_summary(result.stats)
    if args.check:
        if not completeness.complete:
            print(
                "\ncheck skipped: partial run ({} sources lost)".format(
                    len(completeness.affected_sources)
                )
            )
        else:
            # The fault-layer guarantee is differential: a recovered run
            # must equal a fault-free run of the same protocol bit for
            # bit.  (Under L-bit floats the protocol itself differs from
            # Brandes by the Theorem 1 envelope, faults or no faults, so
            # Brandes is the reference only when the arithmetic is exact.)
            exact = args.arithmetic == "exact"
            if exact:
                reference = brandes_betweenness(graph, exact=True)
                mismatched = [
                    v
                    for v in graph.nodes()
                    if result.betweenness_exact[v] != reference[v]
                ]
                against = "Brandes"
            else:
                clean = distributed_betweenness(
                    graph,
                    arithmetic=args.arithmetic,
                    root=args.root,
                    strict=not args.lenient,
                    engine=args.engine,
                    workers=args.workers,
                    partitioner=args.partitioner,
                    protocol=args.protocol,
                )
                mismatched = [
                    v
                    for v in graph.nodes()
                    if result.betweenness[v] != clean.betweenness[v]
                ]
                against = "the fault-free run"
            if mismatched:
                print(
                    "\ncheck FAILED: recovered betweenness differs from "
                    "{} at nodes {}".format(against, mismatched[:10])
                )
                return 1
            print(
                "\ncheck OK: recovered betweenness matches {}".format(
                    against
                )
            )
    return 0 if completeness.complete else 2


def cmd_resume(args: argparse.Namespace) -> int:
    """Resume a checkpointed shard run from its on-disk snapshot."""
    from pathlib import Path

    from repro.faults import FaultPlan
    from repro.shard.checkpoint import read_manifest, resolve_checkpoint
    from repro.shard.supervisor import (
        DEFAULT_HEARTBEAT_TIMEOUT,
        SupervisionConfig,
    )

    ckpt = resolve_checkpoint(Path(args.checkpoint))
    manifest = read_manifest(ckpt)
    recipe = manifest.get("meta", {}).get("cli")
    if not recipe:
        raise SystemExit(
            "checkpoint {} carries no CLI recipe (written through the "
            "Python API?); resume it with distributed_betweenness(..., "
            "engine='shard', resume_from=...) instead".format(ckpt)
        )
    graph = _load_graph(
        argparse.Namespace(
            file=recipe.get("file"), graph=recipe.get("graph")
        )
    )
    plan = (
        FaultPlan.from_dict(recipe["plan"]) if recipe.get("plan") else None
    )
    # Keep writing into the same run directory (derived from the
    # snapshot's real location, not the possibly-relative recipe path)
    # so a resumed run stays checkpointed and restartable.
    checkpoint_every = recipe.get("checkpoint_every", 0) or 0
    supervision = SupervisionConfig(
        heartbeat_timeout=(
            args.heartbeat_timeout
            if args.heartbeat_timeout is not None
            else DEFAULT_HEARTBEAT_TIMEOUT
        ),
        max_restarts=args.max_restarts,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=(
            str(ckpt.parent.parent) if checkpoint_every else None
        ),
        resume_from=str(ckpt),
        meta={"cli": recipe},
    )
    result = distributed_betweenness(
        graph,
        arithmetic=recipe.get("arithmetic") or "lfloat",
        root=recipe.get("root", 0),
        strict=not recipe.get("lenient", False),
        engine="shard",
        workers=recipe.get("workers", 1),
        partitioner=recipe.get("partitioner", "greedy"),
        protocol=recipe.get("protocol"),
        faults=plan,
        resilient=bool(recipe.get("resilient", False)),
        supervision=supervision,
    )
    ranked = sorted(
        graph.nodes(), key=lambda v: result.betweenness[v], reverse=True
    )
    print_table(
        ["node", "betweenness", "degree"],
        [
            [v, result.betweenness[v], graph.degree(v)]
            for v in ranked[: args.top]
        ],
        title="Resumed betweenness on {} ({}, N={}, from round {}, "
        "rounds={})".format(
            graph.name,
            result.protocol,
            graph.num_nodes,
            manifest["round"],
            result.rounds,
        ),
    )
    _print_supervisor_summary(result.stats)
    if args.check:
        # The resume guarantee is differential and total: the resumed
        # run must equal an uninterrupted single-process run bit for
        # bit — same betweenness, same rounds, same wire totals.
        fresh = distributed_betweenness(
            graph,
            arithmetic=recipe.get("arithmetic") or "lfloat",
            root=recipe.get("root", 0),
            strict=not recipe.get("lenient", False),
            engine="event",
            protocol=recipe.get("protocol"),
            faults=plan,
            resilient=bool(recipe.get("resilient", False)),
        )
        mismatches = []
        if result.betweenness != fresh.betweenness:
            mismatches.append("betweenness")
        if result.rounds != fresh.rounds:
            mismatches.append(
                "rounds ({} vs {})".format(result.rounds, fresh.rounds)
            )
        for key in ("bits", "messages"):
            ours = result.stats.summary().get(key)
            theirs = fresh.stats.summary().get(key)
            if ours != theirs:
                mismatches.append(
                    "{} ({} vs {})".format(key, ours, theirs)
                )
        if mismatches:
            print(
                "\ncheck FAILED: resumed run differs from the "
                "uninterrupted run in: {}".format(", ".join(mismatches))
            )
            return 1
        print(
            "\ncheck OK: resumed run is bit-identical to the "
            "uninterrupted run"
        )
    completeness = getattr(result, "completeness", None)
    if completeness is not None and not completeness.complete:
        return 2
    return 0


def cmd_elect(args: argparse.Namespace) -> int:
    from repro.congest import elect_root

    graph = _load_graph(args)
    leader, rounds = elect_root(graph, seed=args.seed)
    print_table(
        ["metric", "value"],
        [
            ["graph", graph.name],
            ["elected root u0", leader],
            ["election rounds", rounds],
            ["priority", "min id" if args.seed is None else
             "seeded permutation ({})".format(args.seed)],
        ],
        title="Leader election (the paper's 'randomly selected vertex')",
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from repro.graphs import (
        degree_histogram,
        diameter as graph_diameter,
        is_connected,
        max_shortest_path_count,
    )

    graph = _load_graph(args)
    from repro.graphs.weighted import (
        WeightedGraph,
        is_weighted_connected,
        subdivide,
        weighted_diameter,
    )

    if isinstance(graph, WeightedGraph):
        rows = [
            ["name", graph.name],
            ["nodes", graph.num_nodes],
            ["weighted edges", graph.num_edges],
            ["total weight", graph.total_weight()],
            ["connected", is_weighted_connected(graph)],
        ]
        if is_weighted_connected(graph) and graph.num_nodes:
            rows.append(["weighted diameter", weighted_diameter(graph)])
            rows.append(
                ["subdivision size", subdivide(graph).graph.num_nodes]
            )
        print_table(["property", "value"], rows, title="Weighted graph info")
        return 0
    rows = [
        ["name", graph.name],
        ["nodes", graph.num_nodes],
        ["edges", graph.num_edges],
        ["connected", is_connected(graph)],
        ["max degree", graph.max_degree()],
    ]
    if is_connected(graph) and graph.num_nodes:
        rows.append(["diameter", graph_diameter(graph)])
        if graph.num_nodes <= 200:
            rows.append(["max sigma", max_shortest_path_count(graph)])
    rows.append(["degree histogram", str(dict(sorted(degree_histogram(graph).items())))])
    print_table(["property", "value"], rows, title="Graph info")
    return 0


def _render_watch_row(row, out) -> None:
    """One streamed row -> live terminal output (progress overdraws)."""
    event = row.get("event")
    if event == "meta":
        out.write(
            "watching {} on {} (N={}, engine={})\n".format(
                row.get("schema"),
                row.get("graph"),
                row.get("num_nodes"),
                row.get("engine"),
            )
        )
    elif event == "progress":
        parts = ["round {}".format(row.get("round"))]
        if "percent" in row:
            parts.insert(0, "{:6.2f}%".format(row["percent"]))
        if row.get("phase"):
            parts.append(str(row["phase"]))
        if "eta_seconds" in row and not row.get("final"):
            parts.append("eta {:.1f}s".format(row["eta_seconds"]))
        out.write("\r" + "  ".join(parts).ljust(64))
        if row.get("final"):
            out.write("\n")
    elif event == "phase":
        out.write(
            "\rphase {}: rounds {}..{} ({} rounds)".format(
                row.get("name"),
                row.get("start_round"),
                row.get("end_round"),
                row.get("rounds"),
            ).ljust(64)
            + "\n"
        )
    elif event == "monitor":
        out.write(
            "monitor {}: {}\n".format(row.get("monitor"), row.get("status"))
        )
    out.flush()


def cmd_watch(args: argparse.Namespace) -> int:
    """Tail a live-streamed telemetry JSONL as it is written."""
    import json as _json
    import time as _time

    out = sys.stdout
    try:
        fh = open(args.path, "r", encoding="utf-8")
    except OSError as err:
        print("error: {}".format(err), file=sys.stderr)
        return 2
    with fh:
        buffer = ""
        saw_final = False
        idle_since = None
        deadline = (
            _time.monotonic() + args.timeout if args.timeout else None
        )
        while True:
            chunk = fh.read()
            if chunk:
                idle_since = None
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    if not line.strip():
                        continue
                    try:
                        row = _json.loads(line)
                    except ValueError:
                        # A torn line can only be the still-growing tail,
                        # which the buffering above already defers — a
                        # complete-but-broken line is skipped.
                        continue
                    _render_watch_row(row, out)
                    if row.get("event") == "progress" and row.get("final"):
                        saw_final = True
            else:
                if not args.follow:
                    break
                now = _time.monotonic()
                if idle_since is None:
                    idle_since = now
                if saw_final and now - idle_since > 0.5:
                    break
                if deadline is not None and now > deadline:
                    break
                _time.sleep(args.interval)
        if buffer.strip():
            print(
                "\n(torn tail: {} bytes of an unfinished row)".format(
                    len(buffer)
                )
            )
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.history import RegressionGates, compare_payloads

    def load(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return _json.load(fh)
        except (OSError, ValueError) as err:
            raise SystemExit("cannot read {}: {}".format(path, err))

    baseline = load(args.baseline)
    current = load(args.current)
    gates = RegressionGates(
        max_speedup_drop=args.max_speedup_drop,
        max_slowdown=args.max_slowdown,
        check_wall=not args.no_wall,
    )
    violations, compared = compare_payloads(baseline, current, gates)
    print(
        "compared {} row(s) of {!r}: {} violation(s)".format(
            compared, baseline.get("benchmark"), len(violations)
        )
    )
    for violation in violations:
        print("  {}".format(violation))
    if args.ledger:
        from repro.obs.history import HistoryLedger, git_revision

        ledger = HistoryLedger(args.ledger)
        rev = git_revision()
        for payload in (current,):
            if payload.get("benchmark") == "engine_comparison":
                ledger.ingest_bench_engine(payload, git_rev=rev)
            elif payload.get("benchmark") == "fault_layer":
                ledger.ingest_bench_faults(payload, git_rev=rev)
            elif payload.get("benchmark") == "protocol_arena":
                ledger.ingest_bench_arena(payload, git_rev=rev)
            elif payload.get("benchmark") == "shard_runtime":
                ledger.ingest_bench_shard(payload, git_rev=rev)
            elif payload.get("benchmark") == "recovery":
                ledger.ingest_bench_recovery(payload, git_rev=rev)
        print("current payload recorded in {}".format(args.ledger))
    if violations and args.warn_only:
        print("(warn-only: exiting 0 despite violations)")
        return 0
    return 1 if violations else 0


def cmd_bench_ingest(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.history import HistoryLedger, git_revision

    ledger = HistoryLedger(args.ledger)
    rev = git_revision()
    total = 0
    for path in args.files:
        with open(path, "r", encoding="utf-8") as fh:
            payload = _json.load(fh)
        kind = payload.get("benchmark")
        if kind == "engine_comparison":
            total += ledger.ingest_bench_engine(payload, git_rev=rev)
        elif kind == "fault_layer":
            total += ledger.ingest_bench_faults(payload, git_rev=rev)
        elif kind == "protocol_arena":
            total += ledger.ingest_bench_arena(payload, git_rev=rev)
        elif kind == "shard_runtime":
            total += ledger.ingest_bench_shard(payload, git_rev=rev)
        elif kind == "recovery":
            total += ledger.ingest_bench_recovery(payload, git_rev=rev)
        else:
            print(
                "skipping {}: unknown benchmark kind {!r}".format(path, kind),
                file=sys.stderr,
            )
    print("{} record(s) appended to {}".format(total, args.ledger))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed betweenness centrality (ICDCS 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bc = sub.add_parser("bc", help="distributed betweenness")
    _add_graph_options(p_bc)
    _add_protocol_options(p_bc)
    p_bc.add_argument(
        "--check", action="store_true", help="also print the Brandes reference"
    )
    p_bc.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress line (percent/ETA) on stderr",
    )
    p_bc.add_argument(
        "--stream-jsonl",
        metavar="PATH",
        help="stream telemetry rows to PATH live, flushed per event",
    )
    _add_supervision_options(p_bc)
    p_bc.set_defaults(func=cmd_bc)

    p_resume = sub.add_parser(
        "resume",
        help="resume a checkpointed shard run (see bc --checkpoint-every)",
        description="Restore a --checkpoint-every snapshot and run it to "
        "completion.  Accepts the snapshot directory itself, its run "
        "directory, or the checkpoint root (newest valid snapshot wins). "
        "The resumed run is bit-identical to an uninterrupted one; "
        "--check proves it differentially against a fresh run.",
    )
    p_resume.add_argument(
        "checkpoint",
        help="checkpoint path: ckpt-* dir, run dir, or checkpoint root",
    )
    p_resume.add_argument(
        "--check",
        action="store_true",
        help="also run the uninterrupted single-process reference and "
        "verify bit-identity (betweenness, rounds, bits, messages)",
    )
    p_resume.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )
    p_resume.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        metavar="N",
        help="respawn budget per shard worker for the resumed run",
    )
    p_resume.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog patience for the resumed run (default 30)",
    )
    p_resume.set_defaults(func=cmd_resume)

    p_apsp = sub.add_parser("apsp", help="counting phase: closeness etc.")
    _add_graph_options(p_apsp)
    _add_protocol_options(p_apsp)
    p_apsp.set_defaults(func=cmd_apsp)

    p_stress = sub.add_parser("stress", help="distributed stress centrality")
    _add_graph_options(p_stress)
    _add_protocol_options(p_stress)
    p_stress.set_defaults(func=cmd_stress, arithmetic="exact")

    p_sample = sub.add_parser("sample", help="sampled distributed BC")
    _add_graph_options(p_sample)
    _add_protocol_options(p_sample)
    p_sample.add_argument("--pivots", type=int, default=8)
    p_sample.add_argument("--seed", type=int, default=0)
    p_sample.set_defaults(func=cmd_sample)

    p_sched = sub.add_parser("schedule", help="analytic sending-time tables")
    _add_graph_options(p_sched)
    p_sched.add_argument("--root", type=int, default=0)
    p_sched.add_argument(
        "--mode", choices=("shortcut", "tree_walk"), default="shortcut"
    )
    p_sched.add_argument("--top", type=int, default=10)
    p_sched.set_defaults(func=cmd_schedule)

    p_gadget = sub.add_parser("gadget", help="Section IX gadget verification")
    p_gadget.add_argument("kind", choices=("diameter", "bc"))
    p_gadget.add_argument("--sets", type=int, default=3, help="n subsets")
    p_gadget.add_argument("--x", type=int, default=10, help="diameter parameter")
    p_gadget.add_argument("--seed", type=int, default=0)
    p_gadget.add_argument(
        "--intersect",
        action="store_const",
        const=True,
        default=None,
        help="force a family match (default: random)",
    )
    p_gadget.set_defaults(func=cmd_gadget)

    p_trace = sub.add_parser(
        "trace",
        help="traced run with phase timeline; 'trace diff' compares runs",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", metavar="{diff}")
    _add_graph_options(p_trace)
    _add_protocol_options(p_trace)
    p_trace.add_argument("--width", type=int, default=70)
    p_trace.add_argument(
        "--trace-out",
        metavar="PATH",
        help="save the trace as repro-trace-v1 JSON (for 'trace diff')",
    )
    p_trace.add_argument(
        "--payloads",
        action="store_true",
        help="also capture each message's encoded frame word, enabling "
        "decoded field-level diffs",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_tdiff = trace_sub.add_parser(
        "diff",
        help="locate the first divergent delivery between two traces",
        description="Compare two trace files (saved with 'repro trace "
        "--trace-out'), or run two engines on one graph and compare the "
        "resulting streams. Exit 0 when identical, 1 at the first "
        "divergence.",
    )
    p_tdiff.add_argument(
        "traces",
        nargs="*",
        metavar="TRACE_JSON",
        help="two trace files; omit to run --engines on --graph instead",
    )
    _add_graph_options(p_tdiff)
    p_tdiff.add_argument(
        "--engines",
        default="sweep,event",
        help="two comma-separated engines for the run-and-compare mode "
        "(default: sweep,event)",
    )
    p_tdiff.add_argument(
        "--protocols",
        metavar="A,B",
        help="two comma-separated registered protocols to run on the "
        "event engine and diff (e.g. hua-bc,cfp-bc); overrides --engines",
    )
    p_tdiff.add_argument(
        "--arithmetic",
        default="lfloat",
        help="arithmetic mode, needed to decode sigma/psi fields "
        "(default: lfloat)",
    )
    p_tdiff.add_argument("--root", type=int, default=0)
    p_tdiff.add_argument(
        "--context",
        type=int,
        default=3,
        help="agreeing deliveries to show before the divergence",
    )
    p_tdiff.set_defaults(func=cmd_trace_diff)

    p_report = sub.add_parser(
        "report",
        help="instrumented run: phases, invariant monitors, metrics export",
    )
    _add_graph_options(p_report)
    _add_protocol_options(p_report)
    p_report.add_argument(
        "--monitor-mode",
        choices=("record", "warn", "raise"),
        default="record",
        help="how monitors react to a violation (default: record; the "
        "command exits 1 on any recorded violation either way)",
    )
    p_report.add_argument(
        "--profile",
        action="store_true",
        help="time the simulator's hot sections and print the profile",
    )
    p_report.add_argument(
        "--timeline",
        action="store_true",
        help="also trace every delivery and print the message timeline",
    )
    p_report.add_argument("--width", type=int, default=70)
    p_report.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's metrics/phases/verdicts as JSON Lines",
    )
    p_report.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress line (percent/ETA from the "
        "closed-form round schedule) on stderr during the run",
    )
    p_report.add_argument(
        "--stream-jsonl",
        metavar="PATH",
        help="stream telemetry rows to PATH live, flushed per event "
        "(a crashed run leaves a readable partial log)",
    )
    p_report.add_argument(
        "--from",
        dest="from_path",
        metavar="PATH",
        help="render the report from an exported (possibly truncated) "
        "telemetry JSONL instead of running anything",
    )
    p_report.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="export the run's phases/profile/monitors as a Chrome "
        "trace-event JSON (loadable in Perfetto / chrome://tracing)",
    )
    p_report.set_defaults(func=cmd_report)

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injected run: drops, delays, corruption, crashes",
    )
    _add_graph_options(p_chaos)
    _add_protocol_options(p_chaos)
    p_chaos.add_argument(
        "--drop", type=float, default=0.0, help="message drop probability"
    )
    p_chaos.add_argument(
        "--dup", type=float, default=0.0, help="duplication probability"
    )
    p_chaos.add_argument(
        "--delay-rate", type=float, default=0.0, help="delay probability"
    )
    p_chaos.add_argument(
        "--max-delay", type=int, default=3, help="max extra rounds of delay"
    )
    p_chaos.add_argument(
        "--corrupt", type=float, default=0.0, help="bit-flip probability"
    )
    p_chaos.add_argument(
        "--crash",
        action="append",
        metavar="NODE@START[:END]",
        help="crash window (omit END for a permanent crash); repeatable",
    )
    p_chaos.add_argument(
        "--link-down",
        action="append",
        metavar="U-V@START:END",
        help="link outage window; repeatable",
    )
    p_chaos.add_argument(
        "--hang",
        action="append",
        metavar="SHARD@ROUND[:REPEATS]",
        help="wedge a shard worker process at a round (requires "
        "--engine shard; the supervisor's heartbeat watchdog detects "
        "it and respawns within --max-restarts); repeatable",
    )
    p_chaos.add_argument(
        "--slow",
        action="append",
        metavar="SHARD@ROUND[:DELAY]",
        help="delay a shard worker at a round by DELAY seconds while "
        "it keeps heartbeating (a straggler the watchdog must "
        "tolerate); repeatable",
    )
    p_chaos.add_argument("--seed", type=int, default=0, help="fault seed")
    p_chaos.add_argument(
        "--plan", metavar="PATH", help="load a FaultPlan JSON (overrides flags)"
    )
    p_chaos.add_argument(
        "--plan-out", metavar="PATH", help="save the effective FaultPlan JSON"
    )
    p_chaos.add_argument(
        "--raw",
        action="store_true",
        help="run the bare protocol without the resilient transport "
        "(no recovery guarantee; for demonstrating failure modes)",
    )
    p_chaos.add_argument(
        "--check",
        action="store_true",
        help="compare the recovered betweenness against Brandes",
    )
    _add_supervision_options(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_elect = sub.add_parser("elect", help="leader election for the root u0")
    _add_graph_options(p_elect)
    p_elect.add_argument("--seed", type=int, default=None)
    p_elect.set_defaults(func=cmd_elect)

    p_info = sub.add_parser("info", help="graph statistics")
    _add_graph_options(p_info)
    p_info.set_defaults(func=cmd_info)

    p_watch = sub.add_parser(
        "watch",
        help="tail a live-streamed telemetry JSONL",
        description="Follow a telemetry stream written with "
        "--stream-jsonl, rendering progress, phases and monitor "
        "verdicts as rows arrive. Torn tail lines (a run killed "
        "mid-write) are reported, not fatal.",
    )
    p_watch.add_argument("path", help="the streaming JSONL file")
    p_watch.add_argument(
        "--no-follow",
        dest="follow",
        action="store_false",
        help="render what is in the file now and exit (no tailing)",
    )
    p_watch.add_argument(
        "--interval",
        type=float,
        default=0.2,
        help="poll interval in seconds while following (default 0.2)",
    )
    p_watch.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        help="stop following after this many seconds (0 = until the "
        "run's final row)",
    )
    p_watch.set_defaults(func=cmd_watch)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark history: regression gates and ledger ingestion",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bcmp = bench_sub.add_parser(
        "compare",
        help="gate a fresh BENCH_*.json against a committed baseline",
        description="Compare two benchmark payloads (BENCH_engine.json, "
        "BENCH_faults.json, BENCH_arena.json or BENCH_shard.json). "
        "Structural metrics "
        "(rounds, bits, messages, result identity) must match exactly; "
        "wall-clock metrics get configurable ratio gates. Exits 1 on "
        "any violation unless --warn-only.",
    )
    p_bcmp.add_argument("baseline", help="baseline payload JSON")
    p_bcmp.add_argument("current", help="freshly produced payload JSON")
    p_bcmp.add_argument(
        "--max-speedup-drop",
        type=float,
        default=0.20,
        help="fail when an engine speedup falls by more than this "
        "fraction (default 0.20)",
    )
    p_bcmp.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="fail when a timed section exceeds this multiple of the "
        "baseline (default 2.0)",
    )
    p_bcmp.add_argument(
        "--no-wall",
        action="store_true",
        help="skip wall-clock gates entirely (cross-machine compares)",
    )
    p_bcmp.add_argument(
        "--warn-only",
        action="store_true",
        help="print violations but exit 0 (advisory CI legs)",
    )
    p_bcmp.add_argument(
        "--ledger",
        metavar="PATH",
        help="also append the current payload to this history ledger",
    )
    p_bcmp.set_defaults(func=cmd_bench_compare)

    p_bing = bench_sub.add_parser(
        "ingest",
        help="append BENCH_*.json payload rows to the history ledger",
    )
    p_bing.add_argument("files", nargs="+", metavar="BENCH_JSON")
    p_bing.add_argument(
        "--ledger",
        default=".repro-history.jsonl",
        metavar="PATH",
        help="ledger path (default: .repro-history.jsonl)",
    )
    p_bing.set_defaults(func=cmd_bench_ingest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print("error: {}".format(err), file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into `head` etc.; conventional silent exit.
        return 0


if __name__ == "__main__":
    sys.exit(main())
