"""Serializable fault plans: the declarative side of fault injection.

A :class:`FaultPlan` describes *which* faults a run is subjected to —
probabilistic channel faults (drop, duplication, bounded delay,
bit-flip corruption of the encoded frame) plus scheduled faults
(node crash/restart windows, link-down intervals) — without saying
anything about *how* they are realized; that is the
:class:`~repro.faults.injector.FaultInjector`'s job.

Plans are plain frozen dataclasses with a JSON round-trip
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict`), so a chaos
scenario can be stored next to a benchmark table and replayed exactly.
Determinism is part of the contract: the injector derives every fault
decision from a pure hash of ``(plan.seed, fault kind, round, edge,
per-edge message index)``, so the same plan on the same protocol run
produces the same faults under **both** simulator engines — there is
no consumed RNG stream to desynchronize.

See ``docs/fault-model.md`` for the full taxonomy and the recovery
guarantees each fault class does (and does not) come with.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Default rounds of zero fresh traffic before the injector declares a
#: stall.  Must comfortably exceed the transport's retransmission
#: backoff cap (16 rounds) plus the maximum bounded delay, or a healthy
#: but unlucky run could be declared dead while recovery is in flight.
DEFAULT_STALL_PATIENCE = 128


@dataclass(frozen=True)
class CrashWindow:
    """A fail-pause crash: ``node`` is frozen for rounds [start, end).

    ``end is None`` means the crash is permanent.  Fail-pause semantics:
    the node's state is preserved; while crashed it is never stepped and
    every message addressed to it is lost at delivery time.  A node
    crashed from round 0 never even runs ``on_start``.
    """

    node: int
    start: int
    end: Optional[int] = None

    def __post_init__(self):
        if self.start < 0:
            raise ValueError("crash window start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ValueError("crash window end must be after its start")

    def covers(self, round_number: int) -> bool:
        """Whether the node is down in ``round_number``."""
        if round_number < self.start:
            return False
        return self.end is None or round_number < self.end


@dataclass(frozen=True)
class LinkOutage:
    """Both directions of edge {u, v} are down for rounds [start, end).

    A message *sent* during the outage is lost (the medium is gone when
    the sender transmits); the edge itself remains part of the topology,
    so neighbors lists and budgets are unchanged.
    """

    u: int
    v: int
    start: int
    end: int

    def __post_init__(self):
        if self.u == self.v:
            raise ValueError("link outage needs two distinct endpoints")
        if self.start < 0 or self.end <= self.start:
            raise ValueError("link outage needs 0 <= start < end")

    def covers(self, round_number: int) -> bool:
        return self.start <= round_number < self.end


@dataclass(frozen=True)
class WorkerHang:
    """Infrastructure fault: a shard worker wedges at a round barrier.

    When the worker for ``shard`` receives the command for ``round`` it
    stops stamping its heartbeat and spins forever, exactly as a
    deadlocked or livelocked process would.  Only the supervisor can get
    the run moving again (watchdog timeout → kill → respawn from the
    last checkpoint).  ``repeats`` counts how many *incarnations* of the
    worker hang: with the default 1, the respawned worker sails past the
    same round; with ``repeats=3`` the first three incarnations all
    wedge, exercising the restart budget.

    ``shard`` must be >= 1 — shard 0 runs inside the coordinator process
    and cannot be supervised away.
    """

    shard: int
    round: int
    repeats: int = 1

    def __post_init__(self):
        if self.shard < 1:
            raise ValueError(
                "worker hangs need shard >= 1 (shard 0 is the coordinator)"
            )
        if self.round < 0:
            raise ValueError("worker hang round must be >= 0")
        if self.repeats < 1:
            raise ValueError("worker hang repeats must be >= 1")


@dataclass(frozen=True)
class SlowWorker:
    """Infrastructure fault: one shard worker stalls for ``delay`` seconds.

    The worker for ``shard`` sleeps before processing ``round`` but keeps
    its heartbeat fresh, modelling a straggler (GC pause, noisy
    neighbor) rather than a failure.  A correctly tuned supervisor must
    *not* kill it: the run completes bit-identically, just later.  Like
    :class:`WorkerHang` this is wall-clock only and never changes any
    protocol output.
    """

    shard: int
    round: int
    delay: float = 0.5

    def __post_init__(self):
        if self.shard < 1:
            raise ValueError(
                "slow workers need shard >= 1 (shard 0 is the coordinator)"
            )
        if self.round < 0:
            raise ValueError("slow worker round must be >= 0")
        if self.delay <= 0:
            raise ValueError("slow worker delay must be > 0 seconds")


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault scenario for one run.

    Attributes
    ----------
    seed:
        Root of every hash-derived fault decision; two runs with the
        same plan see byte-identical fault schedules.
    drop_rate:
        Per-message probability of silent loss.
    duplicate_rate:
        Per-message probability of a second delivery of the same
        message one-to-``max_delay`` rounds later.
    delay_rate, max_delay:
        Per-message probability of late delivery, and the maximum extra
        rounds a delayed message spends on the wire (uniform in
        ``1..max_delay``).
    corrupt_rate, corrupt_bits:
        Per-message probability of bit-flip corruption of the encoded
        frame, and how many bits flip.  Corrupted frames whose checksum
        rejects them are dropped at the receiver (a *detected* loss);
        see :mod:`repro.faults.injector` for the exact realization.
    crashes:
        Fail-pause node crash/restart windows.
    link_outages:
        Scheduled link-down intervals.
    stall_patience:
        Rounds without fresh traffic before the injector raises
        :class:`~repro.exceptions.SimulationStalledError`.
    worker_hangs, slow_workers:
        Infrastructure faults against the sharded runtime's *processes*
        rather than the protocol's messages: scheduled worker wedges
        (:class:`WorkerHang`) and stragglers (:class:`SlowWorker`).
        Single-process engines ignore them — they model the machine,
        not the algorithm, and never change protocol outputs.
    corrupt_checkpoint_rounds:
        Checkpoint rounds whose just-written snapshot gets one byte
        flipped on disk, exercising the checksum rejection + fall-back
        path of :mod:`repro.shard.checkpoint`.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 3
    corrupt_rate: float = 0.0
    corrupt_bits: int = 1
    crashes: Tuple[CrashWindow, ...] = ()
    link_outages: Tuple[LinkOutage, ...] = ()
    stall_patience: int = DEFAULT_STALL_PATIENCE
    worker_hangs: Tuple[WorkerHang, ...] = ()
    slow_workers: Tuple[SlowWorker, ...] = ()
    corrupt_checkpoint_rounds: Tuple[int, ...] = ()

    def __post_init__(self):
        for name in ("drop_rate", "duplicate_rate", "delay_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    "{} must be in [0, 1], got {!r}".format(name, rate)
                )
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if self.corrupt_bits < 1:
            raise ValueError("corrupt_bits must be >= 1")
        if self.stall_patience < 1:
            raise ValueError("stall_patience must be >= 1")
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "link_outages", tuple(self.link_outages))
        object.__setattr__(self, "worker_hangs", tuple(self.worker_hangs))
        object.__setattr__(self, "slow_workers", tuple(self.slow_workers))
        object.__setattr__(
            self,
            "corrupt_checkpoint_rounds",
            tuple(int(r) for r in self.corrupt_checkpoint_rounds),
        )
        if any(r < 0 for r in self.corrupt_checkpoint_rounds):
            raise ValueError("corrupt_checkpoint_rounds must be >= 0")

    # ------------------------------------------------------------------
    @property
    def has_channel_faults(self) -> bool:
        """Whether any probabilistic per-message fault can fire."""
        return (
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.delay_rate > 0.0
            or self.corrupt_rate > 0.0
        )

    @property
    def has_infra_faults(self) -> bool:
        """Whether the plan targets the runtime's processes or snapshots."""
        return bool(
            self.worker_hangs
            or self.slow_workers
            or self.corrupt_checkpoint_rounds
        )

    @property
    def is_zero(self) -> bool:
        """A plan that can never inject anything (the differential case)."""
        return (
            not self.has_channel_faults
            and not self.crashes
            and not self.link_outages
            and not self.has_infra_faults
        )

    def permanent_crashes(self) -> Tuple[int, ...]:
        """Ids of nodes some window crashes forever."""
        return tuple(
            sorted({w.node for w in self.crashes if w.end is None})
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready plain-dict rendering of the plan."""
        return {
            "schema": "repro-faultplan-v1",
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "max_delay": self.max_delay,
            "corrupt_rate": self.corrupt_rate,
            "corrupt_bits": self.corrupt_bits,
            "crashes": [
                {"node": w.node, "start": w.start, "end": w.end}
                for w in self.crashes
            ],
            "link_outages": [
                {"u": o.u, "v": o.v, "start": o.start, "end": o.end}
                for o in self.link_outages
            ],
            "stall_patience": self.stall_patience,
            "worker_hangs": [
                {"shard": h.shard, "round": h.round, "repeats": h.repeats}
                for h in self.worker_hangs
            ],
            "slow_workers": [
                {"shard": s.shard, "round": s.round, "delay": s.delay}
                for s in self.slow_workers
            ],
            "corrupt_checkpoint_rounds": list(
                self.corrupt_checkpoint_rounds
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (tolerates missing defaults)."""
        schema = payload.get("schema", "repro-faultplan-v1")
        if schema != "repro-faultplan-v1":
            raise ValueError(
                "unsupported fault plan schema {!r}".format(schema)
            )
        return cls(
            seed=int(payload.get("seed", 0)),
            drop_rate=float(payload.get("drop_rate", 0.0)),
            duplicate_rate=float(payload.get("duplicate_rate", 0.0)),
            delay_rate=float(payload.get("delay_rate", 0.0)),
            max_delay=int(payload.get("max_delay", 3)),
            corrupt_rate=float(payload.get("corrupt_rate", 0.0)),
            corrupt_bits=int(payload.get("corrupt_bits", 1)),
            crashes=tuple(
                CrashWindow(
                    node=int(w["node"]),
                    start=int(w["start"]),
                    end=None if w.get("end") is None else int(w["end"]),
                )
                for w in payload.get("crashes", ())
            ),
            link_outages=tuple(
                LinkOutage(
                    u=int(o["u"]),
                    v=int(o["v"]),
                    start=int(o["start"]),
                    end=int(o["end"]),
                )
                for o in payload.get("link_outages", ())
            ),
            stall_patience=int(
                payload.get("stall_patience", DEFAULT_STALL_PATIENCE)
            ),
            worker_hangs=tuple(
                WorkerHang(
                    shard=int(h["shard"]),
                    round=int(h["round"]),
                    repeats=int(h.get("repeats", 1)),
                )
                for h in payload.get("worker_hangs", ())
            ),
            slow_workers=tuple(
                SlowWorker(
                    shard=int(s["shard"]),
                    round=int(s["round"]),
                    delay=float(s.get("delay", 0.5)),
                )
                for s in payload.get("slow_workers", ())
            ),
            corrupt_checkpoint_rounds=tuple(
                int(r)
                for r in payload.get("corrupt_checkpoint_rounds", ())
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
