"""The fault injector: deterministic realization of a FaultPlan.

The simulator consults one :class:`FaultInjector` at three points:

* per enqueued message — :meth:`FaultInjector.deliveries` maps the
  reliable delivery (next round, original message) to a list of
  ``(delivery round, message)`` outcomes: empty for a loss, late for a
  delay, two entries for a duplication, a *different* message object
  for undetected corruption;
* per node per round — :meth:`FaultInjector.node_crashed` implements
  the fail-pause crash windows;
* per round — :meth:`FaultInjector.check_stalled` is the crash-aware
  termination detector: when recovery traffic (retransmissions, acks)
  is the only thing on the wire for ``stall_patience`` rounds, the run
  is declared stalled and ends with a structured error instead of
  spinning to the round limit.

Determinism
-----------
Every probabilistic decision is a pure function of ``(plan.seed, fault
kind, send round, sender, receiver, per-edge message index)`` hashed
through BLAKE2b — no consumed RNG stream.  Since both simulator engines
present the identical send sequence (same rounds, same per-edge order),
the injected faults are identical under ``engine="sweep"`` and
``engine="event"``, which is what makes fault runs differentially
testable at all.

Corruption
----------
Bit-flip corruption is realized *physically* where possible: the
message is encoded through :func:`repro.wire.encode_frame_checked`,
``corrupt_bits`` payload bits are flipped, and the frame is decoded
through the checksum-verifying path.  A rejected frame (CRC mismatch —
certain for single-bit flips — or an unparseable payload) counts as a
*detected* loss; an undetected corruption delivers the decoded, altered
message.  Messages outside the codec registry (transport envelopes,
opaque payloads) or without an arithmetic context fall back to the
modeled outcome: corruption detected, frame dropped.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import SimulationStalledError, WireCodecError
from repro.faults.plan import FaultPlan
from repro.wire import Message

#: 2**64 as a float divisor for hash -> unit-interval mapping.
_UNIT_SCALE = float(1 << 64)


class FaultStats:
    """Counters for every injected fault (attached to SimulationStats)."""

    __slots__ = (
        "dropped",
        "duplicated",
        "delayed",
        "corrupted_detected",
        "corrupted_undetected",
        "crash_dropped",
        "link_dropped",
        "crash_rounds",
        "recoveries",
    )

    def __init__(self):
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.corrupted_detected = 0
        self.corrupted_undetected = 0
        self.crash_dropped = 0
        self.link_dropped = 0
        self.crash_rounds = 0
        #: (node, crash start, first alive round) per finite crash window.
        self.recoveries: List[Tuple[int, int, int]] = []

    @property
    def total_injected(self) -> int:
        return (
            self.dropped
            + self.duplicated
            + self.delayed
            + self.corrupted_detected
            + self.corrupted_undetected
            + self.crash_dropped
            + self.link_dropped
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "corrupted_detected": self.corrupted_detected,
            "corrupted_undetected": self.corrupted_undetected,
            "crash_dropped": self.crash_dropped,
            "link_dropped": self.link_dropped,
            "crash_rounds": self.crash_rounds,
            "recoveries": len(self.recoveries),
            "total_injected": self.total_injected,
        }

    def __repr__(self) -> str:
        return "FaultStats({})".format(self.as_dict())


class FaultInjector:
    """Realizes one :class:`FaultPlan` against one simulation run.

    One injector observes one run — build a fresh one per run (it holds
    per-run progress and sequence state).

    Parameters
    ----------
    plan:
        The fault scenario.
    arith:
        Optional arithmetic context, required only to *physically*
        corrupt frames carrying SIGMA/PSI fields; without it those
        corruptions fall back to detected drops.
    tracer:
        Optional :class:`~repro.congest.trace.Tracer`; injected faults
        are recorded via its ``record_fault`` hook.
    """

    def __init__(self, plan: FaultPlan, arith=None, tracer=None):
        self.plan = plan
        self.arith = arith
        self.tracer = tracer
        self.stats = FaultStats()
        self._key = plan.seed.to_bytes(8, "big", signed=True)
        #: per directed edge: messages ever sent (the decision index).
        self._edge_seq: Dict[Tuple[int, int], int] = {}
        #: node -> sorted crash windows.
        self._crash_windows: Dict[int, List] = {}
        for window in plan.crashes:
            self._crash_windows.setdefault(window.node, []).append(window)
        for windows in self._crash_windows.values():
            windows.sort(key=lambda w: w.start)
        #: undirected edge -> outage windows.
        self._outages: Dict[Tuple[int, int], List] = {}
        for outage in plan.link_outages:
            key = (min(outage.u, outage.v), max(outage.u, outage.v))
            self._outages.setdefault(key, []).append(outage)
        self._wire = None
        #: last round that carried fresh (non-recovery) traffic.
        self.last_progress_round = 0
        #: nodes recorded as crashed at least once (for recovery spans).
        self._seen_crashed: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def bind(self, simulator) -> None:
        """Attach per-run context; called by ``Simulator.__init__``."""
        self._wire = simulator.wire

    # ------------------------------------------------------------------
    # deterministic decisions
    # ------------------------------------------------------------------
    def _unit(
        self, kind: str, round_number: int, sender: int, receiver: int, index: int
    ) -> float:
        """A reproducible uniform draw in [0, 1) for one decision site."""
        digest = hashlib.blake2b(
            "{}:{}:{}:{}:{}".format(
                kind, round_number, sender, receiver, index
            ).encode("ascii"),
            digest_size=8,
            key=self._key,
        ).digest()
        return int.from_bytes(digest, "big") / _UNIT_SCALE

    def _span(
        self,
        kind: str,
        round_number: int,
        sender: int,
        receiver: int,
        index: int,
        bound: int,
    ) -> int:
        """A reproducible draw in ``1..bound``."""
        if bound <= 1:
            return 1
        draw = int(self._unit(kind, round_number, sender, receiver, index) * bound)
        return 1 + draw % bound

    # ------------------------------------------------------------------
    # crash windows
    # ------------------------------------------------------------------
    def node_crashed(self, node_id: int, round_number: int) -> bool:
        """Whether ``node_id`` is inside a crash window this round.

        Pure query (no counters) — it is consulted once per delivery
        attempt *and* once per step; :meth:`note_crash_skip` does the
        once-per-node-per-round accounting.
        """
        windows = self._crash_windows.get(node_id)
        if windows is None:
            return False
        return any(window.covers(round_number) for window in windows)

    def note_crash_skip(self, node_id: int, round_number: int) -> None:
        """Account one crashed node-round (called by the step loop)."""
        self.stats.crash_rounds += 1
        if node_id not in self._seen_crashed:
            self._seen_crashed[node_id] = round_number
            for window in self._crash_windows.get(node_id, ()):
                if window.end is not None:
                    self.stats.recoveries.append(
                        (node_id, window.start, window.end)
                    )

    def crash_end_after(self, node_id: int, round_number: int) -> Optional[int]:
        """First round >= ``round_number`` at which the node is alive.

        ``None`` when the covering window is permanent.  Only meaningful
        when :meth:`node_crashed` just returned True for this round.
        """
        windows = self._crash_windows.get(node_id)
        if windows is None:
            return round_number
        round_alive = round_number
        for window in windows:
            if window.covers(round_alive):
                if window.end is None:
                    return None
                round_alive = window.end
        return round_alive

    def crashed_nodes(self, round_number: int) -> Tuple[int, ...]:
        """Ids crashed in ``round_number`` (without counter side effects)."""
        out = []
        for node_id, windows in self._crash_windows.items():
            if any(w.covers(round_number) for w in windows):
                out.append(node_id)
        return tuple(sorted(out))

    def _link_down(self, sender: int, receiver: int, round_number: int) -> bool:
        outages = self._outages.get(
            (min(sender, receiver), max(sender, receiver))
        )
        return outages is not None and any(
            o.covers(round_number) for o in outages
        )

    # ------------------------------------------------------------------
    # the per-message fault pipeline
    # ------------------------------------------------------------------
    def deliveries(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        message: Message,
    ) -> List[Tuple[int, Message]]:
        """Map one send to its delivery outcomes.

        Returns ``[(delivery_round, message), ...]`` — empty for a
        loss; the reliable outcome is ``[(round + 1, message)]``.
        The send is billed by the simulator regardless (the sender
        transmitted; the network ate it).
        """
        plan = self.plan
        key = (sender, receiver)
        index = self._edge_seq.get(key, 0)
        self._edge_seq[key] = index + 1
        if self._counts_as_progress(message):
            self.last_progress_round = round_number
        if self._outages and self._link_down(sender, receiver, round_number):
            self.stats.link_dropped += 1
            self._trace(round_number, "link_down", sender, receiver)
            return []
        if plan.drop_rate > 0.0 and (
            self._unit("drop", round_number, sender, receiver, index)
            < plan.drop_rate
        ):
            self.stats.dropped += 1
            self._trace(round_number, "drop", sender, receiver)
            return []
        if plan.corrupt_rate > 0.0 and (
            self._unit("corrupt", round_number, sender, receiver, index)
            < plan.corrupt_rate
        ):
            message = self._corrupt(round_number, sender, receiver, index, message)
            if message is None:
                return []
        delivery_round = round_number + 1
        if plan.delay_rate > 0.0 and (
            self._unit("delay", round_number, sender, receiver, index)
            < plan.delay_rate
        ):
            extra = self._span(
                "delay_span", round_number, sender, receiver, index,
                plan.max_delay,
            )
            delivery_round += extra
            self.stats.delayed += 1
            self._trace(round_number, "delay", sender, receiver)
        outcomes = []
        if not self.node_crashed(receiver, delivery_round):
            outcomes.append((delivery_round, message))
        else:
            self.stats.crash_dropped += 1
            self._trace(round_number, "crash_drop", sender, receiver)
        if plan.duplicate_rate > 0.0 and (
            self._unit("dup", round_number, sender, receiver, index)
            < plan.duplicate_rate
        ):
            dup_round = round_number + 1 + self._span(
                "dup_span", round_number, sender, receiver, index,
                plan.max_delay,
            )
            self.stats.duplicated += 1
            self._trace(round_number, "duplicate", sender, receiver)
            if not self.node_crashed(receiver, dup_round):
                outcomes.append((dup_round, message))
            else:
                self.stats.crash_dropped += 1
        return outcomes

    def _corrupt(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        index: int,
        message: Message,
    ) -> Optional[Message]:
        """Flip bits in the encoded frame; None = detected, dropped."""
        from repro.wire import decode_frame_checked, encode_frame_checked
        from repro.exceptions import FrameChecksumError

        inner = getattr(message, "inner_message", None)
        victim = inner if inner is not None else message
        wire = self._wire
        if (
            wire is None
            or type(victim).wire_tag is None
            or type(victim).WIRE_LAYOUT is None
        ):
            # Not physically encodable here: model the corruption as
            # caught by the checksum (certain for <= 8 flipped bits).
            self.stats.corrupted_detected += 1
            self._trace(round_number, "corrupt_detected", sender, receiver)
            return None
        try:
            word, bits = encode_frame_checked((victim,), wire)
        except WireCodecError:
            self.stats.corrupted_detected += 1
            self._trace(round_number, "corrupt_detected", sender, receiver)
            return None
        flipped = word
        for flip in range(self.plan.corrupt_bits):
            position = int(
                self._unit(
                    "corrupt_bit{}".format(flip),
                    round_number,
                    sender,
                    receiver,
                    index,
                )
                * bits
            ) % bits
            flipped ^= 1 << position
        try:
            decoded = decode_frame_checked(
                flipped, bits, wire, arith=self.arith
            )
        except (FrameChecksumError, WireCodecError):
            self.stats.corrupted_detected += 1
            self._trace(round_number, "corrupt_detected", sender, receiver)
            return None
        if len(decoded) != 1:
            self.stats.corrupted_detected += 1
            self._trace(round_number, "corrupt_detected", sender, receiver)
            return None
        self.stats.corrupted_undetected += 1
        self._trace(round_number, "corrupt_undetected", sender, receiver)
        mutated = decoded[0]
        if inner is not None:
            return message.with_message(mutated)
        return mutated

    # ------------------------------------------------------------------
    # crash-aware termination detection
    # ------------------------------------------------------------------
    @staticmethod
    def _counts_as_progress(message: Message) -> bool:
        """Fresh protocol traffic vs. recovery traffic.

        Retransmissions and acknowledgements (transport messages that
        set ``fault_progress`` False) keep a dead protocol *looking*
        busy forever; only first-transmission data counts as progress.
        """
        return getattr(message, "fault_progress", True)

    def check_stalled(self, round_number: int, simulator) -> None:
        """Raise :class:`SimulationStalledError` on a starved run.

        Patience floors at ``2 N``: the protocol has legitimate
        scheduled-quiet stretches (the aggregation schedule's gaps and
        its finish-horizon wait) bounded by O(diameter) < 2N rounds,
        while recovery churn repeats every <= 16 rounds — so 2N rounds
        of zero fresh traffic cannot be a healthy run.
        """
        patience = max(self.plan.stall_patience, 2 * len(simulator.nodes))
        if round_number - self.last_progress_round <= patience:
            return
        pending = tuple(
            node.node_id for node in simulator.nodes if not node.done
        )
        if not pending:
            return
        raise SimulationStalledError(
            round_number,
            self.last_progress_round,
            pending,
            self.crashed_nodes(round_number),
        )

    # ------------------------------------------------------------------
    def _trace(
        self, round_number: int, kind: str, sender: int, receiver: int
    ) -> None:
        tracer = self.tracer
        if tracer is not None:
            record_fault = getattr(tracer, "record_fault", None)
            if record_fault is not None:
                record_fault(round_number, kind, sender, receiver)

    def __repr__(self) -> str:
        return "FaultInjector(plan={!r}, stats={!r})".format(
            self.plan, self.stats
        )
