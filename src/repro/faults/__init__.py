"""repro.faults — fault injection and the self-healing transport.

Two halves, one package:

* **Injection** (:mod:`~repro.faults.plan`, :mod:`~repro.faults.
  injector`): a serializable :class:`FaultPlan` describing message
  drop/duplication/delay/corruption, node crash windows and link
  outages, realized deterministically by a :class:`FaultInjector` the
  simulator consults per send.  ``faults=None`` (the default
  everywhere) is a zero-cost fast path — no plan, no overhead, and
  byte-identical output to a build without this package.

* **Recovery** (:mod:`~repro.faults.transport`): :class:`ResilientNode`
  wraps any protocol node in an ack/retransmit transport plus an
  alpha-synchronizer, so the wrapped protocol computes the *exact*
  fault-free answer over lossy channels — recovery changes when things
  happen, never what is computed.

See ``docs/fault-model.md`` for the taxonomy, guarantees and limits.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    DEFAULT_STALL_PATIENCE,
    CrashWindow,
    FaultPlan,
    LinkOutage,
    SlowWorker,
    WorkerHang,
)
from repro.faults.transport import (
    RESILIENT_CONGEST_FACTOR,
    RETRANSMIT_BURST,
    RETRY_INTERVAL,
    RETRY_INTERVAL_CAP,
    Ack,
    Envelope,
    Fence,
    ResilientNode,
    make_resilient_factory,
    unwrap_node,
)

__all__ = [
    # plan
    "FaultPlan",
    "CrashWindow",
    "LinkOutage",
    "WorkerHang",
    "SlowWorker",
    "DEFAULT_STALL_PATIENCE",
    # injector
    "FaultInjector",
    "FaultStats",
    # transport
    "ResilientNode",
    "Envelope",
    "Fence",
    "Ack",
    "make_resilient_factory",
    "unwrap_node",
    "RESILIENT_CONGEST_FACTOR",
    "RETRY_INTERVAL",
    "RETRY_INTERVAL_CAP",
    "RETRANSMIT_BURST",
]
