"""Reliable transport over faulty channels: the self-healing layer.

:class:`ResilientNode` wraps any :class:`~repro.congest.node.
NodeAlgorithm` in a per-link ack/retransmit transport plus an
alpha-synchronizer, making the wrapped ("inner") protocol run correctly
over channels that drop, duplicate, delay or corrupt messages and
across fail-pause crash windows — without modifying the inner protocol
at all.

How it works
------------
The inner protocol runs in **logical rounds**, decoupled from the
simulator's physical rounds:

* Every inner message travels in an :class:`Envelope` carrying a
  per-link sequence number and the logical round it belongs to.
* After executing logical round ``r``, a node sends every neighbor a
  :class:`Fence` for ``r`` stating how many data envelopes that
  neighbor was sent in ``r`` (possibly zero).  A fence whose ``done``
  flag is set additionally promises that **no** data follows for any
  later logical round.
* A node executes logical round ``r`` only once, for every neighbor,
  round ``r-1`` is *complete*: the fence for ``r-1`` arrived and as
  many data envelopes as it announced.  This is the alpha-synchronizer
  condition — it guarantees the logical-round inbox is exactly the
  reliable run's inbox.
* Envelopes and fences are retransmitted on a round-based timeout with
  exponential backoff (``RETRY_INTERVAL`` doubling up to
  ``RETRY_INTERVAL_CAP``) until cumulatively acknowledged; receivers
  deduplicate by sequence number and acknowledge the highest
  *contiguous* sequence received (go-back-N style, one :class:`Ack`
  per link per round).

Because logical inboxes are reassembled in ``(sender id, sequence)``
order — exactly the sender-sorted enqueue order the reliable simulator
guarantees — the inner protocol's execution is **bit-identical** to a
reliable sweep-engine run: same settle rounds, same sigma/psi values,
same betweenness.  Recovery changes only *when* (in physical rounds)
each logical round executes, never *what* it computes.  That is the
differential guarantee the fault tests pin down: under any recoverable
plan, recovered BC equals the fault-free run (and Brandes) exactly.

Limits: a permanently crashed node stalls its neighbors' logical clock
forever (retransmissions are not progress), which the injector's stall
detector converts into a structured partial result — see
``docs/fault-model.md``.

At most one logical round executes per physical round, so the per-edge
physical budget is the inner round's traffic plus a constant transport
overhead (envelope headers, one fence, one ack, bounded-burst
retransmissions) — CONGEST's O(log N) per edge per round is preserved
up to the constant tracked by :data:`RESILIENT_CONGEST_FACTOR`.
"""

from __future__ import annotations

from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.congest.node import Inbox, NodeAlgorithm, NodeFactory, RoundContext
from repro.congest.simulator import DEFAULT_CONGEST_FACTOR
from repro.exceptions import ProtocolError
from repro.wire import FLAG, ROUND, UINT, Message, WireFormat, uint_bits

#: Suggested ``congest_factor`` for resilient runs: the transport adds
#: a constant per-edge overhead (envelope headers, fences, acks,
#: retransmission bursts) on top of the inner protocol's worst round.
RESILIENT_CONGEST_FACTOR = 4 * DEFAULT_CONGEST_FACTOR

#: Initial retransmission timeout in physical rounds.  The loss-free
#: round trip is 2 rounds (deliver + ack back); 4 leaves headroom for
#: bounded delivery delay before retransmitting needlessly.
RETRY_INTERVAL = 4

#: Backoff cap for the doubling retransmission interval.
RETRY_INTERVAL_CAP = 16

#: Maximum retransmissions per link per round (oldest-first), bounding
#: the recovery traffic's contribution to the per-edge bit budget.
RETRANSMIT_BURST = 3


class Envelope(Message):
    """A transport frame carrying one inner message.

    Not registered in the 4-bit wire tag space (the registry is full);
    the envelope is still *sized* honestly — header fields plus the
    inner message's full frame — so the CONGEST accounting charges the
    real cost of running the transport.
    """

    __slots__ = ("seq", "inner_round", "retransmit", "inner_message")

    def __init__(
        self,
        seq: int,
        inner_round: int,
        retransmit: bool,
        inner_message: Message,
    ):
        self.seq = seq
        self.inner_round = inner_round
        self.retransmit = retransmit
        self.inner_message = inner_message

    def payload_bits(self, wire: WireFormat) -> int:
        return (
            uint_bits(self.seq)
            + wire.round_bits
            + 1
            + self.inner_message.bit_size(wire)
        )

    @property
    def fault_progress(self) -> bool:
        """First transmissions are progress; retransmissions are not."""
        return not self.retransmit

    def with_message(self, inner_message: Message) -> "Envelope":
        """Copy with a substituted inner message (corruption path)."""
        return Envelope(self.seq, self.inner_round, self.retransmit, inner_message)

    def __repr__(self) -> str:
        return "Envelope(seq={}, r={}, retx={}, inner={!r})".format(
            self.seq, self.inner_round, self.retransmit, self.inner_message
        )


class Fence(Message):
    """End-of-logical-round marker: ``count`` data envelopes were sent.

    ``done`` promises that no data follows for any logical round after
    ``inner_round`` (the wrapped node finished its protocol).
    """

    __slots__ = ("seq", "inner_round", "count", "done", "retransmit")

    WIRE_LAYOUT: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("seq", UINT),
        ("inner_round", ROUND),
        ("count", UINT),
        ("done", FLAG),
        ("retransmit", FLAG),
    )

    def __init__(
        self,
        seq: int,
        inner_round: int,
        count: int,
        done: bool,
        retransmit: bool = False,
    ):
        self.seq = seq
        self.inner_round = inner_round
        self.count = count
        self.done = done
        self.retransmit = retransmit

    @property
    def fault_progress(self) -> bool:
        return not self.retransmit

    def __repr__(self) -> str:
        return "Fence(seq={}, r={}, count={}, done={}, retx={})".format(
            self.seq, self.inner_round, self.count, self.done, self.retransmit
        )


class Ack(Message):
    """Cumulative acknowledgement: every seq <= ``upto`` was received."""

    __slots__ = ("upto",)

    WIRE_LAYOUT: ClassVar[Tuple[Tuple[str, str], ...]] = (("upto", UINT),)

    #: Acks are recovery traffic, never progress (see the stall detector).
    fault_progress: ClassVar[bool] = False

    def __init__(self, upto: int):
        self.upto = upto

    def __repr__(self) -> str:
        return "Ack(upto={})".format(self.upto)


class _Pending:
    """One unacknowledged outbound transport frame."""

    __slots__ = ("seq", "kind", "inner_round", "payload", "next_retry", "interval")

    def __init__(self, seq: int, kind: str, inner_round: int, payload):
        self.seq = seq
        #: "data" (payload = inner message) or "fence" (payload = (count, done)).
        self.kind = kind
        self.inner_round = inner_round
        self.payload = payload
        #: None until first transmitted.
        self.next_retry: Optional[int] = None
        self.interval = RETRY_INTERVAL

    def build(self, retransmit: bool) -> Message:
        if self.kind == "data":
            return Envelope(self.seq, self.inner_round, retransmit, self.payload)
        count, done = self.payload
        return Fence(self.seq, self.inner_round, count, done, retransmit)


class _Channel:
    """Per-neighbor transport state (both directions)."""

    __slots__ = (
        "peer",
        "next_seq",
        "pending",
        "frontier",
        "ooo",
        "data",
        "fence_counts",
        "done_round",
        "arrived",
        "retransmissions",
    )

    def __init__(self, peer: int):
        self.peer = peer
        # -- outbound --
        self.next_seq = 0
        #: seq -> _Pending, insertion (= seq) ordered.
        self.pending: Dict[int, _Pending] = {}
        self.retransmissions = 0
        # -- inbound --
        #: highest seq n with every seq <= n received (-1 initially).
        self.frontier = -1
        #: received seqs beyond the contiguous frontier.
        self.ooo: set = set()
        #: inner round -> [(seq, inner message), ...] undelivered data.
        self.data: Dict[int, List[Tuple[int, Message]]] = {}
        #: inner round -> announced data count.
        self.fence_counts: Dict[int, int] = {}
        #: inner round of the peer's done fence (fences every later round).
        self.done_round: Optional[int] = None
        #: transport frames received this physical round (ack trigger).
        self.arrived = False

    # -- inbound ---------------------------------------------------------
    def receive_seq(self, seq: int) -> bool:
        """Register a received seq; False when it is a duplicate."""
        self.arrived = True
        if seq <= self.frontier or seq in self.ooo:
            return False
        if seq == self.frontier + 1:
            self.frontier = seq
            while self.frontier + 1 in self.ooo:
                self.frontier += 1
                self.ooo.discard(self.frontier)
        else:
            self.ooo.add(seq)
        return True

    def fenced(self, inner_round: int) -> bool:
        """Whether the peer's ``inner_round`` is complete (see module doc)."""
        count = self.fence_counts.get(inner_round)
        if count is not None:
            return len(self.data.get(inner_round, ())) == count
        done_round = self.done_round
        return done_round is not None and inner_round > done_round

    # -- outbound --------------------------------------------------------
    def enqueue(self, kind: str, inner_round: int, payload) -> None:
        seq = self.next_seq
        self.next_seq = seq + 1
        self.pending[seq] = _Pending(seq, kind, inner_round, payload)

    def acknowledge(self, upto: int) -> None:
        for seq in [s for s in self.pending if s <= upto]:
            del self.pending[seq]


class ResilientNode(NodeAlgorithm):
    """Transport wrapper running ``inner`` over unreliable channels."""

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        inner: NodeAlgorithm,
    ):
        super().__init__(node_id, neighbors)
        self.inner = inner
        self.channels: Dict[int, _Channel] = {
            peer: _Channel(peer) for peer in self.neighbors
        }
        self._sorted_peers: Tuple[int, ...] = tuple(sorted(self.neighbors))
        #: next logical round to execute.
        self.inner_round = 0
        self._started = False
        self._done_announced = False
        #: logical rounds executed after the inner node finished (these
        #: only consume late inbound data and must produce no sends).
        self.catchup_rounds = 0

    # ------------------------------------------------------------------
    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        round_number = ctx.round_number
        channels = self.channels
        # 1. inbound: dedup, store data/fences, collect acks.
        for sender, message in inbox:
            channel = channels[sender]
            kind = type(message)
            if kind is Ack:
                channel.acknowledge(message.upto)
            elif kind is Envelope:
                if channel.receive_seq(message.seq):
                    channel.data.setdefault(message.inner_round, []).append(
                        (message.seq, message.inner_message)
                    )
            elif kind is Fence:
                if channel.receive_seq(message.seq):
                    channel.fence_counts[message.inner_round] = message.count
                    if message.done and (
                        channel.done_round is None
                        or message.inner_round < channel.done_round
                    ):
                        channel.done_round = message.inner_round
            else:
                raise ProtocolError(
                    "transport received unexpected message {!r}".format(
                        type(message).__name__
                    )
                )
        # 2. advance the logical clock by at most one round.
        if not self._started:
            self._started = True
            self._execute_inner_round(ctx, 0)
        elif self._fences_complete(self.inner_round - 1) and (
            not self.inner.done or self._has_backlog()
        ):
            self._execute_inner_round(ctx, self.inner_round)
        # 3. transmissions: fresh frames, expired retransmissions, acks.
        next_wake: Optional[int] = None
        for peer in self._sorted_peers:
            channel = channels[peer]
            burst = 0
            for pending in channel.pending.values():
                if pending.next_retry is None:
                    ctx.send(peer, pending.build(retransmit=False))
                    pending.next_retry = round_number + pending.interval
                elif pending.next_retry <= round_number:
                    if burst < RETRANSMIT_BURST:
                        burst += 1
                        channel.retransmissions += 1
                        ctx.send(peer, pending.build(retransmit=True))
                        pending.interval = min(
                            pending.interval * 2, RETRY_INTERVAL_CAP
                        )
                    # Unsent expired frames retry next round (the burst
                    # cap keeps the recovery traffic inside the budget).
                    pending.next_retry = round_number + (
                        pending.interval if burst else 1
                    )
                if next_wake is None or pending.next_retry < next_wake:
                    next_wake = pending.next_retry
            if channel.arrived:
                channel.arrived = False
                # Nothing to acknowledge while only out-of-order frames
                # beyond a lost seq 0 have arrived; retransmission will
                # close the gap and the next arrival acks cumulatively.
                if channel.frontier >= 0:
                    ctx.send(peer, Ack(channel.frontier))
        # 4. wake scheduling (event engine): earliest retransmit timer,
        # or the immediately-next round when more backlog is executable.
        if self._fences_complete(self.inner_round - 1) and (
            not self.inner.done or self._has_backlog()
        ):
            if next_wake is None or round_number + 1 < next_wake:
                next_wake = round_number + 1
        if next_wake is not None and next_wake > round_number:
            ctx.wake_at(next_wake)
        # 5. global completion: inner finished, promise announced, every
        # outbound frame acknowledged, no undelivered inbound data.
        self.done = (
            self.inner.done
            and self._done_announced
            and not self._has_backlog()
            and all(not c.pending for c in channels.values())
        )

    # ------------------------------------------------------------------
    def _fences_complete(self, inner_round: int) -> bool:
        if inner_round < 0:
            return True
        return all(
            channel.fenced(inner_round) for channel in self.channels.values()
        )

    def _has_backlog(self) -> bool:
        return any(channel.data for channel in self.channels.values())

    def _execute_inner_round(self, ctx: RoundContext, round_number: int) -> None:
        """Run one logical round of the inner protocol.

        The logical inbox is reassembled in (sender id, seq) order —
        identical to the reliable simulator's sender-sorted, enqueue-
        ordered inboxes, which is what makes the inner execution
        bit-identical to a fault-free run.
        """
        channels = self.channels
        inner_inbox: Inbox = []
        previous = round_number - 1
        for peer in self._sorted_peers:
            entries = channels[peer].data.pop(previous, None)
            if entries:
                entries.sort()
                inner_inbox.extend((peer, message) for _seq, message in entries)
        inner = self.inner
        inner_ctx = RoundContext(self.node_id, round_number, inner.neighbors)
        if round_number == 0:
            inner.on_start(inner_ctx)
        inner.on_round(inner_ctx, inner_inbox)
        # The transport owns physical scheduling; logical wake requests
        # are moot because every logical round executes in order.
        inner_ctx.drain_wakes()
        sends = inner_ctx.drain()
        if self._done_announced:
            self.catchup_rounds += 1
            if sends:
                raise ProtocolError(
                    "node {} sent after announcing done (logical round "
                    "{})".format(self.node_id, round_number)
                )
        counts = dict.fromkeys(self._sorted_peers, 0)
        for target, message in sends:
            channels[target].enqueue("data", round_number, message)
            counts[target] += 1
        if not self._done_announced:
            done = inner.done
            for peer in self._sorted_peers:
                channels[peer].enqueue(
                    "fence", round_number, (counts[peer], done)
                )
            if done:
                self._done_announced = True
        self.inner_round = round_number + 1

    # ------------------------------------------------------------------
    def retransmission_count(self) -> int:
        """Total retransmitted frames across this node's links."""
        return sum(c.retransmissions for c in self.channels.values())

    def __repr__(self) -> str:
        return "ResilientNode(node={}, inner_round={}, done={}, inner={!r})".format(
            self.node_id, self.inner_round, self.done, self.inner
        )


def make_resilient_factory(inner_factory: NodeFactory) -> NodeFactory:
    """Wrap a node factory so every node runs behind the transport."""

    def factory(node_id: int, neighbors: Tuple[int, ...]) -> ResilientNode:
        return ResilientNode(node_id, neighbors, inner_factory(node_id, neighbors))

    return factory


def unwrap_node(node: NodeAlgorithm) -> NodeAlgorithm:
    """The protocol node behind a transport wrapper (identity otherwise)."""
    inner = getattr(node, "inner", None)
    return inner if isinstance(inner, NodeAlgorithm) else node
