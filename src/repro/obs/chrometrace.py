"""Chrome trace-event export of a run's telemetry rows.

Converts a repro-metrics-v1 row list (live-streamed or post-hoc, see
:mod:`repro.obs.schema`) into the Chrome trace-event JSON format that
``chrome://tracing``, Perfetto (ui.perfetto.dev) and ``about:tracing``
load directly — turning a run's phase spans, profiler sections and
monitor verdicts into a zoomable flame view instead of a table.

Mapping:

* ``phase`` rows — complete ("X") events on the *protocol phases*
  track, wall-clock aligned, with round numbers in ``args``;
* ``profile`` rows — complete events on the *profiler* track, laid
  end-to-end (the profiler records aggregate seconds per section, not
  timestamps, so relative widths are meaningful and offsets are not);
* ``monitor`` rows — instant ("i") events, pass/fail in ``args``;
* ``progress`` rows — a counter ("C") track charting percent-complete;
* the ``meta`` header — process/thread naming metadata ("M") events.

Timestamps are microseconds as the format requires; the earliest phase
start is time zero.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 1
_TID_PHASES = 1
_TID_PROFILE = 2
_TID_MONITORS = 3


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 1)


def chrome_trace(rows: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Build the Chrome trace-event payload from telemetry rows."""
    rows = list(rows)
    meta = next((r for r in rows if r.get("event") == "meta"), {})
    phase_rows = [r for r in rows if r.get("event") == "phase"]
    origin = min(
        (r["start_wall"] for r in phase_rows if "start_wall" in r),
        default=0.0,
    )
    events: List[Dict[str, Any]] = []
    process_name = "repro {} ({})".format(
        meta.get("graph", "run"), meta.get("engine", "?")
    )
    events.append(
        {
            "ph": "M", "pid": _PID, "tid": _TID_PHASES,
            "name": "process_name", "args": {"name": process_name},
        }
    )
    for tid, name in (
        (_TID_PHASES, "protocol phases"),
        (_TID_PROFILE, "profiler sections"),
        (_TID_MONITORS, "monitors"),
    ):
        events.append(
            {
                "ph": "M", "pid": _PID, "tid": tid,
                "name": "thread_name", "args": {"name": name},
            }
        )
    last_end = 0.0
    for row in phase_rows:
        start = row.get("start_wall")
        if start is None:
            continue
        duration = row.get("wall_seconds") or 0.0
        end_us = _us(start - origin + duration)
        last_end = max(last_end, end_us)
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": _TID_PHASES,
                "name": row.get("name", "phase"),
                "ts": _us(start - origin),
                "dur": _us(duration),
                "args": {
                    "start_round": row.get("start_round"),
                    "end_round": row.get("end_round"),
                    "rounds": row.get("rounds"),
                },
            }
        )
    cursor = 0.0
    for row in rows:
        if row.get("event") != "profile":
            continue
        duration = _us(row.get("seconds") or 0.0)
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": _TID_PROFILE,
                "name": row.get("section", "section"),
                "ts": cursor,
                "dur": duration,
                "args": {"calls": row.get("calls")},
            }
        )
        cursor += duration
    for row in rows:
        if row.get("event") != "monitor":
            continue
        events.append(
            {
                "ph": "i",
                "pid": _PID,
                "tid": _TID_MONITORS,
                "name": "{}: {}".format(
                    row.get("monitor"), row.get("status")
                ),
                "ts": last_end,
                "s": "t",
                "args": {
                    "status": row.get("status"),
                    "violations": row.get("violation_count"),
                },
            }
        )
    for row in rows:
        if row.get("event") != "progress" or "percent" not in row:
            continue
        # No wall timestamp on heartbeat rows; chart against rounds so
        # the counter track still shows the trajectory shape.
        events.append(
            {
                "ph": "C",
                "pid": _PID,
                "name": "progress",
                "ts": float(row.get("round", 0)),
                "args": {"percent": row["percent"]},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(rows: Iterable[Dict[str, Any]], path) -> int:
    """Write the export to ``path``; returns the event count."""
    payload = chrome_trace(rows)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])
