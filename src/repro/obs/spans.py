"""Phase spans: protocol-state-derived execution phases of a run.

The distributed BC protocol moves through globally ordered phases —
spanning-tree build and census, the pipelined counting phase, the
AggStart (diameter) broadcast, and the scheduled aggregation.  A
:class:`PhaseTracker` records those boundaries as contiguous
:class:`PhaseSpan` rows carrying both the *protocol* timestamp (the
round at which the boundary provably occurs, taken from protocol state
like ``census_round`` or the AggStart ``base`` — never guessed from
traffic) and a wall-clock stamp of when the mark was emitted.

Round boundaries are half-open: a span covers rounds
``[start_round, end_round)``; consecutive spans share their boundary
round.  Wall-clock stamps are taken when the owning state machine
crosses the transition, which may lag the protocol round by a step
under the event engine — they order phases and size their real cost,
while the round numbers are the exact protocol truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class PhaseSpan:
    """One contiguous phase of a run.

    ``end_round`` / ``end_wall`` are ``None`` while the span is open.
    """

    name: str
    start_round: int
    start_wall: float
    end_round: Optional[int] = None
    end_wall: Optional[float] = None

    @property
    def rounds(self) -> Optional[int]:
        """Number of rounds covered (None while open)."""
        if self.end_round is None:
            return None
        return self.end_round - self.start_round

    @property
    def wall_seconds(self) -> Optional[float]:
        """Wall-clock duration between the boundary marks (None while open)."""
        if self.end_wall is None:
            return None
        return self.end_wall - self.start_wall

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start_round": self.start_round,
            "end_round": self.end_round,
            "rounds": self.rounds,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "wall_seconds": self.wall_seconds,
        }


class PhaseTracker:
    """Collects the ordered, contiguous phase spans of one run."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._spans: List[PhaseSpan] = []

    # ------------------------------------------------------------------
    def begin(self, name: str, round_number: int) -> PhaseSpan:
        """Open a new phase at ``round_number``, closing any open one.

        Boundaries must be non-decreasing; a phase may legitimately span
        zero rounds (e.g. a broadcast that the protocol folds into the
        same round as the next phase's start).
        """
        now = self._clock()
        current = self._open_span()
        if current is not None:
            if round_number < current.start_round:
                raise ValueError(
                    "phase {!r} cannot begin at round {} before open phase "
                    "{!r} started (round {})".format(
                        name, round_number, current.name, current.start_round
                    )
                )
            current.end_round = round_number
            current.end_wall = now
        span = PhaseSpan(name, round_number, now)
        self._spans.append(span)
        return span

    def end(self, round_number: int) -> Optional[PhaseSpan]:
        """Close the open span at ``round_number``; no-op if none is open."""
        current = self._open_span()
        if current is None:
            return None
        current.end_round = max(round_number, current.start_round)
        current.end_wall = self._clock()
        return current

    def _open_span(self) -> Optional[PhaseSpan]:
        if self._spans and self._spans[-1].end_round is None:
            return self._spans[-1]
        return None

    # ------------------------------------------------------------------
    @property
    def active(self) -> Optional[str]:
        """Name of the open phase, if any."""
        span = self._open_span()
        return span.name if span is not None else None

    def spans(self) -> Tuple[PhaseSpan, ...]:
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def get(self, name: str) -> Optional[PhaseSpan]:
        """The first span named ``name``, or None."""
        for span in self._spans:
            if span.name == name:
                return span
        return None

    def rounds_by_phase(self) -> "dict[str, int]":
        """``phase name -> rounds covered`` for all closed spans."""
        out = {}
        for span in self._spans:
            if span.rounds is not None:
                out[span.name] = out.get(span.name, 0) + span.rounds
        return out

    def table_rows(self) -> List[List[object]]:
        """Rows for an aligned report table (see ``repro report``)."""
        rows = []
        for span in self._spans:
            rows.append(
                [
                    span.name,
                    span.start_round,
                    "open" if span.end_round is None else span.end_round,
                    "-" if span.rounds is None else span.rounds,
                    "-"
                    if span.wall_seconds is None
                    else round(span.wall_seconds * 1000.0, 3),
                ]
            )
        return rows

    def __repr__(self) -> str:
        return "PhaseTracker({})".format(
            ", ".join(span.name for span in self._spans) or "empty"
        )
