"""Streaming telemetry: the bus, live JSONL sinks, progress estimation.

PR 2's :class:`~repro.obs.telemetry.Telemetry` is strictly post-hoc: it
buffers everything and yields a JSONL only after the run ends.  This
module adds the *incremental* side:

* :class:`TelemetryBus` — a tiny fan-out hub the telemetry facade
  publishes rows to as they happen.  Consumers attach either a bounded
  ring-buffer :class:`BusSubscriber` (in-process, drop-oldest under
  pressure) or a sink callback; :meth:`TelemetryBus.attach_jsonl` wires
  a :class:`JsonlStreamWriter` that flushes every row, so a crashed or
  chaos-killed run leaves a usable partial log behind.
* :class:`ProgressEstimator` — percent-complete and ETA from the
  protocol's *closed-form* round schedule
  (:func:`repro.core.schedule.expected_phase_schedule`, the same numbers
  the bulk engine plans with).  The synchronous protocol is
  round-deterministic, so inside the stock envelope the prediction is
  exact: the estimator reaches 100% precisely at termination.
* :class:`ConsoleProgress` — a bus sink rendering a live one-line
  progress display (the CLI ``--progress`` flag).

The streamed **core rows** (``meta``, ``phase``, ``metric``,
``monitor``, ``profile``) are exactly the rows
:meth:`Telemetry.events` exports after the run; streaming adds
``progress`` heartbeat rows on top.  Nothing here touches the
simulator's zero-cost fast paths: a telemetry without a bus or
estimator reports ``wants_ticks == False`` and the engines never call
the tick hook, and streaming never flips ``wants_sends`` /
``wants_rounds`` (so the bulk engine keeps its closed-form path).
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import ReproError

__all__ = [
    "BusSubscriber",
    "ConsoleProgress",
    "JsonlStreamWriter",
    "ProgressEstimator",
    "TelemetryBus",
    "schedule_for_simulator",
]

#: Default ring-buffer capacity of a subscriber.
DEFAULT_SUBSCRIBER_CAPACITY = 4096

#: Round heartbeats aim for this many progress rows per run when the
#: schedule is known; unknown-schedule runs tick every fallback interval.
PROGRESS_ROWS_PER_RUN = 100
FALLBACK_TICK_INTERVAL = 64


class BusSubscriber:
    """A bounded ring-buffer view of a :class:`TelemetryBus`.

    Rows beyond ``capacity`` drop the oldest entry (``dropped`` counts
    them); a live dashboard wants the newest rows, not backpressure on
    the simulator.
    """

    def __init__(self, capacity: int = DEFAULT_SUBSCRIBER_CAPACITY):
        self._rows: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self.capacity = capacity
        self.seen = 0
        self.dropped = 0

    def push(self, row: Dict[str, Any]) -> None:
        self.seen += 1
        if len(self._rows) == self.capacity:
            self.dropped += 1
        self._rows.append(row)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return every buffered row, oldest first."""
        out = list(self._rows)
        self._rows.clear()
        return out

    def peek(self) -> List[Dict[str, Any]]:
        """The buffered rows without consuming them."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class JsonlStreamWriter:
    """Appends one JSON line per published row, flushed immediately.

    The flush-per-row discipline is the point: a run killed mid-flight
    (chaos, OOM, ^C) leaves every completed row on disk, and at worst
    one torn tail line — which the partial-log readers skip.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self.rows_written = 0

    def __call__(self, row: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(row) + "\n")
        self._fh.flush()
        self.rows_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlStreamWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class TelemetryBus:
    """Fan-out hub between one run's telemetry and any number of consumers.

    Publishing is synchronous and in-order (the simulator thread calls
    straight through), so a subscriber's view is always a prefix-window
    of the final event list.  A sink that raises poisons the run —
    sinks are trusted code (file writers, renderers), not plugins.
    """

    def __init__(self):
        self._subscribers: List[BusSubscriber] = []
        self._sinks: List[Callable[[Dict[str, Any]], None]] = []
        self._writers: List[JsonlStreamWriter] = []
        self.published = 0

    def subscribe(
        self, capacity: int = DEFAULT_SUBSCRIBER_CAPACITY
    ) -> BusSubscriber:
        subscriber = BusSubscriber(capacity)
        self._subscribers.append(subscriber)
        return subscriber

    def attach_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Attach a callback invoked with every published row."""
        self._sinks.append(sink)

    def attach_jsonl(self, path) -> JsonlStreamWriter:
        """Stream every published row to ``path`` as flushed JSON Lines."""
        writer = JsonlStreamWriter(path)
        self._writers.append(writer)
        self._sinks.append(writer)
        return writer

    def publish(self, row: Dict[str, Any]) -> None:
        self.published += 1
        for subscriber in self._subscribers:
            subscriber.push(row)
        for sink in self._sinks:
            sink(row)

    def close(self) -> None:
        """Close attached JSONL writers (subscribers keep their rows)."""
        for writer in self._writers:
            writer.close()

    def __enter__(self) -> "TelemetryBus":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def schedule_for_simulator(simulator):
    """The run's exact :class:`~repro.core.schedule.PhaseSchedule`, or None.

    The closed-form schedule holds inside a protocol envelope — every
    node the exact class the run's registered protocol declares, one
    shared config and one root, no fault injection, a connected graph.
    Protocols publish their round-boundary oracle via
    ``Protocol.schedule``; a protocol without one (or an unregistered
    node algorithm) simply runs without a total, reporting rounds
    instead of percentages.  (Unlike the bulk engine's probe this needs
    neither numpy nor L-float arithmetic: round boundaries depend only
    on topology and sources.)
    """
    from repro.core.node import BetweennessNode

    if simulator.faults is not None:
        return None
    protocol = getattr(simulator, "protocol", None)
    if protocol is not None and protocol.schedule is None:
        return None
    expected_class = (
        protocol.node_class if protocol is not None else BetweennessNode
    )
    nodes = simulator.nodes
    if len(nodes) < 2:
        return None
    config = None
    root = None
    roots = 0
    for node in nodes:
        if type(node) is not expected_class:
            return None
        if config is None:
            config = node.config
        elif node.config is not config:
            return None
        if node.tree.is_root:
            roots += 1
            root = node.node_id
    if roots != 1 or config is None:
        return None
    n = simulator.graph.num_nodes
    if config.sources is not None and any(
        not 0 <= s < n for s in config.sources
    ):
        return None
    if protocol is not None:
        oracle = protocol.schedule
    else:
        from repro.core.schedule import expected_phase_schedule

        oracle = expected_phase_schedule
    try:
        return oracle(
            simulator.graph,
            root=root,
            sources=config.sources,
            aggregate=config.aggregate,
        )
    except ReproError:
        return None


class ProgressEstimator:
    """Percent-complete and ETA from the closed-form phase schedule.

    Bind a schedule explicitly, or let :meth:`bind` probe the simulator
    at run start (the telemetry facade calls it from ``on_run_start``).
    Without a schedule the estimator still emits heartbeat rows — round
    and phase, no percentage.
    """

    def __init__(self, schedule=None, clock=time.perf_counter):
        self.schedule = schedule
        self._clock = clock
        self._started: Optional[float] = None
        self.current_round = 0
        self.finished = False
        self._phase: Optional[str] = None

    # ------------------------------------------------------------------
    def bind(self, simulator) -> None:
        """Called at run start: derive the schedule if worthwhile.

        The bulk engine executes the whole run as one closed-form array
        program — there is no round loop, so no heartbeat would ever
        consume the schedule, and deriving it (an O(N·E) pure-Python
        sweep) would tax exactly the engine chosen for speed.  Bulk
        runs therefore skip straight to the terminal 100% row.
        """
        if (
            self.schedule is None
            and getattr(simulator, "engine", None) != "bulk"
        ):
            self.schedule = schedule_for_simulator(simulator)
        self._started = self._clock()

    def suggest_interval(self) -> int:
        """Rounds between heartbeat rows (~100 per run when predictable)."""
        if self.schedule is None:
            return FALLBACK_TICK_INTERVAL
        return max(1, self.schedule.total_rounds // PROGRESS_ROWS_PER_RUN)

    def note_phase(self, name: str) -> None:
        self._phase = name

    # ------------------------------------------------------------------
    @property
    def fraction(self) -> Optional[float]:
        """Completed fraction in [0, 1], or None without a schedule."""
        if self.finished:
            return 1.0 if self.schedule is not None else None
        if self.schedule is None:
            return None
        return self.schedule.fraction(self.current_round)

    def eta_seconds(self) -> Optional[float]:
        """Predicted remaining wall time (None when unknowable yet)."""
        fraction = self.fraction
        if fraction is None or self._started is None or fraction <= 0.0:
            return None
        elapsed = self._clock() - self._started
        if fraction >= 1.0:
            return 0.0
        return elapsed * (1.0 - fraction) / fraction

    def row(self, round_number: int) -> Dict[str, Any]:
        """One ``progress`` heartbeat row for the stream."""
        self.current_round = round_number
        schedule = self.schedule
        row: Dict[str, Any] = {
            "event": "progress",
            "round": round_number,
        }
        if schedule is not None:
            row["rounds_total"] = schedule.total_rounds
            row["percent"] = round(100.0 * schedule.fraction(round_number), 2)
            row["phase"] = self._phase or schedule.phase_at(round_number)
            eta = self.eta_seconds()
            if eta is not None:
                row["eta_seconds"] = round(eta, 3)
        elif self._phase is not None:
            row["phase"] = self._phase
        return row

    def finish(self, total_rounds: int) -> Dict[str, Any]:
        """The terminal progress row; pins the estimate to 100%."""
        self.current_round = total_rounds
        self.finished = True
        row: Dict[str, Any] = {
            "event": "progress",
            "round": total_rounds,
            "final": True,
        }
        if self.schedule is not None:
            row["rounds_total"] = self.schedule.total_rounds
            row["percent"] = round(
                100.0 * self.schedule.fraction(total_rounds), 2
            )
            row["exact"] = total_rounds == self.schedule.total_rounds
        else:
            # No schedule (unpredictable run, or a bulk run that never
            # heartbeats) — the run ending IS 100%, just not "exact".
            row["percent"] = 100.0
        if self._phase is not None:
            row["phase"] = self._phase
        return row


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    minutes, secs = divmod(seconds, 60)
    if minutes >= 60:
        hours, minutes = divmod(minutes, 60)
        return "{}:{:02d}:{:02d}".format(hours, minutes, secs)
    return "{}:{:02d}".format(minutes, secs)


class ConsoleProgress:
    """Bus sink rendering ``progress`` rows as a live one-line display.

    Writes carriage-return-refreshed lines to ``stream`` (stderr by
    default, keeping stdout parseable) and a final newline when the run
    completes.  Non-progress rows are ignored.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self._dirty = False

    def __call__(self, row: Dict[str, Any]) -> None:
        if row.get("event") != "progress":
            return
        parts = []
        percent = row.get("percent")
        if percent is not None:
            parts.append("{:6.2f}%".format(percent))
        phase = row.get("phase")
        if phase:
            parts.append(phase)
        total = row.get("rounds_total")
        if total is not None:
            parts.append("round {}/{}".format(row.get("round", 0), total))
        else:
            parts.append("round {}".format(row.get("round", 0)))
        eta = row.get("eta_seconds")
        if eta is not None and not row.get("final"):
            parts.append("eta {}".format(_format_eta(eta)))
        line = "  ".join(str(p) for p in parts)
        self.stream.write("\r" + line.ljust(64))
        if row.get("final"):
            self.stream.write("\n")
            self._dirty = False
        else:
            self._dirty = True
        self.stream.flush()

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
