"""Trace-diff forensics: locate the first divergence between two runs.

The simulator steps nodes in id order inside synchronous rounds, so a
run is fully deterministic: two traces of the same (graph, config,
engine-equivalent) run are byte-for-byte identical delivery streams.
That determinism turns "these two runs disagree" from a debugging
nightmare into a comparison problem — walk both streams in order and
the **first** mismatching delivery is where the executions forked;
everything after it is cascade.

:func:`first_divergence` finds that point and classifies it (stream
length, round, edge, message type, bits, or — for payload-capturing
tracers — the exact decoded frame *field* that differs, decoded through
:func:`repro.wire.decode_frame`).  :func:`round_frame_diff` renders the
divergent round as an aligned per-edge frame table, the CONGEST-level
view of what was on each wire.  :func:`diff_report` combines both into
the text the ``repro trace diff`` CLI prints.

Typical uses: corrupt one trace file and pinpoint the flipped field;
diff a sweep-engine trace against an event-engine trace to prove
equivalence (empty diff); diff before/after a protocol change to see
exactly which message the change first altered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import WireCodecError
from repro.wire import decode_frame

__all__ = [
    "Divergence",
    "diff_report",
    "first_divergence",
    "round_frame_diff",
]

#: Delivery attributes compared positionally, in blame order: a round
#: skew explains an edge skew, an edge skew explains a type skew...
_META_FIELDS = ("round_number", "sender", "receiver", "message_type", "bits")


@dataclass(frozen=True)
class Divergence:
    """The first point where two traces disagree.

    ``kind`` is one of ``length`` (one stream ended early), a metadata
    field name from the delivery tuple (``round_number``, ``sender``,
    ``receiver``, ``message_type``, ``bits``), or ``payload`` (same
    metadata, different encoded frame).  For payload divergences with
    decodable frames, ``field`` names the first differing message field
    and ``value_a`` / ``value_b`` hold its two decoded values;
    otherwise they hold the raw frame words.
    """

    index: int
    round_number: int
    kind: str
    sender: Optional[int] = None
    receiver: Optional[int] = None
    message_type: Optional[str] = None
    field: Optional[str] = None
    value_a: Any = None
    value_b: Any = None

    def describe(self) -> str:
        if self.kind == "length":
            return (
                "delivery #{}: trace {} ends here (the other continues "
                "in round {})".format(
                    self.index,
                    "A" if self.value_a is None else "B",
                    self.round_number,
                )
            )
        edge = (
            "edge {}->{}".format(self.sender, self.receiver)
            if self.sender is not None
            else "unknown edge"
        )
        if self.kind == "payload":
            if self.field is not None:
                return (
                    "delivery #{} (round {}, {}, {}): field {!r} "
                    "differs: {!r} vs {!r}".format(
                        self.index,
                        self.round_number,
                        edge,
                        self.message_type,
                        self.field,
                        self.value_a,
                        self.value_b,
                    )
                )
            return (
                "delivery #{} (round {}, {}, {}): encoded frames differ "
                "(words {:#x} vs {:#x}; no decoder for the fields)".format(
                    self.index,
                    self.round_number,
                    edge,
                    self.message_type,
                    self.value_a,
                    self.value_b,
                )
            )
        return "delivery #{} (round {}, {}): {} differs: {!r} vs {!r}".format(
            self.index, self.round_number, edge, self.kind,
            self.value_a, self.value_b,
        )


def _resolve_arith(arithmetic, wire):
    """Accept an arithmetic mode string, a context object, or None."""
    if arithmetic is None or wire is None:
        return arithmetic
    if isinstance(arithmetic, str):
        from repro.arithmetic.context import make_context

        return make_context(arithmetic, wire.num_nodes)
    return arithmetic


def _decode_one(event, wire, arith):
    """Decode a captured frame word to its message, or None."""
    if event.word is None or wire is None:
        return None
    try:
        messages = decode_frame(event.word, event.bits, wire, arith)
    except WireCodecError:
        return None
    return messages[0] if len(messages) == 1 else messages


def _payload_divergence(index, a, b, wire, arith) -> Divergence:
    """Classify a word mismatch down to the decoded field if possible."""
    common = dict(
        index=index,
        round_number=a.round_number,
        kind="payload",
        sender=a.sender,
        receiver=a.receiver,
        message_type=a.message_type,
    )
    msg_a = _decode_one(a, wire, arith)
    msg_b = _decode_one(b, wire, arith)
    if msg_a is not None and msg_b is not None and type(msg_a) is type(msg_b):
        layout = getattr(type(msg_a), "WIRE_LAYOUT", None) or ()
        for name, _kind in layout:
            va, vb = getattr(msg_a, name), getattr(msg_b, name)
            if va != vb:
                return Divergence(
                    field=name, value_a=va, value_b=vb, **common
                )
    return Divergence(value_a=a.word, value_b=b.word, **common)


def first_divergence(
    trace_a, trace_b, arithmetic=None
) -> Optional[Divergence]:
    """The first delivery where two traces disagree, or None.

    ``arithmetic`` (mode string or context) enables decoding of
    SIGMA/PSI-carrying frames; without it those payload divergences
    degrade to raw word comparisons.  The wire format comes from the
    traces themselves (payload-capturing tracers serialize it).
    """
    events_a = trace_a.deliveries()
    events_b = trace_b.deliveries()
    wire = trace_a.wire if trace_a.wire is not None else trace_b.wire
    arith = _resolve_arith(arithmetic, wire)
    for index, (a, b) in enumerate(zip(events_a, events_b)):
        for name in _META_FIELDS:
            va, vb = getattr(a, name), getattr(b, name)
            if va != vb:
                return Divergence(
                    index=index,
                    round_number=min(a.round_number, b.round_number),
                    kind=name,
                    sender=a.sender if name not in ("sender",) else None,
                    receiver=a.receiver if name not in ("receiver",) else None,
                    message_type=a.message_type,
                    value_a=va,
                    value_b=vb,
                )
        if a.word is not None and b.word is not None and a.word != b.word:
            return _payload_divergence(index, a, b, wire, arith)
    if len(events_a) != len(events_b):
        index = min(len(events_a), len(events_b))
        longer = events_a if len(events_a) > len(events_b) else events_b
        return Divergence(
            index=index,
            round_number=longer[index].round_number,
            kind="length",
            value_a=None if len(events_a) < len(events_b) else len(events_a),
            value_b=None if len(events_b) < len(events_a) else len(events_b),
        )
    return None


def round_frame_diff(
    trace_a, trace_b, round_number: int, arithmetic=None
) -> List[Dict[str, Any]]:
    """Aligned per-edge frame view of one round across two traces.

    Returns one record per edge active in either trace during
    ``round_number``: ``{"edge": (s, r), "a": frame, "b": frame,
    "same": bool}`` where each frame is ``{"messages": n, "bits": n,
    "decoded": [...]}`` (decoded only for payload-capturing traces).
    Edges are ordered by (sender, receiver) — the deterministic send
    order — so the table reads like the round's wire activity.
    """
    wire = trace_a.wire if trace_a.wire is not None else trace_b.wire
    arith = _resolve_arith(arithmetic, wire)

    def frames_of(trace):
        out: Dict[Tuple[int, int], Dict[str, Any]] = {}
        for event in trace.deliveries():
            if event.round_number != round_number:
                continue
            frame = out.setdefault(
                (event.sender, event.receiver),
                {"messages": 0, "bits": 0, "decoded": [], "words": []},
            )
            frame["messages"] += 1
            frame["bits"] += event.bits
            frame["words"].append(event.word)
            decoded = _decode_one(event, wire, arith)
            frame["decoded"].append(
                repr(decoded) if decoded is not None else event.message_type
            )
        return out

    frames_a = frames_of(trace_a)
    frames_b = frames_of(trace_b)
    rows: List[Dict[str, Any]] = []
    for edge in sorted(set(frames_a) | set(frames_b)):
        fa, fb = frames_a.get(edge), frames_b.get(edge)
        same = (
            fa is not None
            and fb is not None
            and fa["bits"] == fb["bits"]
            and fa["words"] == fb["words"]
            and fa["decoded"] == fb["decoded"]
        )
        rows.append({"edge": edge, "a": fa, "b": fb, "same": same})
    return rows


def _frame_cell(frame: Optional[Dict[str, Any]]) -> str:
    if frame is None:
        return "(silent)"
    return "{} msg / {} bits: {}".format(
        frame["messages"], frame["bits"], "; ".join(frame["decoded"])
    )


def diff_report(
    trace_a,
    trace_b,
    arithmetic=None,
    label_a: str = "A",
    label_b: str = "B",
    context: int = 3,
) -> str:
    """Human-readable divergence report for ``repro trace diff``.

    Identical traces report as such; otherwise the report names the
    first divergent delivery (down to the decoded field when payloads
    were captured), shows the last ``context`` agreeing deliveries, and
    renders the divergent round as an aligned per-edge frame table.
    """
    divergence = first_divergence(trace_a, trace_b, arithmetic=arithmetic)
    count_a, count_b = len(trace_a.deliveries()), len(trace_b.deliveries())
    lines = [
        "trace {}: {} deliveries{}".format(
            label_a, count_a, " (truncated)" if trace_a.truncated else ""
        ),
        "trace {}: {} deliveries{}".format(
            label_b, count_b, " (truncated)" if trace_b.truncated else ""
        ),
    ]
    if divergence is None:
        lines.append("traces are identical")
        return "\n".join(lines)
    lines.append("")
    lines.append("FIRST DIVERGENCE: " + divergence.describe())
    shared = trace_a.deliveries()[: divergence.index]
    if shared and context > 0:
        lines.append("")
        lines.append("last {} agreeing deliveries:".format(
            min(context, len(shared))
        ))
        for event in shared[-context:]:
            lines.append(
                "  round {:>4}  {:>3} -> {:<3}  {:<14} {} bits".format(
                    event.round_number,
                    event.sender,
                    event.receiver,
                    event.message_type,
                    event.bits,
                )
            )
    lines.append("")
    lines.append(
        "round {} per-edge frames ({} | {}):".format(
            divergence.round_number, label_a, label_b
        )
    )
    for row in round_frame_diff(
        trace_a, trace_b, divergence.round_number, arithmetic=arithmetic
    ):
        marker = "  " if row["same"] else "* "
        lines.append(
            "{}edge {:>3} -> {:<3}  {}  |  {}".format(
                marker,
                row["edge"][0],
                row["edge"][1],
                _frame_cell(row["a"]),
                _frame_cell(row["b"]),
            )
        )
    return "\n".join(lines)
