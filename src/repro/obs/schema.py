"""Schema validation and partial-log loading for repro-metrics-v1 JSONL.

One run's telemetry export (:meth:`repro.obs.Telemetry.to_jsonl`, the
``--metrics-out`` flag, or a live :class:`~repro.obs.stream.TelemetryBus`
JSONL sink) is a sequence of JSON objects, one per line, with an
``event`` discriminator.  This module is the single place that knows
the row contract; tests, the run-history ingester and the
``scripts/validate_telemetry.py`` CLI all validate through it.

Versioning rule (documented in docs/observability.md): the schema name
(``repro-metrics-v1``) bumps its suffix **only on breaking changes** —
removing a key, renaming a key, or changing a key's type.  Adding new
*optional* keys (or whole new event kinds guarded behind options, like
the streaming ``progress`` rows) is backward compatible and does not
bump the version; consumers must ignore keys and stream-only event
kinds they do not know.

Partial logs are first-class: a crashed or chaos-killed run streaming
through :class:`~repro.obs.stream.JsonlStreamWriter` leaves complete
rows plus at most one torn (half-written) tail line.
:func:`load_jsonl_rows` skips such a tail with a warning instead of
raising, so ``repro report --from`` and ``repro watch`` can read the
wreckage.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import METRICS_SCHEMA

__all__ = [
    "CORE_EVENTS",
    "STREAM_EVENTS",
    "load_jsonl_rows",
    "validate_rows",
    "validate_jsonl_text",
]

#: Event kinds of the post-hoc export (exactly what ``events()`` emits).
CORE_EVENTS = ("meta", "phase", "metric", "monitor", "profile")

#: Extra kinds a live stream may interleave.
STREAM_EVENTS = CORE_EVENTS + ("progress",)

#: Required keys per event kind (value type checked where unambiguous).
_REQUIRED: Dict[str, Dict[str, type]] = {
    "meta": {
        "schema": str,
        "graph": str,
        "num_nodes": int,
        "num_edges": int,
        "engine": str,
        "bit_budget": int,
    },
    "phase": {"name": str, "start_round": int},
    "metric": {"name": str, "kind": str},
    "monitor": {"monitor": str, "status": str},
    "profile": {"section": str},
    "progress": {"round": int},
}


def validate_rows(
    rows: Sequence[Dict[str, Any]], stream: bool = False
) -> List[str]:
    """Check rows against the repro-metrics-v1 contract.

    Returns a list of human-readable problems (empty = valid).
    ``stream=True`` additionally admits the streaming-only event kinds;
    unknown keys never fail (forward compatibility), unknown event
    kinds always do.
    """
    problems: List[str] = []
    allowed = STREAM_EVENTS if stream else CORE_EVENTS
    if not rows:
        return ["empty export: expected at least the meta header row"]
    head = rows[0]
    if head.get("event") != "meta":
        problems.append(
            "row 0: first row must be the meta header, got event={!r}".format(
                head.get("event")
            )
        )
    elif head.get("schema") != METRICS_SCHEMA:
        problems.append(
            "row 0: schema {!r} is not {!r} (unknown or future version; "
            "the suffix only bumps on breaking changes)".format(
                head.get("schema"), METRICS_SCHEMA
            )
        )
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append("row {}: not a JSON object".format(index))
            continue
        kind = row.get("event")
        if kind not in allowed:
            problems.append(
                "row {}: unknown event kind {!r} (expected one of {})".format(
                    index, kind, ", ".join(allowed)
                )
            )
            continue
        if index > 0 and kind == "meta":
            problems.append(
                "row {}: duplicate meta header (one run per export)".format(
                    index
                )
            )
        for key, expected_type in _REQUIRED[kind].items():
            if key not in row:
                problems.append(
                    "row {}: {} row missing required key {!r}".format(
                        index, kind, key
                    )
                )
            elif expected_type is int:
                # bool is an int subclass; exclude it explicitly.
                value = row[key]
                if isinstance(value, bool) or not isinstance(value, int):
                    problems.append(
                        "row {}: {}.{} should be an integer, got {!r}".format(
                            index, kind, key, value
                        )
                    )
            elif not isinstance(row[key], expected_type):
                problems.append(
                    "row {}: {}.{} should be {}, got {!r}".format(
                        index, kind, key, expected_type.__name__, row[key]
                    )
                )
    return problems


def validate_jsonl_text(
    text: str, stream: bool = False
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Parse and validate JSONL text; returns ``(rows, problems)``.

    Unlike :func:`load_jsonl_rows` this is strict: every line must
    parse (no torn-tail tolerance) — it is the validator's entry point,
    not the forensic reader's.
    """
    rows: List[Dict[str, Any]] = []
    problems: List[str] = []
    for index, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except ValueError:
            problems.append(
                "line {}: not valid JSON: {!r}".format(
                    index + 1, line[:60]
                )
            )
    problems.extend(validate_rows(rows, stream=stream))
    return rows, problems


def load_jsonl_rows(
    path, allow_partial: bool = True
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Read a (possibly truncated) telemetry JSONL file.

    Returns ``(rows, warnings)``.  A torn tail line — the signature of
    a run killed mid-write — is skipped with a warning.  A malformed
    line anywhere *before* the tail means the file is not a telemetry
    log at all and raises ``ValueError``; with ``allow_partial=False``
    even the torn tail raises.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    rows: List[Dict[str, Any]] = []
    warnings: List[str] = []
    last_index = len(lines) - 1
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except ValueError:
            if not allow_partial or index != last_index:
                raise ValueError(
                    "{}: line {} is not valid JSON: {!r}".format(
                        path, index + 1, line[:60]
                    )
                )
            warnings.append(
                "skipped torn tail line {} ({} bytes) — the run likely "
                "died mid-write; all {} complete rows were kept".format(
                    index + 1, len(line), len(rows)
                )
            )
    return rows, warnings


def meta_row(rows: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The meta header of a row list, or None."""
    for row in rows:
        if row.get("event") == "meta":
            return row
    return None
