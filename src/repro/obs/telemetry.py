"""The telemetry facade: one object wiring a run's observability.

A :class:`Telemetry` instance bundles the four observability concerns —
a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.spans.PhaseTracker`, a list of
:class:`~repro.obs.monitors.Monitor` instances, and an optional
:class:`~repro.obs.profiler.Profiler` — behind the narrow hook surface
the simulator and pipeline drive:

* the **simulator** calls :meth:`on_run_start`, :meth:`on_send` (only
  if a monitor wants sends), :meth:`on_round_end` (with the round's
  per-edge accounting) and :meth:`on_run_end`;
* the **protocol** (the root :class:`~repro.core.node.BetweennessNode`)
  calls :meth:`phase_begin` / :meth:`phase_end` at protocol-state
  transitions;
* the **pipeline** calls :meth:`finalize_run` with the collected
  result so post-run monitors (the Theorem 1 error check) can judge.

One instance observes one run — build a fresh one per run.  Everything
is duck-typed from the caller's side: neither the simulator nor the
pipeline imports this module, so ``telemetry=None`` (the default
everywhere) costs a handful of identity checks per run.

Export: :meth:`events` yields structured rows (one header, then one
row per phase span, metric, monitor verdict and profile section);
:meth:`write_jsonl` streams them as JSON Lines for external tooling.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import Monitor, MonitorVerdict, default_monitors
from repro.obs.profiler import Profiler
from repro.obs.spans import PhaseTracker

#: Schema marker stamped on the JSONL header row.
METRICS_SCHEMA = "repro-metrics-v1"


class Telemetry:
    """Per-run observability bundle (see the module docstring).

    Parameters
    ----------
    monitors:
        Invariant monitors to drive; empty by default.  Use
        :meth:`with_monitors` for the standard Lemma 4 / bandwidth /
        Theorem 1 trio.
    profile:
        Attach a :class:`Profiler`; the simulator then times its hot
        sections (delivery, node stepping) and counts engine events.
    registry:
        Share an existing :class:`MetricsRegistry` instead of creating
        a fresh one.
    bus:
        Optional :class:`~repro.obs.stream.TelemetryBus` (duck-typed).
        When given, the facade *streams*: the meta row at run start,
        each phase row the moment its span closes, throttled
        ``progress`` heartbeats from the per-round tick hook, and the
        metric/monitor/profile rows at :meth:`finalize_run` — so a live
        subscriber sees exactly the :meth:`events` rows (plus the
        heartbeats), incrementally.
    progress:
        Optional :class:`~repro.obs.stream.ProgressEstimator`
        (duck-typed).  Bound to the simulator at run start; drives the
        percent/ETA fields of the streamed ``progress`` rows.

    Streaming deliberately does **not** change :attr:`wants_sends` /
    :attr:`wants_rounds` (those stay tied to monitors), so attaching a
    bus never pushes the bulk engine off its closed-form fast path.
    """

    def __init__(
        self,
        monitors: Optional[List[Monitor]] = None,
        profile: bool = False,
        registry: Optional[MetricsRegistry] = None,
        bus=None,
        progress=None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.phases = PhaseTracker()
        self.monitors: List[Monitor] = list(monitors or ())
        self.profiler: Optional[Profiler] = Profiler() if profile else None
        base_send = Monitor.on_send
        base_round = Monitor.on_round_end
        self._send_monitors: Tuple[Monitor, ...] = tuple(
            m for m in self.monitors if type(m).on_send is not base_send
        )
        self._round_monitors: Tuple[Monitor, ...] = tuple(
            m for m in self.monitors if type(m).on_round_end is not base_round
        )
        self._meta: Dict[str, Any] = {}
        self._wall_start: Optional[float] = None
        self._started_epoch: Optional[float] = None
        self.bus = bus
        self.progress = progress
        self._spans_published = 0
        self._tick_interval = 64
        self._next_tick_round = 0
        self._stream_finalized = False

    @classmethod
    def with_monitors(cls, mode: str = "record", profile: bool = False) -> "Telemetry":
        """A telemetry bundle carrying the standard monitor trio."""
        return cls(monitors=default_monitors(mode), profile=profile)

    @classmethod
    def with_streaming(
        cls,
        jsonl_path=None,
        progress: bool = True,
        console=None,
        monitors: Optional[List[Monitor]] = None,
        profile: bool = False,
    ) -> "Telemetry":
        """A telemetry bundle wired for live streaming.

        Builds a fresh :class:`~repro.obs.stream.TelemetryBus`, attaches
        a flushed JSONL writer when ``jsonl_path`` is given and a
        :class:`~repro.obs.stream.ConsoleProgress` renderer when
        ``console`` is truthy (a stream object, or ``True`` for stderr),
        and binds a :class:`~repro.obs.stream.ProgressEstimator` unless
        ``progress`` is False.
        """
        from repro.obs.stream import (
            ConsoleProgress,
            ProgressEstimator,
            TelemetryBus,
        )

        bus = TelemetryBus()
        if jsonl_path is not None:
            bus.attach_jsonl(jsonl_path)
        if console:
            bus.attach_sink(
                ConsoleProgress(None if console is True else console)
            )
        estimator = ProgressEstimator() if progress else None
        return cls(
            monitors=monitors, profile=profile, bus=bus, progress=estimator
        )

    # ------------------------------------------------------------------
    # simulator hooks
    # ------------------------------------------------------------------
    @property
    def wants_sends(self) -> bool:
        """Whether the simulator should call :meth:`on_send` per message."""
        return bool(self._send_monitors)

    @property
    def wants_rounds(self) -> bool:
        """Whether any monitor needs the per-round edge-load snapshots.

        The bulk engine consults this: when no round monitor is attached
        it skips the per-round replay entirely and reduces the send
        inventory with array ops.
        """
        return bool(self._round_monitors)

    @property
    def wants_ticks(self) -> bool:
        """Whether the engines should call :meth:`on_round_tick` per round.

        True only when a bus or progress estimator is attached, so the
        plain (non-streaming) telemetry keeps the round loops untouched.
        """
        return self.bus is not None or self.progress is not None

    def on_run_start(self, simulator) -> None:
        """Bind per-run constants; called by :meth:`Simulator.run`."""
        self._wall_start = time.perf_counter()
        self._started_epoch = time.time()
        graph = simulator.graph
        self._meta = {
            "graph": graph.name,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "engine": simulator.engine,
            "strict": simulator.strict,
            "bit_budget": simulator.bit_budget,
        }
        # Which registered protocol the run executes (None for
        # unregistered custom node algorithms): runs of rival protocols
        # must never be comparable rows in exported metrics.
        protocol = getattr(simulator, "protocol", None)
        if protocol is not None:
            self._meta["protocol"] = protocol.name
        # The dispatcher's decision (requested engine, probe reason)
        # rides along so exported runs explain *why* this engine ran.
        requested = getattr(simulator, "engine_requested", None)
        if requested is not None:
            self._meta["engine_requested"] = requested
        decision = getattr(simulator, "engine_decision", None)
        if decision is not None:
            self._meta["engine_reason"] = decision.reason
        gauge = self.registry.gauge
        gauge("run.num_nodes").set(graph.num_nodes)
        gauge("run.num_edges").set(graph.num_edges)
        gauge("run.bit_budget").set(simulator.bit_budget)
        for monitor in self.monitors:
            monitor.on_run_start(simulator)
        progress = self.progress
        if progress is not None:
            progress.bind(simulator)
            self._tick_interval = progress.suggest_interval()
        self._next_tick_round = 0
        if self.bus is not None:
            self.bus.publish(self._meta_row())

    def on_send(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        message: Any,
        bits: int,
    ) -> None:
        for monitor in self._send_monitors:
            monitor.on_send(round_number, sender, receiver, message, bits)

    def on_round_end(
        self,
        round_number: int,
        edge_load: Dict[Tuple[int, int], List[int]],
    ) -> None:
        for monitor in self._round_monitors:
            monitor.on_round_end(round_number, edge_load)

    def on_round_tick(self, round_number: int) -> None:
        """Lightweight per-round streaming hook (sweep/event engines).

        Only called when :attr:`wants_ticks` is True.  Updates the
        progress estimator and publishes a throttled ``progress``
        heartbeat row; the throttle interval is derived from the
        schedule (~100 rows per run) so streaming cost stays flat in N.
        """
        progress = self.progress
        if progress is not None:
            progress.current_round = round_number
        if round_number < self._next_tick_round:
            return
        self._next_tick_round = round_number + self._tick_interval
        if self.bus is not None:
            if progress is not None:
                row = progress.row(round_number)
            else:
                row = {"event": "progress", "round": round_number}
            self.bus.publish(row)

    def on_run_end(self, stats) -> None:
        """Close open spans and record the run's aggregate statistics."""
        self.phases.end(stats.rounds)
        self._publish_closed_spans()
        progress = self.progress
        if progress is not None:
            final_row = progress.finish(stats.rounds)
            if self.bus is not None:
                self.bus.publish(final_row)
        gauge = self.registry.gauge
        gauge("run.rounds").set(stats.rounds)
        gauge("run.messages").set(stats.message_count)
        gauge("run.bits").set(stats.bit_count)
        gauge("run.max_edge_bits_per_round").set(stats.max_edge_bits_per_round)
        if self._wall_start is not None:
            gauge("run.wall_seconds").set(
                time.perf_counter() - self._wall_start
            )
        faults = getattr(stats, "faults", None)
        if faults is not None:
            # A faulted run (Simulator faults=...) hangs its FaultStats
            # off the simulation stats; surface every injection counter
            # as a gauge so exported metrics carry the chaos profile.
            for name, value in faults.as_dict().items():
                gauge("faults.{}".format(name)).set(value)
        shard = getattr(stats, "shard", None)
        if shard is not None:
            # Sharded runs split the exact totals by process boundary:
            # cross-shard bits/messages are a view of the same billed
            # traffic (run.bits is unchanged), and per-shard ledger
            # words document the memory the partition keeps off any
            # single process.
            gauge("shard.workers").set(shard["workers"])
            gauge("shard.edge_cut").set(shard["edge_cut"])
            gauge("shard.cross_messages").set(shard["cross_messages"])
            gauge("shard.cross_bits").set(shard["cross_bits"])
            for entry in shard["per_shard"]:
                prefix = "shard.{}".format(entry["shard"])
                gauge("{}.nodes".format(prefix)).set(entry["nodes"])
                gauge("{}.ledger_words".format(prefix)).set(
                    entry["ledger_words"]
                )
        supervisor = getattr(stats, "supervisor", None)
        if supervisor is not None:
            # Supervised runs surface their recovery story: restarts and
            # hang detections count infrastructure events (never protocol
            # traffic — run.bits is identical with or without them), and
            # the checkpoint figures price the durability overhead.
            gauge("supervisor.restarts").set(supervisor["restarts"])
            gauge("supervisor.hang_detections").set(
                supervisor["hang_detections"]
            )
            gauge("supervisor.rollbacks").set(supervisor["rollbacks"])
            gauge("supervisor.checkpoints_written").set(
                supervisor["checkpoints_written"]
            )
            gauge("supervisor.checkpoint_bytes").set(
                supervisor["checkpoint_bytes"]
            )
            gauge("supervisor.checkpoint_seconds").set(
                supervisor["checkpoint_seconds"]
            )
            gauge("supervisor.shards_abandoned").set(
                len(supervisor["shards_abandoned"])
            )
            if supervisor["resumed_from"] is not None:
                gauge("supervisor.resumed_from").set(
                    supervisor["resumed_from"]
                )

    # ------------------------------------------------------------------
    # protocol hooks
    # ------------------------------------------------------------------
    def phase_begin(self, name: str, round_number: int) -> None:
        """Mark a protocol phase boundary (see :class:`PhaseTracker`)."""
        self.phases.begin(name, round_number)
        if self.progress is not None:
            self.progress.note_phase(name)
        self._publish_closed_spans()

    def phase_end(self, round_number: int) -> None:
        """Close the open phase; idempotent once closed."""
        self.phases.end(round_number)
        self._publish_closed_spans()

    def _publish_closed_spans(self) -> None:
        """Stream phase rows the moment their spans close.

        Spans close in order and never reopen, so a cursor suffices;
        the published rows are byte-identical to the :meth:`events`
        phase rows of the finished run.
        """
        if self.bus is None:
            return
        spans = self.phases.spans()
        cursor = self._spans_published
        while cursor < len(spans) and spans[cursor].end_round is not None:
            self.bus.publish(dict(event="phase", **spans[cursor].as_dict()))
            cursor += 1
        self._spans_published = cursor

    # ------------------------------------------------------------------
    # pipeline hooks
    # ------------------------------------------------------------------
    def finalize_run(self, result) -> None:
        """Run post-run monitors against the collected pipeline result."""
        diameter = getattr(result, "diameter", None)
        if diameter is not None:
            self.registry.gauge("run.diameter").set(diameter)
        nodes = getattr(result, "nodes", None)
        if nodes:
            # Network-wide ledger footprint (the state the protocol
            # accumulated): the measurable form of the array-ledger
            # refactor's memory claim, and the ``repro report`` memory
            # line.  Summing storage_summary() is O(N) — the summaries
            # are O(1) off the column lengths.
            from repro.core.records import ledger_storage_totals

            ledgers = (
                node.ledger for node in nodes if hasattr(node, "ledger")
            )
            totals = ledger_storage_totals(ledgers)
            gauge = self.registry.gauge
            gauge("ledger.records").set(totals["records"])
            gauge("ledger.pred_links").set(totals["pred_links"])
            gauge("ledger.words").set(totals["words"])
        for monitor in self.monitors:
            monitor.finalize(result)
        self.flush_stream()

    def flush_stream(self) -> None:
        """Publish the final metric/monitor/profile rows to the bus, once.

        Called by :meth:`finalize_run` (the pipeline invokes that after
        every run); bare-:class:`Simulator` users streaming to a bus
        should call it themselves after ``run()``.  Idempotent.
        """
        if self.bus is None or self._stream_finalized:
            return
        self._stream_finalized = True
        self._publish_closed_spans()
        publish = self.bus.publish
        for name, snapshot in sorted(self.registry.snapshot().items()):
            publish(dict(event="metric", name=name, **snapshot))
        for verdict in self.verdicts():
            publish(dict(event="monitor", **verdict.as_dict()))
        if self.profiler is not None:
            for section, numbers in sorted(self.profiler.summary().items()):
                publish(dict(event="profile", section=section, **numbers))

    # ------------------------------------------------------------------
    # verdicts and export
    # ------------------------------------------------------------------
    def verdicts(self) -> List[MonitorVerdict]:
        return [monitor.verdict() for monitor in self.monitors]

    def all_ok(self) -> bool:
        """True when no monitor recorded a violation (skips count as ok)."""
        return all(v.ok for v in self.verdicts())

    def _meta_row(self) -> Dict[str, Any]:
        return dict(
            event="meta",
            schema=METRICS_SCHEMA,
            started_epoch=self._started_epoch,
            **self._meta,
        )

    def events(self) -> List[Dict[str, Any]]:
        """Structured export rows: header, phases, metrics, verdicts."""
        rows: List[Dict[str, Any]] = [self._meta_row()]
        for span in self.phases.spans():
            rows.append(dict(event="phase", **span.as_dict()))
        for name, snapshot in sorted(self.registry.snapshot().items()):
            rows.append(dict(event="metric", name=name, **snapshot))
        for verdict in self.verdicts():
            rows.append(dict(event="monitor", **verdict.as_dict()))
        if self.profiler is not None:
            for section, numbers in sorted(self.profiler.summary().items()):
                rows.append(dict(event="profile", section=section, **numbers))
        return rows

    def to_jsonl(self) -> str:
        """The :meth:`events` rows as JSON Lines text."""
        return "\n".join(json.dumps(row) for row in self.events()) + "\n"

    def write_jsonl(self, path) -> None:
        """Stream the export rows to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def __repr__(self) -> str:
        return "Telemetry(phases={}, monitors={}, metrics={}, profile={})".format(
            len(self.phases),
            len(self.monitors),
            len(self.registry),
            self.profiler is not None,
        )
