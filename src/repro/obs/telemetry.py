"""The telemetry facade: one object wiring a run's observability.

A :class:`Telemetry` instance bundles the four observability concerns —
a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.spans.PhaseTracker`, a list of
:class:`~repro.obs.monitors.Monitor` instances, and an optional
:class:`~repro.obs.profiler.Profiler` — behind the narrow hook surface
the simulator and pipeline drive:

* the **simulator** calls :meth:`on_run_start`, :meth:`on_send` (only
  if a monitor wants sends), :meth:`on_round_end` (with the round's
  per-edge accounting) and :meth:`on_run_end`;
* the **protocol** (the root :class:`~repro.core.node.BetweennessNode`)
  calls :meth:`phase_begin` / :meth:`phase_end` at protocol-state
  transitions;
* the **pipeline** calls :meth:`finalize_run` with the collected
  result so post-run monitors (the Theorem 1 error check) can judge.

One instance observes one run — build a fresh one per run.  Everything
is duck-typed from the caller's side: neither the simulator nor the
pipeline imports this module, so ``telemetry=None`` (the default
everywhere) costs a handful of identity checks per run.

Export: :meth:`events` yields structured rows (one header, then one
row per phase span, metric, monitor verdict and profile section);
:meth:`write_jsonl` streams them as JSON Lines for external tooling.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import Monitor, MonitorVerdict, default_monitors
from repro.obs.profiler import Profiler
from repro.obs.spans import PhaseTracker

#: Schema marker stamped on the JSONL header row.
METRICS_SCHEMA = "repro-metrics-v1"


class Telemetry:
    """Per-run observability bundle (see the module docstring).

    Parameters
    ----------
    monitors:
        Invariant monitors to drive; empty by default.  Use
        :meth:`with_monitors` for the standard Lemma 4 / bandwidth /
        Theorem 1 trio.
    profile:
        Attach a :class:`Profiler`; the simulator then times its hot
        sections (delivery, node stepping) and counts engine events.
    registry:
        Share an existing :class:`MetricsRegistry` instead of creating
        a fresh one.
    """

    def __init__(
        self,
        monitors: Optional[List[Monitor]] = None,
        profile: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.phases = PhaseTracker()
        self.monitors: List[Monitor] = list(monitors or ())
        self.profiler: Optional[Profiler] = Profiler() if profile else None
        base_send = Monitor.on_send
        base_round = Monitor.on_round_end
        self._send_monitors: Tuple[Monitor, ...] = tuple(
            m for m in self.monitors if type(m).on_send is not base_send
        )
        self._round_monitors: Tuple[Monitor, ...] = tuple(
            m for m in self.monitors if type(m).on_round_end is not base_round
        )
        self._meta: Dict[str, Any] = {}
        self._wall_start: Optional[float] = None
        self._started_epoch: Optional[float] = None

    @classmethod
    def with_monitors(cls, mode: str = "record", profile: bool = False) -> "Telemetry":
        """A telemetry bundle carrying the standard monitor trio."""
        return cls(monitors=default_monitors(mode), profile=profile)

    # ------------------------------------------------------------------
    # simulator hooks
    # ------------------------------------------------------------------
    @property
    def wants_sends(self) -> bool:
        """Whether the simulator should call :meth:`on_send` per message."""
        return bool(self._send_monitors)

    @property
    def wants_rounds(self) -> bool:
        """Whether any monitor needs the per-round edge-load snapshots.

        The bulk engine consults this: when no round monitor is attached
        it skips the per-round replay entirely and reduces the send
        inventory with array ops.
        """
        return bool(self._round_monitors)

    def on_run_start(self, simulator) -> None:
        """Bind per-run constants; called by :meth:`Simulator.run`."""
        self._wall_start = time.perf_counter()
        self._started_epoch = time.time()
        graph = simulator.graph
        self._meta = {
            "graph": graph.name,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "engine": simulator.engine,
            "strict": simulator.strict,
            "bit_budget": simulator.bit_budget,
        }
        gauge = self.registry.gauge
        gauge("run.num_nodes").set(graph.num_nodes)
        gauge("run.num_edges").set(graph.num_edges)
        gauge("run.bit_budget").set(simulator.bit_budget)
        for monitor in self.monitors:
            monitor.on_run_start(simulator)

    def on_send(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        message: Any,
        bits: int,
    ) -> None:
        for monitor in self._send_monitors:
            monitor.on_send(round_number, sender, receiver, message, bits)

    def on_round_end(
        self,
        round_number: int,
        edge_load: Dict[Tuple[int, int], List[int]],
    ) -> None:
        for monitor in self._round_monitors:
            monitor.on_round_end(round_number, edge_load)

    def on_run_end(self, stats) -> None:
        """Close open spans and record the run's aggregate statistics."""
        self.phases.end(stats.rounds)
        gauge = self.registry.gauge
        gauge("run.rounds").set(stats.rounds)
        gauge("run.messages").set(stats.message_count)
        gauge("run.bits").set(stats.bit_count)
        gauge("run.max_edge_bits_per_round").set(stats.max_edge_bits_per_round)
        if self._wall_start is not None:
            gauge("run.wall_seconds").set(
                time.perf_counter() - self._wall_start
            )
        faults = getattr(stats, "faults", None)
        if faults is not None:
            # A faulted run (Simulator faults=...) hangs its FaultStats
            # off the simulation stats; surface every injection counter
            # as a gauge so exported metrics carry the chaos profile.
            for name, value in faults.as_dict().items():
                gauge("faults.{}".format(name)).set(value)

    # ------------------------------------------------------------------
    # protocol hooks
    # ------------------------------------------------------------------
    def phase_begin(self, name: str, round_number: int) -> None:
        """Mark a protocol phase boundary (see :class:`PhaseTracker`)."""
        self.phases.begin(name, round_number)

    def phase_end(self, round_number: int) -> None:
        """Close the open phase; idempotent once closed."""
        self.phases.end(round_number)

    # ------------------------------------------------------------------
    # pipeline hooks
    # ------------------------------------------------------------------
    def finalize_run(self, result) -> None:
        """Run post-run monitors against the collected pipeline result."""
        diameter = getattr(result, "diameter", None)
        if diameter is not None:
            self.registry.gauge("run.diameter").set(diameter)
        for monitor in self.monitors:
            monitor.finalize(result)

    # ------------------------------------------------------------------
    # verdicts and export
    # ------------------------------------------------------------------
    def verdicts(self) -> List[MonitorVerdict]:
        return [monitor.verdict() for monitor in self.monitors]

    def all_ok(self) -> bool:
        """True when no monitor recorded a violation (skips count as ok)."""
        return all(v.ok for v in self.verdicts())

    def events(self) -> List[Dict[str, Any]]:
        """Structured export rows: header, phases, metrics, verdicts."""
        rows: List[Dict[str, Any]] = [
            dict(
                event="meta",
                schema=METRICS_SCHEMA,
                started_epoch=self._started_epoch,
                **self._meta,
            )
        ]
        for span in self.phases.spans():
            rows.append(dict(event="phase", **span.as_dict()))
        for name, snapshot in sorted(self.registry.snapshot().items()):
            rows.append(dict(event="metric", name=name, **snapshot))
        for verdict in self.verdicts():
            rows.append(dict(event="monitor", **verdict.as_dict()))
        if self.profiler is not None:
            for section, numbers in sorted(self.profiler.summary().items()):
                rows.append(dict(event="profile", section=section, **numbers))
        return rows

    def to_jsonl(self) -> str:
        """The :meth:`events` rows as JSON Lines text."""
        return "\n".join(json.dumps(row) for row in self.events()) + "\n"

    def write_jsonl(self, path) -> None:
        """Stream the export rows to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def __repr__(self) -> str:
        return "Telemetry(phases={}, monitors={}, metrics={}, profile={})".format(
            len(self.phases),
            len(self.monitors),
            len(self.registry),
            self.profiler is not None,
        )
