"""Run-history ledger: content-addressed run records and regression gates.

The BENCH_*.json artifacts are overwritten on every benchmark run, so
the repo's perf trajectory was empty — this module makes it accumulate.
Every record appended to the ledger (``.repro-history.jsonl`` by
default) carries a **content-addressed key**: a blake2b digest over the
canonical JSON of (graph fingerprint, protocol config, engine, git
revision).  Two identical runs — same topology, same configuration,
same code — therefore land under the same key, and a key whose metrics
*change* is, by construction, a regression or an environment delta.

Three record kinds share the ledger:

* ``run`` — one protocol run (ingested from a pipeline result or from
  exported repro-metrics-v1 rows);
* ``bench_engine`` — one row of ``BENCH_engine.json`` (per family × N);
* ``bench_faults`` — the fault-layer overhead/recovery gates of
  ``BENCH_faults.json``;
* ``bench_arena`` — one row of ``BENCH_arena.json`` (per protocol ×
  family × N league-table entry);
* ``bench_shard`` — one row of ``BENCH_shard.json`` (per family × N ×
  protocol × worker-count sharding configuration).

The registered protocol is part of every ``run`` record's config, so a
``hua-bc`` run and a ``cfp-bc`` run over the same graph land under
*different* content keys and never gate against each other.

The regression gates (:func:`compare_payloads`) power ``repro bench
compare``: structural metrics (rounds, billed bits, messages,
result-identity) must match **exactly** for an identical config — they
are machine-independent — while wall-clock metrics get configurable
ratio gates (speedup drop, slowdown factor) because timers are not
portable across hosts.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA",
    "HistoryLedger",
    "RegressionGates",
    "Violation",
    "MAX_CHECKPOINT_OVERHEAD",
    "compare_bench_arena",
    "compare_bench_engine",
    "compare_bench_faults",
    "compare_bench_recovery",
    "compare_bench_shard",
    "compare_payloads",
    "entry_from_result",
    "entry_from_rows",
    "git_revision",
    "graph_fingerprint",
    "run_key",
]

HISTORY_SCHEMA = "repro-history-v1"
DEFAULT_HISTORY_PATH = ".repro-history.jsonl"

#: Hex digits kept from the blake2b digests (64 bits — plenty for a
#: per-repo ledger, short enough to eyeball).
_KEY_LEN = 16


def _canonical(payload: Any) -> bytes:
    """Deterministic JSON bytes: sorted keys, no whitespace drift."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def graph_fingerprint(graph) -> str:
    """Content hash of a topology: node count + sorted edge list."""
    edges = sorted(tuple(sorted(e)) for e in graph.edges())
    digest = hashlib.blake2b(
        _canonical([graph.num_nodes, edges]), digest_size=16
    )
    return digest.hexdigest()[:_KEY_LEN]


def run_key(
    graph_hash: str,
    config: Dict[str, Any],
    engine: str,
    git_rev: Optional[str] = None,
) -> str:
    """The content address of one run configuration."""
    digest = hashlib.blake2b(
        _canonical(
            {
                "graph": graph_hash,
                "config": config,
                "engine": engine,
                "git_rev": git_rev,
            }
        ),
        digest_size=16,
    )
    return digest.hexdigest()[:_KEY_LEN]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The working tree's HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.decode("ascii", "replace").strip() or None


# ----------------------------------------------------------------------
# record builders
# ----------------------------------------------------------------------
def entry_from_result(
    result,
    graph,
    config: Optional[Dict[str, Any]] = None,
    git_rev: Optional[str] = None,
    wall_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """A ``run`` record from a pipeline result object."""
    stats = result.stats
    cfg = dict(config or {})
    cfg.setdefault("arithmetic", getattr(result, "arithmetic", None))
    cfg.setdefault("protocol", getattr(result, "protocol", "hua-bc"))
    graph_hash = graph_fingerprint(graph)
    engine = stats.engine or "unknown"
    entry = {
        "kind": "run",
        "key": run_key(graph_hash, cfg, engine, git_rev),
        "graph": graph.name,
        "graph_hash": graph_hash,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "config": cfg,
        "engine": engine,
        "git_rev": git_rev,
        "rounds": stats.rounds,
        "messages": stats.message_count,
        "bits": stats.bit_count,
        "max_edge_bits": stats.max_edge_bits_per_round,
        "diameter": getattr(result, "diameter", None),
    }
    # Worker count is recorded for provenance but deliberately kept out
    # of the hashed config: a sharded run is bit-identical to the
    # single-process one, so W must not fork the content key.
    shard = getattr(stats, "shard", None)
    entry["workers"] = shard["workers"] if shard else 1
    # Same rule for supervision: respawns and resume points are wall-
    # clock history, not protocol configuration — a recovered or resumed
    # run IS the uninterrupted run, so neither may fork the content key.
    supervisor = getattr(stats, "supervisor", None)
    entry["workers_restarted"] = (
        supervisor["restarts"] if supervisor else 0
    )
    entry["resumed_from"] = (
        supervisor["resumed_from"] if supervisor else None
    )
    if wall_seconds is not None:
        entry["wall_seconds"] = round(wall_seconds, 6)
    return entry


def entry_from_rows(
    rows: Iterable[Dict[str, Any]],
    git_rev: Optional[str] = None,
) -> Dict[str, Any]:
    """A ``run`` record from exported repro-metrics-v1 rows.

    Exported rows carry the graph's name and size but not its edges, so
    the "graph hash" falls back to hashing (name, N, E) — stable for
    the deterministic generators the CLI uses.
    """
    meta: Dict[str, Any] = {}
    metrics: Dict[str, Any] = {}
    for row in rows:
        if row.get("event") == "meta":
            meta = row
        elif row.get("event") == "metric":
            metrics[row.get("name")] = row.get("value")
    if not meta:
        raise ValueError("no meta header row: not a telemetry export")
    pseudo = hashlib.blake2b(
        _canonical(
            [meta.get("graph"), meta.get("num_nodes"), meta.get("num_edges")]
        ),
        digest_size=16,
    ).hexdigest()[:_KEY_LEN]
    cfg = {
        "strict": meta.get("strict"),
        "bit_budget": meta.get("bit_budget"),
        "protocol": meta.get("protocol", "hua-bc"),
    }
    engine = meta.get("engine", "unknown")
    entry = {
        "kind": "run",
        "key": run_key(pseudo, cfg, engine, git_rev),
        "graph": meta.get("graph"),
        "graph_hash": pseudo,
        "num_nodes": meta.get("num_nodes"),
        "num_edges": meta.get("num_edges"),
        "config": cfg,
        "engine": engine,
        "engine_requested": meta.get("engine_requested"),
        "engine_reason": meta.get("engine_reason"),
        "git_rev": git_rev,
        "rounds": metrics.get("run.rounds"),
        "messages": metrics.get("run.messages"),
        "bits": metrics.get("run.bits"),
        "max_edge_bits": metrics.get("run.max_edge_bits_per_round"),
        "wall_seconds": metrics.get("run.wall_seconds"),
    }
    return entry


class HistoryLedger:
    """Append-only JSONL ledger of run and benchmark records."""

    def __init__(self, path=DEFAULT_HISTORY_PATH):
        self.path = path
        #: Unparseable lines seen by the most recent :meth:`entries` read.
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    def append(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Stamp and append one record; returns the stored form."""
        stored = dict(entry)
        stored.setdefault("schema", HISTORY_SCHEMA)
        stored.setdefault("recorded_unix", round(time.time(), 3))
        with open(self.path, "a+b") as fh:
            # A prior process killed mid-append leaves a torn line with
            # no newline; start fresh so we don't concatenate onto it.
            fh.seek(0, os.SEEK_END)
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write(
                (json.dumps(stored, sort_keys=True) + "\n").encode("utf-8")
            )
            fh.flush()
        return stored

    def entries(
        self,
        kind: Optional[str] = None,
        key: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """All stored records, oldest first.

        The ledger is appended to by many short-lived processes over its
        lifetime, so a torn line (process killed mid-append) can sit
        anywhere, not just at the tail — unparseable lines are skipped
        and counted in :attr:`skipped_lines` rather than raised.
        """
        self.skipped_lines = 0
        if not os.path.exists(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for line in lines:
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError:
                self.skipped_lines += 1
                continue
            if kind is not None and row.get("kind") != kind:
                continue
            if key is not None and row.get("key") != key:
                continue
            out.append(row)
        return out

    def latest(self, key: str) -> Optional[Dict[str, Any]]:
        """Most recent record under a content key."""
        matches = self.entries(key=key)
        return matches[-1] if matches else None

    def __len__(self) -> int:
        return len(self.entries())

    # ------------------------------------------------------------------
    # benchmark ingestion
    # ------------------------------------------------------------------
    def ingest_bench_engine(
        self, payload: Dict[str, Any], git_rev: Optional[str] = None
    ) -> int:
        """Append one record per BENCH_engine.json row; returns the count."""
        engines = payload.get("engines", [])
        arithmetic = payload.get("arithmetic")
        count = 0
        for row in payload.get("rows", ()):
            ident = {
                "benchmark": "engine_comparison",
                "family": row.get("family"),
                "n": row.get("n"),
                "engines": list(engines),
                "arithmetic": arithmetic,
            }
            entry = {
                "kind": "bench_engine",
                "key": run_key(
                    "bench", ident, ",".join(engines), git_rev
                ),
                "git_rev": git_rev,
            }
            entry.update(ident)
            for metric in (
                "rounds", "identical_results", "bits", "messages",
                "sweep_seconds", "event_seconds", "bulk_seconds",
                "event_speedup", "bulk_speedup",
            ):
                if metric in row:
                    entry[metric] = row[metric]
            self.append(entry)
            count += 1
        return count

    def ingest_bench_arena(
        self, payload: Dict[str, Any], git_rev: Optional[str] = None
    ) -> int:
        """Append one record per BENCH_arena.json row; returns the count.

        Arena rows are keyed by (protocol, family, n) so each protocol's
        league-table entry accumulates its own trajectory.
        """
        arithmetic = payload.get("arithmetic")
        count = 0
        for row in payload.get("rows", ()):
            ident = {
                "benchmark": "protocol_arena",
                "protocol": row.get("protocol"),
                "family": row.get("family"),
                "n": row.get("n"),
                "arithmetic": arithmetic,
            }
            entry = {
                "kind": "bench_arena",
                "key": run_key(
                    "bench", ident, row.get("engine", "auto"), git_rev
                ),
                "git_rev": git_rev,
            }
            entry.update(ident)
            for metric in (
                "engine", "rounds", "bits", "messages", "max_edge_bits",
                "wall_seconds", "matches_brandes",
            ):
                if metric in row:
                    entry[metric] = row[metric]
            self.append(entry)
            count += 1
        return count

    def ingest_bench_faults(
        self, payload: Dict[str, Any], git_rev: Optional[str] = None
    ) -> int:
        """Append the fault-layer gate numbers; returns the record count."""
        count = 0
        disabled = payload.get("disabled_overhead")
        if disabled:
            ident = {
                "benchmark": "fault_layer",
                "gate": "disabled_overhead",
                "graph": disabled.get("graph"),
            }
            entry = {
                "kind": "bench_faults",
                "key": run_key("bench", ident, "faults", git_rev),
                "git_rev": git_rev,
            }
            entry.update(ident)
            entry.update(
                {
                    k: disabled.get(k)
                    for k in ("overhead_ratio", "identical_results")
                }
            )
            self.append(entry)
            count += 1
        recovery = payload.get("recovery_overhead", {})
        for row in recovery.get("rows", ()):
            ident = {
                "benchmark": "fault_layer",
                "gate": "recovery",
                "graph": recovery.get("graph"),
                "drop_rate": row.get("drop_rate"),
            }
            entry = {
                "kind": "bench_faults",
                "key": run_key("bench", ident, "faults", git_rev),
                "git_rev": git_rev,
            }
            entry.update(ident)
            entry.update(
                {
                    k: row.get(k)
                    for k in (
                        "rounds", "round_overhead", "recovered_exactly",
                        "complete", "seconds",
                    )
                }
            )
            self.append(entry)
            count += 1
        return count

    def ingest_bench_shard(
        self, payload: Dict[str, Any], git_rev: Optional[str] = None
    ) -> int:
        """Append one record per BENCH_shard.json row; returns the count.

        Rows are keyed by (family, n, protocol, workers, partitioner) so
        each sharding configuration accumulates its own trajectory.
        """
        arithmetic = payload.get("arithmetic")
        count = 0
        for row in payload.get("rows", ()):
            ident = {
                "benchmark": "shard_runtime",
                "family": row.get("family"),
                "n": row.get("n"),
                "protocol": row.get("protocol"),
                "workers": row.get("workers"),
                "partitioner": row.get("partitioner"),
                "arithmetic": arithmetic,
            }
            entry = {
                "kind": "bench_shard",
                "key": run_key("bench", ident, "shard", git_rev),
                "git_rev": git_rev,
            }
            entry.update(ident)
            for metric in (
                "rounds", "bits", "messages", "identical_results",
                "edge_cut", "cross_bits", "cross_messages",
                "max_shard_ledger_words",
                "event_seconds", "shard_seconds", "shard_cpu_seconds",
                "projected_speedup",
            ):
                if metric in row:
                    entry[metric] = row[metric]
            self.append(entry)
            count += 1
        return count

    def ingest_bench_recovery(
        self, payload: Dict[str, Any], git_rev: Optional[str] = None
    ) -> int:
        """Append one record per BENCH_recovery.json row; returns the count.

        Rows are keyed by (family, n, protocol, scenario) — a scenario
        is one recovery path ("resume", "hang_respawn", "overhead", ...)
        so each path's identity verdict and latency trend separately.
        """
        count = 0
        for row in payload.get("rows", ()):
            ident = {
                "benchmark": "recovery",
                "family": row.get("family"),
                "n": row.get("n"),
                "protocol": row.get("protocol"),
                "scenario": row.get("scenario"),
            }
            entry = {
                "kind": "bench_recovery",
                "key": run_key("bench", ident, "shard", git_rev),
                "git_rev": git_rev,
            }
            entry.update(ident)
            for metric in (
                "rounds", "bits", "messages", "identical_after_resume",
                "restarts", "checkpoints_written", "checkpoint_bytes",
                "workers", "faults",
                "uninterrupted_seconds", "supervised_seconds",
                "overhead_fraction", "recovery_seconds",
            ):
                if metric in row:
                    entry[metric] = row[metric]
            self.append(entry)
            count += 1
        return count


# ----------------------------------------------------------------------
# regression gates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One failed gate.  ``hard`` gates are machine-independent facts
    (rounds, bits, result identity); soft gates are wall-clock ratios.
    """

    gate: str
    message: str
    hard: bool = True

    def __str__(self) -> str:
        return "[{}{}] {}".format(
            self.gate, "" if self.hard else ", wall-clock", self.message
        )


@dataclass(frozen=True)
class RegressionGates:
    """Configurable thresholds for ``repro bench compare``.

    ``max_speedup_drop`` — fail when an engine's speedup over sweep
    falls by more than this fraction (default 20%).
    ``max_slowdown`` — fail when a timed section takes more than this
    multiple of the baseline (default 2x — the acceptance scenario).
    ``check_wall`` — set False to skip wall-clock gates entirely
    (cross-machine comparisons where only structure is meaningful).
    """

    max_speedup_drop: float = 0.20
    max_slowdown: float = 2.0
    check_wall: bool = True


_STRUCTURAL_KEYS = ("rounds", "bits", "messages")
_SPEEDUP_KEYS = ("event_speedup", "bulk_speedup")
_SECONDS_KEYS = ("sweep_seconds", "event_seconds", "bulk_seconds")


def compare_bench_engine(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    gates: RegressionGates = RegressionGates(),
) -> Tuple[List[Violation], int]:
    """Gate a fresh BENCH_engine payload against a baseline.

    Rows are matched by (family, n); structural metrics must match
    exactly, wall metrics within the configured ratios.  Returns
    ``(violations, rows_compared)``.
    """
    def rows_by_id(payload):
        return {
            (row.get("family"), row.get("n")): row
            for row in payload.get("rows", ())
        }

    base_rows = rows_by_id(baseline)
    cur_rows = rows_by_id(current)
    violations: List[Violation] = []
    compared = 0
    for ident in sorted(set(base_rows) & set(cur_rows)):
        compared += 1
        base, cur = base_rows[ident], cur_rows[ident]
        label = "{}-{}".format(*ident)
        for key in _STRUCTURAL_KEYS:
            if key in base and key in cur and base[key] != cur[key]:
                violations.append(
                    Violation(
                        key,
                        "{}: {} changed for an identical config: "
                        "{} -> {}".format(label, key, base[key], cur[key]),
                    )
                )
        if base.get("identical_results") and not cur.get(
            "identical_results", True
        ):
            violations.append(
                Violation(
                    "identity",
                    "{}: engines no longer produce identical results".format(
                        label
                    ),
                )
            )
        if not gates.check_wall:
            continue
        for key in _SPEEDUP_KEYS:
            if key not in base or key not in cur:
                continue
            floor = base[key] * (1.0 - gates.max_speedup_drop)
            if cur[key] < floor:
                violations.append(
                    Violation(
                        key,
                        "{}: {} dropped {:.0%}+: {:.2f}x -> {:.2f}x "
                        "(floor {:.2f}x)".format(
                            label, key, gates.max_speedup_drop,
                            base[key], cur[key], floor,
                        ),
                        hard=False,
                    )
                )
        for key in _SECONDS_KEYS:
            if key not in base or key not in cur or not base[key]:
                continue
            ratio = cur[key] / base[key]
            if ratio > gates.max_slowdown:
                violations.append(
                    Violation(
                        key,
                        "{}: {} slowed {:.2f}x over baseline "
                        "({:.4f}s -> {:.4f}s; gate {:.2f}x)".format(
                            label, key, ratio, base[key], cur[key],
                            gates.max_slowdown,
                        ),
                        hard=False,
                    )
                )
    for ident in sorted(set(base_rows) - set(cur_rows)):
        violations.append(
            Violation(
                "coverage",
                "{}-{}: baseline row missing from the current run".format(
                    *ident
                ),
                hard=False,
            )
        )
    return violations, compared


def compare_bench_arena(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    gates: RegressionGates = RegressionGates(),
) -> Tuple[List[Violation], int]:
    """Gate a fresh BENCH_arena payload against a baseline.

    Rows are matched by (protocol, family, n).  Round/bit/message
    totals are machine-independent facts of the protocol and must match
    exactly; a row whose ``matches_brandes`` flag flips to False is a
    correctness regression; wall clock gets the soft slowdown gate.
    """
    def rows_by_id(payload):
        return {
            (row.get("protocol"), row.get("family"), row.get("n")): row
            for row in payload.get("rows", ())
        }

    base_rows = rows_by_id(baseline)
    cur_rows = rows_by_id(current)
    violations: List[Violation] = []
    compared = 0
    for ident in sorted(set(base_rows) & set(cur_rows)):
        compared += 1
        base, cur = base_rows[ident], cur_rows[ident]
        label = "{}/{}-{}".format(*ident)
        for key in _STRUCTURAL_KEYS:
            if key in base and key in cur and base[key] != cur[key]:
                violations.append(
                    Violation(
                        key,
                        "{}: {} changed for an identical config: "
                        "{} -> {}".format(label, key, base[key], cur[key]),
                    )
                )
        if base.get("matches_brandes") and not cur.get(
            "matches_brandes", True
        ):
            violations.append(
                Violation(
                    "identity",
                    "{}: protocol no longer matches Brandes".format(label),
                )
            )
        if not gates.check_wall:
            continue
        if base.get("wall_seconds") and cur.get("wall_seconds"):
            ratio = cur["wall_seconds"] / base["wall_seconds"]
            if ratio > gates.max_slowdown:
                violations.append(
                    Violation(
                        "wall_seconds",
                        "{}: slowed {:.2f}x over baseline "
                        "({:.4f}s -> {:.4f}s; gate {:.2f}x)".format(
                            label, ratio, base["wall_seconds"],
                            cur["wall_seconds"], gates.max_slowdown,
                        ),
                        hard=False,
                    )
                )
    for ident in sorted(set(base_rows) - set(cur_rows)):
        violations.append(
            Violation(
                "coverage",
                "{}/{}-{}: baseline row missing from the current "
                "run".format(*ident),
                hard=False,
            )
        )
    return violations, compared


def compare_bench_faults(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    gates: RegressionGates = RegressionGates(),
) -> Tuple[List[Violation], int]:
    """Gate a fresh BENCH_faults payload against a baseline."""
    violations: List[Violation] = []
    compared = 0
    base_d = baseline.get("disabled_overhead") or {}
    cur_d = current.get("disabled_overhead") or {}
    if base_d and cur_d:
        compared += 1
        if base_d.get("identical_results") and not cur_d.get(
            "identical_results", True
        ):
            violations.append(
                Violation(
                    "identity",
                    "faults=None run no longer identical to the bare call",
                )
            )
        if gates.check_wall and base_d.get("overhead_ratio") and cur_d.get(
            "overhead_ratio"
        ):
            ratio = cur_d["overhead_ratio"] / base_d["overhead_ratio"]
            if ratio > gates.max_slowdown:
                violations.append(
                    Violation(
                        "overhead_ratio",
                        "disabled-path overhead grew {:.2f}x over "
                        "baseline".format(ratio),
                        hard=False,
                    )
                )
    base_rows = {
        row.get("drop_rate"): row
        for row in (baseline.get("recovery_overhead") or {}).get("rows", ())
    }
    cur_rows = {
        row.get("drop_rate"): row
        for row in (current.get("recovery_overhead") or {}).get("rows", ())
    }
    for rate in sorted(set(base_rows) & set(cur_rows)):
        compared += 1
        base, cur = base_rows[rate], cur_rows[rate]
        if base.get("recovered_exactly") and not cur.get(
            "recovered_exactly", True
        ):
            violations.append(
                Violation(
                    "recovery",
                    "drop rate {}: recovery is no longer exact".format(rate),
                )
            )
        if rate == 0.0 and "rounds" in base and "rounds" in cur:
            if base["rounds"] != cur["rounds"]:
                violations.append(
                    Violation(
                        "rounds",
                        "drop rate 0.0: rounds changed {} -> {}".format(
                            base["rounds"], cur["rounds"]
                        ),
                    )
                )
    return violations, compared


_SHARD_STRUCTURAL_KEYS = (
    "rounds", "bits", "messages", "edge_cut", "cross_bits",
    "cross_messages",
)


def compare_bench_shard(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    gates: RegressionGates = RegressionGates(),
) -> Tuple[List[Violation], int]:
    """Gate a fresh BENCH_shard payload against a baseline.

    Rows are matched by (family, n, protocol, workers, partitioner).
    Everything the wire determines — rounds, billed bits, messages,
    the partition's edge cut and cross-shard traffic, and the
    identical-to-event verdict — is a hard machine-independent gate;
    wall-clock and projected-speedup figures get the usual soft ratio
    gates (and are skipped entirely under ``check_wall=False``, the
    right setting for this repo's single-core CI runners).
    """
    def rows_by_id(payload):
        return {
            (
                row.get("family"), row.get("n"), row.get("protocol"),
                row.get("workers"), row.get("partitioner"),
            ): row
            for row in payload.get("rows", ())
        }

    base_rows = rows_by_id(baseline)
    cur_rows = rows_by_id(current)
    violations: List[Violation] = []
    compared = 0
    for ident in sorted(
        set(base_rows) & set(cur_rows), key=lambda k: tuple(map(str, k))
    ):
        compared += 1
        base, cur = base_rows[ident], cur_rows[ident]
        label = "{}-{}/{} W={} {}".format(*ident)
        for key in _SHARD_STRUCTURAL_KEYS:
            if key in base and key in cur and base[key] != cur[key]:
                violations.append(
                    Violation(
                        key,
                        "{}: {} changed for an identical config: "
                        "{} -> {}".format(label, key, base[key], cur[key]),
                    )
                )
        if base.get("identical_results") and not cur.get(
            "identical_results", True
        ):
            violations.append(
                Violation(
                    "identity",
                    "{}: sharded run no longer bit-identical to the "
                    "event engine".format(label),
                )
            )
        if not gates.check_wall:
            continue
        if (
            "projected_speedup" in base
            and "projected_speedup" in cur
        ):
            floor = base["projected_speedup"] * (1.0 - gates.max_speedup_drop)
            if cur["projected_speedup"] < floor:
                violations.append(
                    Violation(
                        "projected_speedup",
                        "{}: projected speedup dropped {:.0%}+: "
                        "{:.2f}x -> {:.2f}x (floor {:.2f}x)".format(
                            label, gates.max_speedup_drop,
                            base["projected_speedup"],
                            cur["projected_speedup"], floor,
                        ),
                        hard=False,
                    )
                )
        for key in ("event_seconds", "shard_seconds"):
            if key not in base or key not in cur or not base[key]:
                continue
            ratio = cur[key] / base[key]
            if ratio > gates.max_slowdown:
                violations.append(
                    Violation(
                        key,
                        "{}: {} slowed {:.2f}x over baseline "
                        "({:.4f}s -> {:.4f}s; gate {:.2f}x)".format(
                            label, key, ratio, base[key], cur[key],
                            gates.max_slowdown,
                        ),
                        hard=False,
                    )
                )
    for ident in sorted(
        set(base_rows) - set(cur_rows), key=lambda k: tuple(map(str, k))
    ):
        violations.append(
            Violation(
                "coverage",
                "{}-{}/{} W={} {}: baseline row missing from the "
                "current run".format(*ident),
                hard=False,
            )
        )
    return violations, compared


#: Checkpoint overhead ceiling: a supervised run with checkpoints on
#: may cost at most this fraction of wall time over the unsupervised
#: run (the PR acceptance figure, enforced as a wall-clock gate).
MAX_CHECKPOINT_OVERHEAD = 0.05


def compare_bench_recovery(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    gates: RegressionGates = RegressionGates(),
) -> Tuple[List[Violation], int]:
    """Gate a fresh BENCH_recovery payload against a baseline.

    Rows are matched by (family, n, protocol, scenario).  Hard gates:
    rounds/bits/messages are exact-match (recovery must be invisible in
    every wire total), ``identical_after_resume`` must stay true, and
    the restart count must replay exactly (fault plans are keyed
    hashes, so a drifting restart count means the supervisor changed
    behavior).  Soft wall gates: recovery latency ratio and the ≤ 5%
    checkpoint overhead ceiling (:data:`MAX_CHECKPOINT_OVERHEAD`).
    """
    def rows_by_id(payload):
        return {
            (
                row.get("family"), row.get("n"), row.get("protocol"),
                row.get("scenario"),
            ): row
            for row in payload.get("rows", ())
        }

    base_rows = rows_by_id(baseline)
    cur_rows = rows_by_id(current)
    violations: List[Violation] = []
    compared = 0
    for ident in sorted(
        set(base_rows) & set(cur_rows), key=lambda k: tuple(map(str, k))
    ):
        compared += 1
        base, cur = base_rows[ident], cur_rows[ident]
        label = "{}-{}/{} [{}]".format(*ident)
        for key in ("rounds", "bits", "messages", "restarts"):
            if key in base and key in cur and base[key] != cur[key]:
                violations.append(
                    Violation(
                        key,
                        "{}: {} changed for an identical recovery "
                        "scenario: {} -> {}".format(
                            label, key, base[key], cur[key]
                        ),
                    )
                )
        if base.get("identical_after_resume") and not cur.get(
            "identical_after_resume", True
        ):
            violations.append(
                Violation(
                    "identity",
                    "{}: recovered run no longer bit-identical to the "
                    "uninterrupted run".format(label),
                )
            )
        if not gates.check_wall:
            continue
        if "overhead_fraction" in cur and (
            cur["overhead_fraction"] > MAX_CHECKPOINT_OVERHEAD
        ):
            violations.append(
                Violation(
                    "overhead_fraction",
                    "{}: checkpointing costs {:.1%} of wall time "
                    "(ceiling {:.0%})".format(
                        label, cur["overhead_fraction"],
                        MAX_CHECKPOINT_OVERHEAD,
                    ),
                    hard=False,
                )
            )
        for key in ("recovery_seconds", "supervised_seconds"):
            if key not in base or key not in cur or not base[key]:
                continue
            ratio = cur[key] / base[key]
            if ratio > gates.max_slowdown:
                violations.append(
                    Violation(
                        key,
                        "{}: {} slowed {:.2f}x over baseline "
                        "({:.4f}s -> {:.4f}s; gate {:.2f}x)".format(
                            label, key, ratio, base[key], cur[key],
                            gates.max_slowdown,
                        ),
                        hard=False,
                    )
                )
    for ident in sorted(
        set(base_rows) - set(cur_rows), key=lambda k: tuple(map(str, k))
    ):
        violations.append(
            Violation(
                "coverage",
                "{}-{}/{} [{}]: baseline row missing from the current "
                "run".format(*ident),
                hard=False,
            )
        )
    return violations, compared


def compare_payloads(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    gates: RegressionGates = RegressionGates(),
) -> Tuple[List[Violation], int]:
    """Dispatch on the payload's ``benchmark`` marker."""
    kind_b = baseline.get("benchmark")
    kind_c = current.get("benchmark")
    if kind_b != kind_c:
        return (
            [
                Violation(
                    "schema",
                    "payload kinds differ: baseline {!r} vs current "
                    "{!r}".format(kind_b, kind_c),
                )
            ],
            0,
        )
    if kind_b == "engine_comparison":
        return compare_bench_engine(baseline, current, gates)
    if kind_b == "fault_layer":
        return compare_bench_faults(baseline, current, gates)
    if kind_b == "protocol_arena":
        return compare_bench_arena(baseline, current, gates)
    if kind_b == "shard_runtime":
        return compare_bench_shard(baseline, current, gates)
    if kind_b == "recovery":
        return compare_bench_recovery(baseline, current, gates)
    return (
        [Violation("schema", "unknown benchmark kind {!r}".format(kind_b))],
        0,
    )
