"""Profiling hooks for the simulator's hot sections.

A :class:`Profiler` accumulates wall-clock time and invocation counts
per named section.  The contract with the instrumented code keeps the
disabled path free:

* Instrumented call sites hold a *local* reference that is ``None``
  when profiling is off (the simulator binds it once per run), so the
  per-iteration cost of disabled profiling is a single identity check —
  there is no wrapper, no dynamic dispatch, no clock read.
* When enabled, sections are timed with explicit
  ``perf_counter()`` deltas fed to :meth:`add` — one clock read per
  boundary, no context-manager allocation in loops.

:meth:`section` offers the convenient ``with`` form for code outside
hot loops (pipeline stages, CLI commands).
"""

from __future__ import annotations

import time
from typing import Dict, List


class _Section:
    """Context manager returned by :meth:`Profiler.section`."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._start)


class Profiler:
    """Per-section wall-clock accumulator with event counters."""

    __slots__ = ("_seconds", "_calls", "_counts")

    def __init__(self):
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def add(self, name: str, seconds: float) -> None:
        """Accumulate one timed invocation of ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    def bump(self, name: str, amount: int = 1) -> None:
        """Accumulate an untimed event count (e.g. fast-forwarded rounds)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def section(self, name: str) -> _Section:
        """``with profiler.section("stage"):`` timing for non-hot code."""
        return _Section(self, name)

    # ------------------------------------------------------------------
    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __len__(self) -> int:
        return len(self._seconds) + len(self._counts)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``section -> {seconds, calls}`` plus ``counter -> {count}``."""
        out: Dict[str, Dict[str, float]] = {}
        for name, seconds in self._seconds.items():
            out[name] = {
                "seconds": seconds,
                "calls": self._calls.get(name, 0),
            }
        for name, count in self._counts.items():
            entry = out.setdefault(name, {})
            entry["count"] = count
        return out

    def table_rows(self) -> List[List[object]]:
        """Rows (section, seconds, calls/count) sorted by time descending."""
        rows: List[List[object]] = []
        for name, seconds in sorted(
            self._seconds.items(), key=lambda item: -item[1]
        ):
            rows.append(
                [name, round(seconds, 6), self._calls.get(name, 0)]
            )
        for name, count in sorted(self._counts.items()):
            rows.append([name, "-", count])
        return rows

    def __repr__(self) -> str:
        return "Profiler({} sections, {} counters)".format(
            len(self._seconds), len(self._counts)
        )
