"""Runtime invariant monitors: the paper's lemmas, watched live.

The reproduction's headline claims are *runtime properties* of the
protocol, and the protocol code already hard-asserts some of them
(:class:`~repro.exceptions.ProtocolError` on a Lemma 4 schedule clash,
:class:`~repro.exceptions.CongestViolationError` in strict mode).
Monitors complement those assertions from the *outside*: they watch the
simulator's send stream without trusting the protocol's own
bookkeeping, count how much evidence they saw, and render a per-run
verdict — so a refactor that silently broke an invariant (or silently
stopped checking it) is caught by the telemetry layer, not just by the
code under test.

Three monitors cover the three claims:

* :class:`AggregationCollisionMonitor` — Lemma 4: a node never sends
  aggregation values for two different sources in the same round.
* :class:`BandwidthMonitor` — Lemmas 3–5: the bits on one directed
  edge in one round never exceed ``c * ceil(log2 N)``.  The bits it
  reads are exact encoded frame lengths under the :mod:`repro.wire`
  codec, not estimates.
* :class:`LFloatErrorMonitor` — Theorem 1: the computed betweenness
  values stay within the compound ``O(2**-L)`` relative-error envelope
  of the exact reference.

A fourth, :class:`WireExactnessMonitor`, guards the *meta*-invariant
the bandwidth numbers rest on: every billed bit count equals the
length of the message's real encoded frame.  It re-encodes every send
through the codec, so it is not part of :func:`default_monitors`.

Every monitor runs in one of three modes: ``"record"`` (default —
violations are stored and reported in the verdict), ``"warn"``
(additionally emits a :class:`RuntimeWarning`), or ``"raise"``
(raises :class:`~repro.exceptions.InvariantViolationError` at the
offending event, stopping the run at the first broken invariant).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import InvariantViolationError

#: Recognized monitor modes.
MODES = ("record", "warn", "raise")

#: How many violation descriptions a monitor stores verbatim; further
#: violations are counted but not described (a broken invariant tends
#: to fire on every round — the first few sites are the useful ones).
MAX_STORED_VIOLATIONS = 20


@dataclass
class MonitorVerdict:
    """One monitor's post-run judgement."""

    monitor: str
    ok: bool
    #: how many opportunities to violate the invariant were examined
    #: (sends, edge-rounds, compared values) — a passing verdict with
    #: ``checked == 0`` means "nothing observed", not "invariant holds".
    checked: int
    violation_count: int = 0
    violations: List[str] = field(default_factory=list)
    #: monitor-specific numbers (worst load, measured error, bound...).
    detail: Dict[str, Any] = field(default_factory=dict)
    #: set when the monitor did not apply to this run (e.g. the LFloat
    #: monitor on an exact-arithmetic run).
    skipped: bool = False

    @property
    def status(self) -> str:
        if self.skipped:
            return "SKIPPED"
        return "OK" if self.ok else "VIOLATED"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "monitor": self.monitor,
            "status": self.status,
            "ok": self.ok,
            "skipped": self.skipped,
            "checked": self.checked,
            "violation_count": self.violation_count,
            "violations": list(self.violations),
            "detail": dict(self.detail),
        }


class Monitor:
    """Base class: mode handling and violation accounting.

    Subclasses override any of the three hooks the
    :class:`~repro.obs.telemetry.Telemetry` facade drives:

    * :meth:`on_send` — once per enqueued message (only called if the
      subclass actually overrides it, so no per-send cost otherwise);
    * :meth:`on_round_end` — once per stepped round, with the round's
      per-edge ``(sender, receiver) -> [messages, bits]`` accounting;
    * :meth:`finalize` — once after the run, with the pipeline result.
    """

    name = "monitor"

    def __init__(self, mode: str = "record"):
        if mode not in MODES:
            raise ValueError(
                "unknown monitor mode {!r} (expected one of {})".format(
                    mode, MODES
                )
            )
        self.mode = mode
        self.checked = 0
        self.violation_count = 0
        self.violations: List[str] = []
        self.skipped = False

    # -- hooks ----------------------------------------------------------
    def on_run_start(self, simulator) -> None:
        """Bind per-run constants (bit budget, wire format, graph size)."""

    def on_send(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        message: Any,
        bits: int,
    ) -> None:
        """Observe one enqueued message."""

    def on_round_end(
        self,
        round_number: int,
        edge_load: Dict[Tuple[int, int], List[int]],
    ) -> None:
        """Observe one completed round's per-edge accounting.

        ``edge_load`` is the simulator's reusable buffer — read it,
        never store or mutate it.
        """

    def finalize(self, result) -> None:
        """Post-run check against the pipeline result (duck-typed
        :class:`~repro.core.pipeline.DistributedBCResult`)."""

    # -- verdict --------------------------------------------------------
    def _violation(self, description: str) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_STORED_VIOLATIONS:
            self.violations.append(description)
        if self.mode == "warn":
            warnings.warn(
                "[{}] {}".format(self.name, description), RuntimeWarning,
                stacklevel=3,
            )
        elif self.mode == "raise":
            raise InvariantViolationError(self.name, description)

    def detail(self) -> Dict[str, Any]:
        """Monitor-specific verdict numbers; override to add."""
        return {}

    def verdict(self) -> MonitorVerdict:
        return MonitorVerdict(
            monitor=self.name,
            ok=self.violation_count == 0,
            checked=self.checked,
            violation_count=self.violation_count,
            violations=list(self.violations),
            detail=self.detail(),
            skipped=self.skipped,
        )

    def __repr__(self) -> str:
        return "{}(mode={}, checked={}, violations={})".format(
            type(self).__name__, self.mode, self.checked, self.violation_count
        )


class AggregationCollisionMonitor(Monitor):
    """Lemma 4: one aggregation source per node per round.

    The collision-free schedule sends node u's value for source s at
    round ``base + T_s + D - d(s, u)``; Lemma 4 proves no two sources
    ever share a node's send round.  The monitor watches every
    aggregation-value send (messages exposing a ``source`` attribute
    and named ``AggValue``) and flags a sender that emits values for
    two distinct sources in one round.  Fan-out to several predecessors
    for the *same* source is legitimate and counted once.
    """

    name = "lemma4_aggregation_collision"

    def __init__(self, mode: str = "record"):
        super().__init__(mode)
        #: sender -> source seen this round (cleared per round).
        self._round_sources: Dict[int, int] = {}
        self._max_sources_per_node_round = 0

    def on_send(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        message: Any,
        bits: int,
    ) -> None:
        if type(message).__name__ != "AggValue":
            return
        source = message.source
        seen = self._round_sources.get(sender)
        if seen is None:
            self.checked += 1
            self._round_sources[sender] = source
            if self._max_sources_per_node_round == 0:
                self._max_sources_per_node_round = 1
        elif seen != source:
            self._max_sources_per_node_round = 2
            self._violation(
                "node {} sent aggregation values for sources {} and {} in "
                "round {} — Lemma 4 forbids the collision".format(
                    sender, seen, source, round_number
                )
            )

    def on_round_end(
        self,
        round_number: int,
        edge_load: Dict[Tuple[int, int], List[int]],
    ) -> None:
        if self._round_sources:
            self._round_sources.clear()

    def detail(self) -> Dict[str, Any]:
        return {
            "node_rounds_with_agg_sends": self.checked,
            "max_sources_per_node_round": self._max_sources_per_node_round,
        }


class BandwidthMonitor(Monitor):
    """Lemmas 3–5: per-edge per-round load within ``c * ceil(log2 N)``.

    Reads the simulator's per-round edge accounting (the same numbers
    strict mode enforces) and records the worst directed-edge load it
    saw.  Unlike strict mode — which aborts the run at the first
    overflow — the monitor can *survey* a non-strict run, reporting
    every offending edge-round; and it can check against a budget
    different from the one the simulator enforces via the
    ``congest_factor`` override.

    Parameters
    ----------
    congest_factor:
        Budget multiplier c; ``None`` (default) adopts the simulator's
        own configured budget at run start.
    """

    name = "bandwidth_budget"

    def __init__(self, mode: str = "record", congest_factor: Optional[int] = None):
        super().__init__(mode)
        self.congest_factor = congest_factor
        self.budget: Optional[int] = None
        self.max_edge_bits = 0
        self._worst: Optional[Tuple[int, int, int]] = None

    def on_run_start(self, simulator) -> None:
        if self.congest_factor is None:
            self.budget = simulator.bit_budget
        else:
            # Mirror the simulator's budget formula, including its
            # 4-bit floor for degenerate tiny networks.
            self.budget = self.congest_factor * max(4, simulator.wire.id_bits)

    def on_round_end(
        self,
        round_number: int,
        edge_load: Dict[Tuple[int, int], List[int]],
    ) -> None:
        budget = self.budget
        if budget is None:
            return
        max_bits = self.max_edge_bits
        for key, load in edge_load.items():
            bits = load[1]
            self.checked += 1
            if bits > max_bits:
                max_bits = bits
                self._worst = (round_number, key[0], key[1])
            if bits > budget:
                self._violation(
                    "edge {} -> {} carries {} bits in round {} but the "
                    "budget is {} bits/edge/round".format(
                        key[0], key[1], bits, round_number, budget
                    )
                )
        self.max_edge_bits = max_bits

    def detail(self) -> Dict[str, Any]:
        return {
            "budget_bits": self.budget,
            "max_edge_bits_per_round": self.max_edge_bits,
            "worst_edge": self._worst,
            "edge_rounds_checked": self.checked,
        }


class LFloatErrorMonitor(Monitor):
    """Theorem 1: the L-float betweenness error stays inside the envelope.

    After the run, compares every node's computed betweenness against
    the exact centralized reference (Brandes with rational arithmetic)
    and checks the maximum relative error against the compound
    Theorem 1 bound for the run's precision L
    (:func:`repro.arithmetic.errors.theorem1_bound`).  The reference
    costs one centralized O(N·M) pass — cheap next to the simulation,
    but this is a *verification* monitor, not a per-message one.

    The monitor skips (verdict ``SKIPPED``) when the run did not use
    L-float arithmetic or produced no betweenness values (APSP-only
    configurations).
    """

    name = "theorem1_lfloat_error"

    def __init__(self, mode: str = "record"):
        super().__init__(mode)
        self.measured_error: Optional[float] = None
        self.bound: Optional[float] = None
        self.precision: Optional[int] = None

    def finalize(self, result) -> None:
        arithmetic = getattr(result, "arithmetic", "")
        betweenness = getattr(result, "betweenness", None)
        if not arithmetic.startswith("lfloat-") or not betweenness:
            self.skipped = True
            return
        from repro.arithmetic.errors import theorem1_bound
        from repro.centrality.brandes import brandes_betweenness

        self.precision = int(arithmetic.split("-", 1)[1])
        self.bound = theorem1_bound(
            self.precision, result.graph.num_nodes, result.diameter
        )
        reference = brandes_betweenness(result.graph, exact=True)
        worst = 0.0
        for node, exact in reference.items():
            if not exact:
                continue
            self.checked += 1
            error = abs(betweenness[node] / float(exact) - 1.0)
            if error > worst:
                worst = error
        self.measured_error = worst
        if worst > self.bound:
            self._violation(
                "max relative betweenness error {:.3e} exceeds the "
                "Theorem 1 envelope {:.3e} for L={}".format(
                    worst, self.bound, self.precision
                )
            )

    def detail(self) -> Dict[str, Any]:
        return {
            "precision": self.precision,
            "max_relative_error": self.measured_error,
            "theorem1_bound": self.bound,
            "values_compared": self.checked,
        }


class WireExactnessMonitor(Monitor):
    """Billed bits == encoded frame length, for every send.

    The bandwidth claims are only as good as the bit accounting, so
    this monitor re-encodes each registered message through
    :func:`repro.wire.encode_frame` and compares the frame length with
    the bits the simulator charged.  Messages without a wire tag (or
    with opaque payloads) are counted in ``unencodable_sends`` rather
    than failed — they can still be *sized*, just not framed.

    This is the monitor form of the simulator's ``frame_audit`` flag
    (which additionally checks per-edge coalescing); per-send
    re-encoding is expensive, so it is not in :func:`default_monitors`.
    """

    name = "wire_exactness"

    def __init__(self, mode: str = "record"):
        super().__init__(mode)
        self._wire = None
        self.unencodable_sends = 0

    def on_run_start(self, simulator) -> None:
        self._wire = simulator.wire

    def on_send(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        message: Any,
        bits: int,
    ) -> None:
        from repro.wire import encode_frame

        wire = self._wire
        if wire is None:
            return
        if type(message).wire_tag is None or (
            type(message).WIRE_LAYOUT is None
            and not hasattr(message, "_encode_payload")
        ):
            self.unencodable_sends += 1
            return
        self.checked += 1
        _word, frame_bits = encode_frame((message,), wire)
        if frame_bits != bits:
            self._violation(
                "round {}: {} from {} to {} billed {} bits but encodes "
                "to {} bits".format(
                    round_number,
                    type(message).__name__,
                    sender,
                    receiver,
                    bits,
                    frame_bits,
                )
            )

    def detail(self) -> Dict[str, Any]:
        return {
            "sends_reencoded": self.checked,
            "unencodable_sends": self.unencodable_sends,
        }


class SelfHealingMonitor(Monitor):
    """Ack/retransmit bookkeeping of the resilient transport, audited.

    Watches the transport traffic of a :mod:`repro.faults` resilient
    run from the outside: every ``Envelope``/``Fence`` frame opens an
    obligation (the sequence number must eventually be covered by a
    cumulative ``Ack(upto)`` on the reverse edge), every ack discharges
    all obligations at or below ``upto``.  A run that *finishes* while
    data frames remain unacknowledged means the go-back-N loop declared
    victory early — the self-healing invariant is broken.

    A run that ends in a partial result (an unrecoverable crash plan)
    legitimately strands obligations on the dead channels, so
    :meth:`finalize` only flags complete runs.  On a run without
    transport traffic the verdict is ``SKIPPED``.
    """

    name = "self_healing_acks"

    #: transport message type names this monitor recognizes.
    _DATA_TYPES = ("Envelope", "Fence")

    def __init__(self, mode: str = "record"):
        super().__init__(mode)
        #: directed edge -> set of unacknowledged sequence numbers.
        self._unacked: Dict[Tuple[int, int], set] = {}
        self.frames_seen = 0
        self.acks_seen = 0
        self.retransmissions = 0

    def on_send(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        message: Any,
        bits: int,
    ) -> None:
        type_name = type(message).__name__
        if type_name in self._DATA_TYPES:
            self.frames_seen += 1
            if getattr(message, "retransmit", False):
                self.retransmissions += 1
            self._unacked.setdefault((sender, receiver), set()).add(
                message.seq
            )
        elif type_name == "Ack":
            # The ack travels the reverse edge and discharges every
            # sequence number at or below ``upto`` (go-back-N).
            self.acks_seen += 1
            pending = self._unacked.get((receiver, sender))
            if pending:
                upto = message.upto
                pending.difference_update(
                    [seq for seq in pending if seq <= upto]
                )

    def finalize(self, result) -> None:
        if self.frames_seen == 0:
            self.skipped = True
            return
        self.checked = self.frames_seen
        completeness = getattr(result, "completeness", None)
        if completeness is not None and not completeness.complete:
            # Stranded obligations on crashed channels are the expected
            # shape of a partial run; report them in detail() only.
            return
        for (sender, receiver), pending in sorted(self._unacked.items()):
            if pending:
                self._violation(
                    "run completed but channel {} -> {} still has {} "
                    "unacknowledged frame(s) (seqs {})".format(
                        sender,
                        receiver,
                        len(pending),
                        sorted(pending)[:5],
                    )
                )

    def detail(self) -> Dict[str, Any]:
        stranded = {
            "{}->{}".format(s, r): len(pending)
            for (s, r), pending in sorted(self._unacked.items())
            if pending
        }
        return {
            "frames_seen": self.frames_seen,
            "acks_seen": self.acks_seen,
            "retransmissions": self.retransmissions,
            "unacked_channels": stranded,
        }


def default_monitors(mode: str = "record") -> List[Monitor]:
    """The standard trio covering Lemma 4, Lemmas 3–5 and Theorem 1."""
    return [
        AggregationCollisionMonitor(mode),
        BandwidthMonitor(mode),
        LFloatErrorMonitor(mode),
    ]
