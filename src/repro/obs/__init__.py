"""Observability for the CONGEST reproduction: metrics, phases, monitors.

The :mod:`repro.obs` package is strictly *downstream* of the simulator
and protocol packages: it imports :mod:`repro.core` and
:mod:`repro.congest` types where needed, but nothing in those packages
imports ``repro.obs`` — telemetry reaches them only as a duck-typed
``telemetry=None`` parameter, so the core stays importable (and fast)
without this package in the picture.

Entry point: build a :class:`Telemetry` (usually via
:meth:`Telemetry.with_monitors`, or :meth:`Telemetry.with_streaming`
for live output) and pass it to
:func:`repro.core.pipeline.distributed_betweenness` or a
:class:`repro.congest.simulator.Simulator`.

Beyond the per-run facade, the package hosts the observability *suite*:
the streaming bus (:mod:`repro.obs.stream`), the schema validator and
partial-log reader (:mod:`repro.obs.schema`), the run-history ledger
and regression gates (:mod:`repro.obs.history`), trace-diff forensics
(:mod:`repro.obs.tracediff`) and the Chrome trace-event exporter
(:mod:`repro.obs.chrometrace`).
"""

from repro.obs.chrometrace import chrome_trace, write_chrome_trace
from repro.obs.history import (
    HistoryLedger,
    RegressionGates,
    Violation,
    compare_payloads,
    entry_from_result,
    entry_from_rows,
    git_revision,
    graph_fingerprint,
    run_key,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.monitors import (
    AggregationCollisionMonitor,
    BandwidthMonitor,
    LFloatErrorMonitor,
    Monitor,
    MonitorVerdict,
    SelfHealingMonitor,
    WireExactnessMonitor,
    default_monitors,
)
from repro.obs.profiler import Profiler
from repro.obs.schema import load_jsonl_rows, validate_jsonl_text, validate_rows
from repro.obs.spans import PhaseSpan, PhaseTracker
from repro.obs.stream import (
    BusSubscriber,
    ConsoleProgress,
    JsonlStreamWriter,
    ProgressEstimator,
    TelemetryBus,
    schedule_for_simulator,
)
from repro.obs.telemetry import METRICS_SCHEMA, Telemetry
from repro.obs.tracediff import (
    Divergence,
    diff_report,
    first_divergence,
    round_frame_diff,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Monitor",
    "MonitorVerdict",
    "AggregationCollisionMonitor",
    "BandwidthMonitor",
    "LFloatErrorMonitor",
    "SelfHealingMonitor",
    "WireExactnessMonitor",
    "default_monitors",
    "Profiler",
    "PhaseSpan",
    "PhaseTracker",
    "Telemetry",
    "METRICS_SCHEMA",
    # streaming bus
    "TelemetryBus",
    "BusSubscriber",
    "JsonlStreamWriter",
    "ProgressEstimator",
    "ConsoleProgress",
    "schedule_for_simulator",
    # schema / partial logs
    "load_jsonl_rows",
    "validate_rows",
    "validate_jsonl_text",
    # run history + regression gates
    "HistoryLedger",
    "RegressionGates",
    "Violation",
    "compare_payloads",
    "entry_from_result",
    "entry_from_rows",
    "git_revision",
    "graph_fingerprint",
    "run_key",
    # forensics
    "Divergence",
    "first_divergence",
    "round_frame_diff",
    "diff_report",
    "chrome_trace",
    "write_chrome_trace",
]
