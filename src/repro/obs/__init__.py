"""Observability for the CONGEST reproduction: metrics, phases, monitors.

The :mod:`repro.obs` package is strictly *downstream* of the simulator
and protocol packages: it imports :mod:`repro.core` and
:mod:`repro.congest` types where needed, but nothing in those packages
imports ``repro.obs`` — telemetry reaches them only as a duck-typed
``telemetry=None`` parameter, so the core stays importable (and fast)
without this package in the picture.

Entry point: build a :class:`Telemetry` (usually via
:meth:`Telemetry.with_monitors`) and pass it to
:func:`repro.core.pipeline.distributed_betweenness` or a
:class:`repro.congest.simulator.Simulator`.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.monitors import (
    AggregationCollisionMonitor,
    BandwidthMonitor,
    LFloatErrorMonitor,
    Monitor,
    MonitorVerdict,
    SelfHealingMonitor,
    WireExactnessMonitor,
    default_monitors,
)
from repro.obs.profiler import Profiler
from repro.obs.spans import PhaseSpan, PhaseTracker
from repro.obs.telemetry import METRICS_SCHEMA, Telemetry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Monitor",
    "MonitorVerdict",
    "AggregationCollisionMonitor",
    "BandwidthMonitor",
    "LFloatErrorMonitor",
    "SelfHealingMonitor",
    "WireExactnessMonitor",
    "default_monitors",
    "Profiler",
    "PhaseSpan",
    "PhaseTracker",
    "Telemetry",
    "METRICS_SCHEMA",
]
