"""Low-overhead metrics primitives for the telemetry subsystem.

Three instrument kinds cover everything the simulator and protocol code
need to report:

* :class:`Counter` — a monotone total (messages sent, collisions
  checked, idle rounds skipped).
* :class:`Gauge` — a last-write-wins value (rounds, diameter, the
  per-edge budget in force).
* :class:`Histogram` — a streaming summary (count / sum / min / max)
  plus fixed power-of-two buckets, cheap enough to observe per round.

A :class:`MetricsRegistry` owns instruments by name with get-or-create
semantics, so independent subsystems can contribute to one namespace
without coordination.  Instruments are plain attribute updates — no
locks, no allocation per observation — because the simulator may drive
them from its per-round hot path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(
                "counter {!r} cannot decrease (got {})".format(
                    self.name, amount
                )
            )
        self.value += amount

    def snapshot(self) -> Dict[str, Number]:
        return {"value": self.value}

    def __repr__(self) -> str:
        return "Counter({}={})".format(self.name, self.value)


class Gauge:
    """A value that can move both ways; reports the last write."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Optional[Number]]:
        return {"value": self.value}

    def __repr__(self) -> str:
        return "Gauge({}={})".format(self.name, self.value)


class Histogram:
    """A streaming distribution summary with power-of-two buckets.

    Buckets count observations ``v`` with ``v <= 2**i`` for
    ``i = 0 .. bucket_count - 1``; a final overflow bucket catches the
    rest.  Power-of-two bounds match the quantities observed here
    (bits, message counts, round gaps), which span orders of magnitude.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    kind = "histogram"

    #: Default number of power-of-two buckets (covers up to 2**20).
    BUCKETS = 21

    def __init__(self, name: str, bucket_count: int = BUCKETS):
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        #: buckets[i] counts observations <= 2**i; buckets[-1] overflow.
        self.buckets: List[int] = [0] * (bucket_count + 1)

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # Index of the first power-of-two bound >= value.
        if value <= 1:
            index = 0
        else:
            index = int(value - 1).bit_length()
        if index >= len(self.buckets) - 1:
            index = len(self.buckets) - 1
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": list(self.buckets),
        }

    def __repr__(self) -> str:
        return "Histogram({}: n={}, mean={:.3g})".format(
            self.name, self.count, self.mean
        )


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of instruments with get-or-create access.

    Names are dotted paths by convention (``engine.steps``,
    ``run.rounds``); the registry enforces that one name maps to one
    instrument kind for its whole lifetime.
    """

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, factory, kind: str) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory(name)
        elif instrument.kind != kind:
            raise ValueError(
                "metric {!r} already registered as a {}, not a {}".format(
                    name, instrument.kind, kind
                )
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram, "histogram")

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Tuple[str, Instrument]]:
        return iter(sorted(self._instruments.items()))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """``name -> {kind, ...instrument snapshot}``, name-sorted."""
        return {
            name: dict(kind=instrument.kind, **instrument.snapshot())
            for name, instrument in sorted(self._instruments.items())
        }

    def __repr__(self) -> str:
        return "MetricsRegistry({} metrics)".format(len(self._instruments))
