"""Round-complexity fitting: checking the O(N) claim empirically.

Theorem 3 says the algorithm finishes in O(N) rounds.  The scaling
benchmarks run the protocol on growing instances of a graph family and
fit ``rounds ≈ a * N + b``; a good linear fit (R² close to 1) with a
modest slope is the measurable form of the theorem.  A log-log slope
estimate is also provided to expose any super-linear behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class LinearFit:
    """Least-squares fit of y = slope * x + intercept."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares for a single predictor (pure Python)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matched samples")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("all x values identical")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def power_law_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Slope of log y against log x: ~1 for linear growth.

    This is the one-number answer to "is it O(N)?": an exponent
    meaningfully above 1 would falsify Theorem 3.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise ValueError("need at least two positive samples")
    logs_x = [math.log(x) for x, _ in pairs]
    logs_y = [math.log(y) for _, y in pairs]
    return linear_fit(logs_x, logs_y).slope


def rounds_per_node(samples: Sequence[Tuple[int, int]]) -> List[float]:
    """rounds / N for each (N, rounds) sample — should stay bounded."""
    return [rounds / n for n, rounds in samples if n > 0]
