"""Experiment grid runner: sweep graph families × sizes × arithmetics.

The scaling and compliance benchmarks all share a shape — build a grid
of instances, run the protocol on each, collect per-run metrics, fit or
tabulate.  :class:`ExperimentRunner` factors that shape out and adds
CSV export so results can leave the terminal.

Independent instances of a grid don't share state, so they can run in
worker processes: :func:`run_many` fans a batch of graphs over a
``multiprocessing`` pool and returns plain :class:`RunRecord` rows
(picklable by construction), falling back to a serial loop when a pool
isn't available or isn't worth it.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.complexity import LinearFit, linear_fit
from repro.analysis.tables import render_table
from repro.core.pipeline import distributed_betweenness
from repro.graphs.graph import Graph

PathLike = Union[str, "os.PathLike[str]"]


@dataclass
class RunRecord:
    """Metrics of one protocol run on one instance."""

    family: str
    graph_name: str
    num_nodes: int
    num_edges: int
    diameter: int
    rounds: int
    messages: int
    bits: int
    max_edge_bits: int
    arithmetic: str
    extra: Dict[str, float] = field(default_factory=dict)

    FIELDS = (
        "family",
        "graph_name",
        "num_nodes",
        "num_edges",
        "diameter",
        "rounds",
        "messages",
        "bits",
        "max_edge_bits",
        "arithmetic",
    )

    def as_row(self) -> List:
        """Base fields + sorted extras, for tables and CSV."""
        row = [getattr(self, name) for name in self.FIELDS]
        row.extend(value for _key, value in sorted(self.extra.items()))
        return row


class ExperimentRunner:
    """Run the distributed protocol over a grid of graph instances.

    Parameters
    ----------
    arithmetic:
        Arithmetic mode passed to every run.
    metrics:
        Optional map of name -> callable(result) adding custom columns
        (e.g. error against a reference).
    run:
        Override the runner itself (default:
        :func:`repro.core.distributed_betweenness`); must return an
        object with the ``rounds``/``diameter``/``stats`` interface.
    engine:
        Simulator engine passed to every run (``"event"`` by default,
        matching :func:`repro.core.distributed_betweenness`).
    workers, partitioner:
        Shard-runtime knobs forwarded to every run (meaningful with
        ``engine="shard"`` only).  See :func:`run_many` for how the
        pool interacts with sharded runs.
    protocol:
        Registered protocol name passed to every run (None means the
        registry default, ``hua-bc``).  Kept as a name rather than a
        descriptor so grids stay picklable across the worker pool.
    collect_phases:
        Attach a phases-only :class:`~repro.obs.Telemetry` to every run
        and add one ``phase_<name>_rounds`` column per protocol phase
        to each record's ``extra``.  Incompatible with a custom ``run``
        callable (the runner cannot thread telemetry through it).
    """

    def __init__(
        self,
        arithmetic: str = "lfloat",
        metrics: Optional[Dict[str, Callable]] = None,
        run: Optional[Callable] = None,
        engine: str = "auto",
        collect_phases: bool = False,
        protocol: Optional[str] = None,
        workers: int = 1,
        partitioner: str = "greedy",
    ):
        self.arithmetic = arithmetic
        self.engine = engine
        self.workers = workers
        self.partitioner = partitioner
        self.protocol = protocol
        self.metrics = metrics or {}
        self.collect_phases = collect_phases
        self._custom_run = run is not None
        if self._custom_run and collect_phases:
            raise ValueError(
                "collect_phases needs the default runner; a custom run "
                "callable would have to accept telemetry itself"
            )
        self._run = run or (
            lambda graph, telemetry=None: distributed_betweenness(
                graph,
                arithmetic=self.arithmetic,
                engine=self.engine,
                workers=self.workers,
                partitioner=self.partitioner,
                telemetry=telemetry,
                protocol=self.protocol,
            )
        )
        self.records: List[RunRecord] = []

    # ------------------------------------------------------------------
    def run_family(self, family: str, graphs: Iterable[Graph]) -> List[RunRecord]:
        """Execute the protocol on every instance of ``family``."""
        out: List[RunRecord] = []
        for graph in graphs:
            if self.collect_phases:
                from repro.obs import Telemetry

                telemetry = Telemetry()
                result = self._run(graph, telemetry)
            else:
                telemetry = None
                result = self._run(graph)
            extra = {name: fn(result) for name, fn in self.metrics.items()}
            if telemetry is not None:
                extra.update(_phase_columns(telemetry))
            record = RunRecord(
                family=family,
                graph_name=graph.name,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                diameter=result.diameter,
                rounds=result.rounds,
                messages=result.stats.message_count,
                bits=result.stats.bit_count,
                max_edge_bits=result.stats.max_edge_bits_per_round,
                arithmetic=getattr(result, "arithmetic", self.arithmetic),
                extra=extra,
            )
            out.append(record)
        self.records.extend(out)
        return out

    def run_family_parallel(
        self,
        family: str,
        graphs: Iterable[Graph],
        processes: Optional[int] = None,
        stream_dir: Optional[PathLike] = None,
    ) -> List[RunRecord]:
        """Like :meth:`run_family`, fanned out via :func:`run_many`.

        Custom ``metrics``/``run`` callables are not supported here —
        they would have to cross a process boundary; configure the
        runner with the defaults or use the serial :meth:`run_family`.
        """
        if self.metrics or self._custom_run:
            raise ValueError(
                "custom metrics/run callables are not picklable across "
                "the worker pool; use run_family() for those grids"
            )
        out = run_many(
            graphs,
            family=family,
            arithmetic=self.arithmetic,
            engine=self.engine,
            processes=processes,
            collect_phases=self.collect_phases,
            stream_dir=stream_dir,
            protocol=self.protocol,
            workers=self.workers,
            partitioner=self.partitioner,
        )
        self.records.extend(out)
        return out

    # ------------------------------------------------------------------
    # analysis over collected records
    # ------------------------------------------------------------------
    def families(self) -> List[str]:
        """Distinct family labels, in first-run order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.family, None)
        return list(seen)

    def fit_rounds(self, family: str) -> LinearFit:
        """Least-squares fit of rounds against N for one family."""
        samples = [r for r in self.records if r.family == family]
        return linear_fit(
            [r.num_nodes for r in samples], [r.rounds for r in samples]
        )

    def table(self, family: Optional[str] = None) -> str:
        """Render collected records as an aligned text table."""
        records = [
            r
            for r in self.records
            if family is None or r.family == family
        ]
        extra_keys = sorted(
            {key for r in records for key in r.extra}
        )
        headers = list(RunRecord.FIELDS) + extra_keys
        return render_table(headers, [r.as_row() for r in records])

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_csv(self, path: Optional[PathLike] = None) -> str:
        """Write records as CSV; returns the CSV text."""
        extra_keys = sorted({key for r in self.records for key in r.extra})
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(list(RunRecord.FIELDS) + extra_keys)
        for record in self.records:
            row = [getattr(record, name) for name in RunRecord.FIELDS]
            row.extend(record.extra.get(key, "") for key in extra_keys)
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as fh:
                fh.write(text)
        return text


def _safe_name(name: str) -> str:
    """Graph names can contain path-hostile characters; keep it boring."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


def _phase_columns(telemetry) -> Dict[str, float]:
    """``phase_<name>_rounds`` extras from a run's closed phase spans."""
    return {
        "phase_{}_rounds".format(name): rounds
        for name, rounds in telemetry.phases.rounds_by_phase().items()
    }


# ----------------------------------------------------------------------
# multiprocessing fan-out
# ----------------------------------------------------------------------
def default_max_workers() -> int:
    """The pool width :func:`run_many` uses when ``processes`` is None.

    One worker per CPU (``os.cpu_count()``), floored at 1.  Exposed so
    callers sizing a grid — or splitting the machine between the pool
    and the shard runtime's own worker processes — can see the default
    instead of re-deriving it.
    """
    return os.cpu_count() or 1


_Task = Tuple[
    str, Graph, str, str, bool, Optional[str], Optional[str], int, str
]


def _run_one(task: _Task) -> RunRecord:
    """Worker body: one protocol run -> one plain-data record.

    Module-level (not a closure) so a ``multiprocessing`` pool can
    pickle it; the graph rides along in the task tuple, and the
    protocol travels as its registry name (descriptors hold closures).
    """
    (
        family, graph, arithmetic, engine, collect_phases, stream_path,
        protocol, workers, partitioner,
    ) = task
    if stream_path is not None:
        from repro.obs import Telemetry

        # Live JSONL per run: a killed worker still leaves its rows.
        telemetry = Telemetry.with_streaming(
            jsonl_path=stream_path, progress=True
        )
    elif collect_phases:
        from repro.obs import Telemetry

        telemetry = Telemetry()
    else:
        telemetry = None
    result = distributed_betweenness(
        graph,
        arithmetic=arithmetic,
        engine=engine,
        workers=workers,
        partitioner=partitioner,
        telemetry=telemetry,
        protocol=protocol,
    )
    extra = _phase_columns(telemetry) if telemetry is not None else {}
    if telemetry is not None and getattr(telemetry, "bus", None) is not None:
        telemetry.bus.close()
    return RunRecord(
        family=family,
        graph_name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        diameter=result.diameter,
        rounds=result.rounds,
        messages=result.stats.message_count,
        bits=result.stats.bit_count,
        max_edge_bits=result.stats.max_edge_bits_per_round,
        arithmetic=result.arithmetic,
        extra=extra,
    )


def run_many(
    graphs: Iterable[Graph],
    family: str = "batch",
    arithmetic: str = "lfloat",
    engine: str = "auto",
    processes: Optional[int] = None,
    collect_phases: bool = False,
    stream_dir: Optional[PathLike] = None,
    protocol: Optional[str] = None,
    workers: int = 1,
    partitioner: str = "greedy",
) -> List[RunRecord]:
    """Run the protocol on every graph, fanning out across processes.

    Protocol runs are CPU-bound pure Python, so threads cannot
    parallelize them; separate processes can.  Each worker executes
    :func:`_run_one` and ships back a picklable :class:`RunRecord`.
    Records are returned in input order regardless of completion order.

    Parameters
    ----------
    graphs:
        The instances to run (must be picklable, which the plain
        :class:`~repro.graphs.graph.Graph` is).
    family:
        Label stamped on every record.
    arithmetic, engine:
        Passed to :func:`repro.core.distributed_betweenness`.
    processes:
        Worker count; defaults to :func:`default_max_workers`
        (``os.cpu_count()``) capped at the number of graphs.
        ``processes <= 1`` (or a pool that cannot be created, e.g. on
        restricted platforms) runs serially in this process — same
        records, no pool.
    collect_phases:
        Add ``phase_<name>_rounds`` extras per record (phase spans are
        plain numbers, so they cross the pool boundary untouched).
    stream_dir:
        Stream each run's telemetry live to
        ``<stream_dir>/<family>-<index>-<name>.jsonl`` (flushed per
        event, so a crashed worker leaves a readable partial log);
        implies per-run telemetry with phase collection.
    protocol:
        Registered protocol name for every run (None → registry
        default).  A string, not a descriptor, so tasks stay picklable.
    workers, partitioner:
        Shard-runtime knobs forwarded to every run (meaningful with
        ``engine="shard"`` only).  The grid pool and the shard runtime
        both spawn processes, so combining them would oversubscribe
        the machine W-fold: when the pool actually fans out, sharded
        runs are forced back to ``workers=1`` (with a warning) — one
        process per run, parallelism across the grid.  A serial grid
        (``processes <= 1``) keeps the requested worker count.
    """
    if stream_dir is not None:
        os.makedirs(stream_dir, exist_ok=True)
    graphs = list(graphs)
    if not graphs:
        return []
    if processes is None:
        processes = default_max_workers()
    processes = min(processes, len(graphs))
    if engine == "shard" and workers != 1 and processes > 1:
        import warnings

        warnings.warn(
            "run_many: engine='shard' with workers={} inside a {}-process "
            "pool would oversubscribe the machine; forcing workers=1 "
            "(run serially with processes=1 to keep the shard "
            "fan-out)".format(workers, processes),
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    tasks = [
        (
            family,
            graph,
            arithmetic,
            engine,
            collect_phases,
            (
                os.path.join(
                    str(stream_dir),
                    "{}-{:03d}-{}.jsonl".format(
                        family, index, _safe_name(graph.name)
                    ),
                )
                if stream_dir is not None
                else None
            ),
            protocol,
            workers,
            partitioner,
        )
        for index, graph in enumerate(graphs)
    ]
    if processes <= 1:
        return [_run_one(task) for task in tasks]
    try:
        from multiprocessing import Pool
    except ImportError:  # pragma: no cover - restricted platforms
        return [_run_one(task) for task in tasks]
    try:
        with Pool(processes=processes) as pool:
            return pool.map(_run_one, tasks)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed envs
        return [_run_one(task) for task in tasks]
