"""Plain-text table rendering for benchmark and experiment output.

The benchmark harness prints the same rows the paper's claims describe
(round counts, error bounds, gadget dichotomies); this tiny renderer
keeps that output aligned and diff-friendly without any dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_value(value: Any) -> str:
    """Render one cell: floats get 6 significant digits, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return "{:.3e}".format(value)
        return "{:.6g}".format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table with an optional title line."""
    str_rows: List[List[str]] = [
        [format_value(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> None:
    """Print :func:`render_table` output followed by a blank line."""
    print(render_table(headers, rows, title=title))
    print()
