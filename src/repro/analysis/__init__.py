"""Experiment helpers: table rendering and complexity fitting."""

from repro.analysis.complexity import (
    LinearFit,
    linear_fit,
    power_law_exponent,
    rounds_per_node,
)
from repro.analysis.runner import (
    ExperimentRunner,
    RunRecord,
    default_max_workers,
    run_many,
)
from repro.analysis.tables import format_value, print_table, render_table

__all__ = [
    "ExperimentRunner",
    "LinearFit",
    "RunRecord",
    "default_max_workers",
    "run_many",
    "format_value",
    "linear_fit",
    "power_law_exponent",
    "print_table",
    "render_table",
    "rounds_per_node",
]
