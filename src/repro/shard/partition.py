"""Node-set partitioners for the sharded runtime.

Two METIS-free strategies, both deterministic:

* ``"block"`` — contiguous id ranges of near-equal size.  Trivial,
  cache-friendly, and already near-optimal on path/cycle-like graphs
  whose node ids follow the topology.
* ``"greedy"`` — greedy graph growing: each shard is seeded with the
  lowest unassigned id and grown by repeatedly absorbing the unassigned
  vertex with the most neighbors already inside the shard (ties to the
  lowest id), up to the same balanced capacity the block partitioner
  uses.  This keeps shards connected where possible and never does
  worse than block on graphs whose ids already trace the topology
  (cycle, grid), while cutting far fewer edges on graphs whose id order
  scatters neighbors.

Shard 0 is special in the runtime (it runs inside the coordinator
process so the protocol root's telemetry hooks stay in-process), so
:func:`partition_nodes` relabels shards to put ``root`` in shard 0.

Partitions are *total disjoint covers*: every node appears in exactly
one shard, every shard is non-empty (for ``workers <= N``), and node
ids inside each shard are sorted ascending — the order the runtime
steps them.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graphs.graph import Graph

#: Recognized partitioner names.
PARTITIONERS = ("block", "greedy")


def _capacities(n: int, workers: int) -> List[int]:
    """Balanced shard sizes: ``n // workers`` plus one for the remainder."""
    base, extra = divmod(n, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


def _block(n: int, workers: int) -> List[List[int]]:
    shards: List[List[int]] = []
    start = 0
    for size in _capacities(n, workers):
        shards.append(list(range(start, start + size)))
        start += size
    return shards


def _greedy(graph: Graph, workers: int) -> List[List[int]]:
    n = graph.num_nodes
    assigned = bytearray(n)
    shards: List[List[int]] = []
    unassigned_count = n
    for size in _capacities(n, workers):
        members: List[int] = []
        # gain[v] = neighbors of v already inside the growing shard.
        gain = [0] * n
        frontier: set = set()
        while len(members) < size:
            pick = -1
            if frontier:
                best = -1
                for v in sorted(frontier):
                    if gain[v] > best:
                        best = gain[v]
                        pick = v
            if pick < 0:
                # Seed (or reseed a disconnected component): lowest
                # unassigned id.
                for v in range(n):
                    if not assigned[v]:
                        pick = v
                        break
            assigned[pick] = 1
            frontier.discard(pick)
            members.append(pick)
            unassigned_count -= 1
            for u in graph.neighbors(pick):
                if not assigned[u]:
                    gain[u] += 1
                    frontier.add(u)
        members.sort()
        shards.append(members)
    assert unassigned_count == 0
    return shards


def partition_nodes(
    graph: Graph, workers: int, kind: str = "greedy", root: int = 0
) -> Tuple[List[int], List[List[int]]]:
    """Partition the graph's nodes into ``workers`` shards.

    Returns ``(assignment, shards)`` where ``assignment[v]`` is the
    shard index of node ``v`` and ``shards[i]`` is the sorted id list
    of shard ``i``.  The shard containing ``root`` is relabeled to
    index 0 (the in-coordinator shard).  ``workers`` is clamped to the
    node count so every shard is non-empty.
    """
    if kind not in PARTITIONERS:
        raise ValueError(
            "unknown partitioner {!r} (expected one of {})".format(
                kind, PARTITIONERS
            )
        )
    n = graph.num_nodes
    if workers < 1:
        raise ValueError("workers must be >= 1, got {}".format(workers))
    workers = min(workers, n) if n else 1
    if kind == "block":
        shards = _block(n, workers)
    else:
        shards = _greedy(graph, workers)
    assignment = [0] * n
    for index, members in enumerate(shards):
        for v in members:
            assignment[v] = index
    if n and graph.has_node(root) and assignment[root] != 0:
        other = assignment[root]
        shards[0], shards[other] = shards[other], shards[0]
        for v in shards[0]:
            assignment[v] = 0
        for v in shards[other]:
            assignment[v] = other
    return assignment, shards


def edge_cut(graph: Graph, assignment: Sequence[int]) -> int:
    """Number of undirected edges whose endpoints live in different shards."""
    crossing = 0
    for v in graph.nodes():
        shard = assignment[v]
        for u in graph.neighbors(v):
            if u > v and assignment[u] != shard:
                crossing += 1
    return crossing
