"""Supervision policy for the sharded runtime.

The coordinator of :mod:`repro.shard.runtime` is, by default, an
optimist: it blocks on each worker pipe forever.  A
:class:`SupervisionConfig` turns it into a supervisor — every worker
gets a shared-memory heartbeat slot it stamps at each barrier, the
coordinator polls the pipes with a watchdog instead of blocking, and a
worker that dies (EOF / not alive) or hangs (heartbeat older than
``heartbeat_timeout``) triggers recovery: kill everything, restore the
last round-boundary checkpoint (:mod:`repro.shard.checkpoint`), re-fork
and replay.  The keyed-hash fault replay and the barrier-quiescent
snapshot make the replayed rounds bit-identical, so supervision is
invisible in every protocol output.

When the per-shard restart budget is exhausted the supervisor stops
retrying and degrades deterministically to the runtime's existing
whole-shard-kill path: the failed shard's members are reported from its
checkpointed ledger and the run ends in a partial
:class:`~repro.core.pipeline.CompletenessReport` instead of stalling.

Shard 0 runs inside the coordinator process and is outside the failure
domain this module covers (a dead coordinator is what ``repro resume``
is for).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Default watchdog patience.  Generous on purpose: a false positive
#: (killing a merely slow worker) costs a rollback replay, while a true
#: hang is unrecoverable without us, so the default only has to beat
#: "forever".
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Exponential backoff before respawning: base * 2**restart, capped.
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


class WorkerFailure(Exception):
    """Internal signal: a supervised worker died or hung at a barrier.

    Never escapes ``run_shard`` — the coordinator's driver loop catches
    it and either rolls back to a checkpoint or (budget exhausted)
    degrades to the whole-shard-kill path.

    Attributes
    ----------
    shard:
        The failed worker's shard index (>= 1).
    reason:
        ``"died"`` (process gone / pipe EOF) or ``"hung"`` (alive but
        heartbeat older than the watchdog timeout).
    """

    def __init__(self, shard: int, reason: str, detail: str = ""):
        self.shard = shard
        self.reason = reason
        super().__init__(
            "shard {} worker {}{}".format(
                shard, reason, " ({})".format(detail) if detail else ""
            )
        )


@dataclass(frozen=True)
class SupervisionConfig:
    """Everything the coordinator needs to supervise a run.

    Attributes
    ----------
    heartbeat_timeout:
        Seconds a worker's heartbeat may age mid-command before the
        watchdog declares it hung.
    max_restarts:
        Respawn budget *per shard*; 0 means any failure goes straight
        to the deterministic whole-shard-kill fallback.
    backoff_base, backoff_cap:
        Exponential backoff (``base * 2**restarts``, capped) slept
        before each respawn.
    checkpoint_every:
        Write a snapshot every this many processed rounds (0 disables
        checkpointing; recovery then rolls back to round 0, which is
        always held in memory).
    checkpoint_dir:
        Root directory for snapshots; a run-key subdirectory is created
        per run.  Required when ``checkpoint_every`` > 0.
    keep_checkpoints:
        Snapshots retained per run (>= 2 so a corrupt newest snapshot
        still leaves a fallback).
    resume_from:
        Path of a snapshot (or its run/checkpoint root) to restore
        before round one; the run continues from the checkpointed round
        and produces totals bit-identical to an uninterrupted run.
    stop_after:
        Testing aid: pause the run (raise
        :class:`~repro.exceptions.CheckpointPause`) right after the
        first checkpoint at or past this round is durable on disk.
    meta:
        Extra JSON-ready metadata stored in each manifest; the CLI
        records the command-line recipe here so ``repro resume`` can
        rebuild the graph and plan without re-asking.
    """

    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT
    max_restarts: int = 0
    backoff_base: float = DEFAULT_BACKOFF_BASE
    backoff_cap: float = DEFAULT_BACKOFF_CAP
    checkpoint_every: int = 0
    checkpoint_dir: Optional[str] = None
    keep_checkpoints: int = 2
    resume_from: Optional[str] = None
    stop_after: Optional[int] = None
    meta: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def __post_init__(self):
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0 seconds")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ValueError(
                "checkpoint_every > 0 needs a checkpoint_dir to write to"
            )
        if self.keep_checkpoints < 2:
            raise ValueError(
                "keep_checkpoints must be >= 2 (a corrupt newest snapshot "
                "needs a fallback)"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be >= 0")

    @property
    def checkpoints_enabled(self) -> bool:
        return self.checkpoint_every > 0 and self.checkpoint_dir is not None

    def backoff(self, restarts_so_far: int) -> float:
        """Seconds to sleep before respawn number ``restarts_so_far + 1``."""
        return min(
            self.backoff_cap, self.backoff_base * (2.0 ** restarts_so_far)
        )


def supervision_for(plan, explicit: Optional[SupervisionConfig]):
    """The effective config for a run: explicit wins; otherwise a plan
    that schedules infra faults gets default supervision (so a bare
    ``WorkerHang`` degrades to a partial result instead of blocking the
    barrier forever); otherwise None (the unsupervised fast path)."""
    if explicit is not None:
        return explicit
    if plan is not None and (
        getattr(plan, "worker_hangs", ()) or getattr(plan, "slow_workers", ())
    ):
        return SupervisionConfig()
    return None
