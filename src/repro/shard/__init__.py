"""Sharded multi-process CONGEST runtime.

``repro.shard`` partitions the node set across worker processes and
runs each shard with the event-engine inner loop, exchanging only
cross-shard traffic per round as encoded wire frames over
``multiprocessing`` pipes.  See ``docs/sharding.md`` for the wire
batching format, the barrier protocol and the fault semantics.

Public surface:

* :func:`repro.shard.partition.partition_nodes` / ``edge_cut`` — the
  block and greedy edge-cut partitioners.
* :func:`repro.shard.frames.encode_shard_frame` /
  ``decode_shard_frame`` — the per-(src, dst) shard-frame batch codec.
* :func:`repro.shard.runtime.run_shard` — the parent coordinator,
  invoked by ``Simulator(engine="shard", workers=W)``.
* :class:`repro.shard.supervisor.SupervisionConfig` — heartbeats,
  worker respawn and round-boundary checkpoints for the coordinator;
  see ``docs/recovery.md``.
* :mod:`repro.shard.checkpoint` — the ``repro-ckpt-v1`` snapshot
  layout behind ``--checkpoint-every`` and ``repro resume``.
"""

from repro.shard.partition import edge_cut, partition_nodes
from repro.shard.frames import decode_shard_frame, encode_shard_frame
from repro.shard.checkpoint import (
    CHECKPOINT_SCHEMA,
    list_checkpoints,
    load_checkpoint,
    read_manifest,
    resolve_checkpoint,
    write_checkpoint,
)
from repro.shard.supervisor import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    SupervisionConfig,
    supervision_for,
)

__all__ = [
    "edge_cut",
    "partition_nodes",
    "encode_shard_frame",
    "decode_shard_frame",
    "CHECKPOINT_SCHEMA",
    "list_checkpoints",
    "load_checkpoint",
    "read_manifest",
    "resolve_checkpoint",
    "write_checkpoint",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "SupervisionConfig",
    "supervision_for",
]
