"""Sharded multi-process CONGEST runtime.

``repro.shard`` partitions the node set across worker processes and
runs each shard with the event-engine inner loop, exchanging only
cross-shard traffic per round as encoded wire frames over
``multiprocessing`` pipes.  See ``docs/sharding.md`` for the wire
batching format, the barrier protocol and the fault semantics.

Public surface:

* :func:`repro.shard.partition.partition_nodes` / ``edge_cut`` — the
  block and greedy edge-cut partitioners.
* :func:`repro.shard.frames.encode_shard_frame` /
  ``decode_shard_frame`` — the per-(src, dst) shard-frame batch codec.
* :func:`repro.shard.runtime.run_shard` — the parent coordinator,
  invoked by ``Simulator(engine="shard", workers=W)``.
"""

from repro.shard.partition import edge_cut, partition_nodes
from repro.shard.frames import decode_shard_frame, encode_shard_frame

__all__ = [
    "edge_cut",
    "partition_nodes",
    "encode_shard_frame",
    "decode_shard_frame",
]
