"""The shard-frame batch codec.

All cross-shard traffic of one round between one (src shard, dst shard)
pair travels as **one batch**: a compact bit string assembled with the
PR 3 :mod:`repro.wire` primitives, decoded back through
:func:`repro.wire.decode_frame` on arrival so the messages crossing
process boundaries are the *same exact frames the simulator billed* —
the bandwidth numbers stay measurements of the wire, not of pickles.

Batch layout (``send_round`` travels out of band with the round
command)::

    varint  group_count
    group*  sender        (id_bits)
            receiver      (id_bits)
            varint        due - (send_round + 1)
            varint        message_count
            message*      flag (1 bit)
              flag=0      varint frame_bits, then the encoded frame
              flag=1      varint index into the opaque sidecar

Messages inside the 4-bit tag registry (every stock protocol message)
ride as their exact encoded frames (flag 0).  Transport envelopes of
the resilient layer are honestly *sized* but live outside the tag
registry (see ``Simulator.frame_audit``), so they ride in an **opaque
sidecar** list (flag 1) that the pipe pickles as-is — their billed bits
were still charged sender-side from ``bit_size``.

Groups are consecutive runs of records sharing ``(sender, receiver,
due)``; record order is preserved exactly, because the runtime's
bit-identity guarantee depends on replaying deliveries in generation
order.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.wire import BitReader, BitWriter, WireFormat, decode_frame, encode_frame

#: A cross-shard record: (sender, receiver, delivery round, message).
Record = Tuple[int, int, int, Any]


def _wire_encodable(message: Any) -> bool:
    cls = type(message)
    return (
        getattr(cls, "wire_tag", None) is not None
        and getattr(cls, "WIRE_LAYOUT", None) is not None
    )


def encode_shard_frame(
    records: Sequence[Record], send_round: int, wire: WireFormat
) -> Tuple[int, int, List[Any]]:
    """Encode one round's records for one (src, dst) shard pair.

    Returns ``(word, bit_length, opaque)`` — the batch bit string plus
    the sidecar list of messages that have no registered wire layout.
    """
    writer = BitWriter()
    opaque: List[Any] = []
    id_bits = wire.id_bits
    # Group consecutive records sharing (sender, receiver, due).
    groups: List[Tuple[int, int, int, List[Any]]] = []
    for sender, receiver, due, message in records:
        if groups and groups[-1][:3] == (sender, receiver, due):
            groups[-1][3].append(message)
        else:
            groups.append((sender, receiver, due, [message]))
    writer.write_uint(len(groups))
    for sender, receiver, due, messages in groups:
        writer.write(sender, id_bits)
        writer.write(receiver, id_bits)
        writer.write_uint(due - send_round - 1)
        writer.write_uint(len(messages))
        for message in messages:
            if _wire_encodable(message):
                writer.write(0, 1)
                frame_word, frame_bits = encode_frame((message,), wire)
                writer.write_uint(frame_bits)
                writer.write(frame_word, frame_bits)
            else:
                writer.write(1, 1)
                writer.write_uint(len(opaque))
                opaque.append(message)
    word, bits = writer.getvalue()
    return word, bits, opaque


def decode_shard_frame(
    word: int,
    bit_length: int,
    opaque: Sequence[Any],
    send_round: int,
    wire: WireFormat,
    arith=None,
) -> List[Record]:
    """Decode a batch back into ``(sender, receiver, due, message)`` records.

    Record order is the encoder's generation order.  ``arith`` is the
    run's arithmetic context, required for frames carrying sigma/psi
    fields (exactly as in :func:`repro.wire.decode_frame`).
    """
    reader = BitReader(word, bit_length)
    id_bits = wire.id_bits
    out: List[Record] = []
    for _ in range(reader.read_uint()):
        sender = reader.read(id_bits)
        receiver = reader.read(id_bits)
        due = send_round + 1 + reader.read_uint()
        count = reader.read_uint()
        for _ in range(count):
            if reader.read(1):
                message = opaque[reader.read_uint()]
            else:
                frame_bits = reader.read_uint()
                frame_word = reader.read(frame_bits)
                decoded = decode_frame(frame_word, frame_bits, wire, arith)
                if len(decoded) != 1:
                    from repro.exceptions import WireCodecError

                    raise WireCodecError(
                        "shard frame record decoded to {} messages "
                        "(expected 1)".format(len(decoded))
                    )
                message = decoded[0]
            out.append((sender, receiver, due, message))
    return out
