"""Round-boundary checkpoints for the sharded runtime.

At a barrier every worker is quiescent: messages either sit in a node's
deferred inbox, in the worker's local future heap, or coordinator-side
as already-encoded cross-shard wire frames.  That makes a shard's state
a finite, picklable value — node objects (array-backed ``NodeLedger``
columns and all protocol fields), the event-engine wake structures, and
the fault injector's cursor (pure counters, thanks to the keyed-hash
fault replay).  This module only moves bytes: the coordinator collects
one blob per shard plus its own merge state and this module lays them
out on disk; restoring is the exact inverse.

Layout (content-addressed by the run key of ``repro.obs.history``, so
two different runs can share one checkpoint root without colliding)::

    <checkpoint_dir>/<run_key>/ckpt-00000024/
        shard-0.bin       pickled shard state, one per live shard
        shard-1.bin
        coordinator.bin   pickled coordinator merge state
        manifest.json     written last, atomically (tmp + rename)

The manifest is the commit record: schema ``repro-ckpt-v1``, the round,
a blake2b checksum per file, and enough metadata (graph fingerprint,
worker count, partitioner, protocol, arithmetic) to refuse a resume
against the wrong run.  A checkpoint without a valid manifest does not
exist; a checksum mismatch raises :class:`CheckpointError` and the
caller falls back to an older snapshot.  Mirroring the torn-tail rule
of the history ledger: a crash mid-write can only ever lose the newest
checkpoint, never corrupt the answer.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import CheckpointError

#: Manifest schema identifier; bump on any incompatible layout change.
CHECKPOINT_SCHEMA = "repro-ckpt-v1"

#: Snapshots kept per run after pruning.  Two, not one: the supervisor
#: must survive the *newest* checkpoint being corrupt (torn write,
#: injected corruption) by falling back to its predecessor.
KEEP_CHECKPOINTS = 2

_MANIFEST = "manifest.json"


def _file_checksum(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def checkpoint_dir_name(round_number: int) -> str:
    return "ckpt-{:08d}".format(round_number)


def write_checkpoint(
    run_dir: Path,
    round_number: int,
    shard_blobs: Dict[int, bytes],
    coordinator_blob: bytes,
    meta: Dict[str, Any],
) -> Path:
    """Write one snapshot; returns its directory.

    Files first, manifest last via tmp + atomic rename: until the
    rename lands the checkpoint does not exist, so a crash at any point
    leaves either a complete snapshot or an ignorable partial one.
    """
    run_dir = Path(run_dir)
    ckpt = run_dir / checkpoint_dir_name(round_number)
    ckpt.mkdir(parents=True, exist_ok=True)
    files = {}
    total = 0
    payloads = dict(
        ("shard-{}.bin".format(shard), blob)
        for shard, blob in shard_blobs.items()
    )
    payloads["coordinator.bin"] = coordinator_blob
    for name in sorted(payloads):
        data = payloads[name]
        (ckpt / name).write_bytes(data)
        files[name] = {"bytes": len(data), "blake2b": _file_checksum(data)}
        total += len(data)
    manifest = {
        "schema": CHECKPOINT_SCHEMA,
        "round": round_number,
        "shards": sorted(shard_blobs),
        "files": files,
        "total_bytes": total,
        "meta": meta,
    }
    tmp = ckpt / (_MANIFEST + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(str(tmp), str(ckpt / _MANIFEST))
    return ckpt


def read_manifest(ckpt_dir: Path) -> Dict[str, Any]:
    """Parse and schema-check a snapshot's manifest.

    Raises :class:`CheckpointError` on a missing, torn (truncated JSON)
    or version-mismatched manifest — the caller must treat the snapshot
    as nonexistent, never guess at its contents.
    """
    path = Path(ckpt_dir) / _MANIFEST
    try:
        text = path.read_text()
    except OSError as err:
        raise CheckpointError(
            "checkpoint {} has no readable manifest: {}".format(
                ckpt_dir, err
            )
        )
    try:
        manifest = json.loads(text)
    except ValueError as err:
        raise CheckpointError(
            "checkpoint {} has a torn manifest (truncated write?): "
            "{}".format(ckpt_dir, err)
        )
    schema = manifest.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            "checkpoint {} has schema {!r}; this build reads {!r} "
            "only".format(ckpt_dir, schema, CHECKPOINT_SCHEMA)
        )
    if not isinstance(manifest.get("round"), int) or not isinstance(
        manifest.get("files"), dict
    ):
        raise CheckpointError(
            "checkpoint {} manifest is missing round/files".format(ckpt_dir)
        )
    return manifest


def load_checkpoint(
    ckpt_dir: Path,
) -> Tuple[Dict[str, Any], Dict[str, bytes]]:
    """Read a snapshot back, verifying every per-file checksum.

    Returns ``(manifest, files)`` with ``files`` mapping the manifest
    file names to their verified bytes.  Any missing file, short read
    or checksum mismatch raises :class:`CheckpointError`.
    """
    ckpt_dir = Path(ckpt_dir)
    manifest = read_manifest(ckpt_dir)
    files: Dict[str, bytes] = {}
    for name, entry in manifest["files"].items():
        path = ckpt_dir / name
        try:
            data = path.read_bytes()
        except OSError as err:
            raise CheckpointError(
                "checkpoint {} is missing {}: {}".format(ckpt_dir, name, err)
            )
        if len(data) != entry.get("bytes"):
            raise CheckpointError(
                "checkpoint {} file {} is {} bytes, manifest says "
                "{}".format(ckpt_dir, name, len(data), entry.get("bytes"))
            )
        if _file_checksum(data) != entry.get("blake2b"):
            raise CheckpointError(
                "checkpoint {} file {} fails its blake2b checksum "
                "(corrupt snapshot)".format(ckpt_dir, name)
            )
        files[name] = data
    return manifest, files


def list_checkpoints(run_dir: Path) -> Tuple[Path, ...]:
    """Snapshot directories under one run, oldest first.

    Only directories carrying a manifest file count; a partial write
    (files but no manifest) is invisible here by construction.
    """
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        return ()
    found = []
    for entry in sorted(run_dir.iterdir()):
        if entry.is_dir() and entry.name.startswith("ckpt-") and (
            entry / _MANIFEST
        ).is_file():
            found.append(entry)
    return tuple(found)


def resolve_checkpoint(path: Path) -> Path:
    """Resolve a user-supplied path to one snapshot directory.

    Accepts the snapshot directory itself, a run directory (picks the
    newest snapshot whose manifest parses), or a checkpoint root
    holding run-key directories (searches one level down).  Raises
    :class:`CheckpointError` when nothing valid is found.
    """
    path = Path(path)
    if (path / _MANIFEST).is_file():
        return path
    candidates = list(list_checkpoints(path))
    if not candidates and path.is_dir():
        for sub in sorted(path.iterdir()):
            if sub.is_dir():
                candidates.extend(list_checkpoints(sub))
    best: Optional[Path] = None
    best_round = -1
    for ckpt in candidates:
        try:
            manifest = read_manifest(ckpt)
        except CheckpointError:
            continue
        if manifest["round"] > best_round:
            best, best_round = ckpt, manifest["round"]
    if best is None:
        raise CheckpointError(
            "no resumable checkpoint under {} (need a ckpt-*/manifest.json "
            "written by a --checkpoint-every run)".format(path)
        )
    return best


def prune_checkpoints(run_dir: Path, keep: int = KEEP_CHECKPOINTS) -> int:
    """Delete all but the ``keep`` newest snapshots; returns how many."""
    snapshots = list_checkpoints(run_dir)
    removed = 0
    for ckpt in snapshots[: max(0, len(snapshots) - keep)]:
        for entry in sorted(ckpt.iterdir()):
            try:
                entry.unlink()
            except OSError:
                pass
        try:
            ckpt.rmdir()
            removed += 1
        except OSError:
            pass
    return removed


def corrupt_checkpoint(ckpt_dir: Path, seed: int, round_number: int) -> str:
    """Flip one byte of one snapshot file (fault injection only).

    The victim file and offset are derived from a keyed hash of
    ``(seed, round)`` so the corruption replays deterministically, the
    same contract every channel fault follows.  Returns the damaged
    file's name.  The manifest itself is never the target — checksum
    *verification* is the behavior under test, and a corrupt manifest
    would exercise the (separately tested) torn-manifest path instead.
    """
    ckpt_dir = Path(ckpt_dir)
    manifest = read_manifest(ckpt_dir)
    names = sorted(manifest["files"])
    digest = hashlib.blake2b(
        "ckpt-corrupt:{}:{}".format(seed, round_number).encode(),
        digest_size=8,
    ).digest()
    pick = int.from_bytes(digest[:4], "big")
    name = names[pick % len(names)]
    path = ckpt_dir / name
    data = bytearray(path.read_bytes())
    if not data:
        return name
    offset = int.from_bytes(digest[4:], "big") % len(data)
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return name
