"""The sharded multi-process round-synchronous runtime.

``run_shard(simulator)`` executes a run whose node set has been
partitioned across ``simulator.workers`` processes.  Shard 0 runs
inside the coordinator (parent) process — so the protocol root's
telemetry phase hooks stay in-process — and shards ``1..W-1`` run in
forked workers connected by ``multiprocessing`` pipes.  ``fork`` is
required (node factories are closures; forked children inherit the
pre-built node objects copy-on-write), which the dispatcher's
``shard_capability`` probe enforces.

Each worker drives its shard's nodes with a faithful copy of the event
engine's inner loop (wake heaps, passive-message deferral, crash
filtering, fault pipeline).  The coordinator replicates the event
engine's *outer* loop decision for decision — which round to process,
when to fast-forward idle stretches, when to declare termination,
stalling, or the round limit — from per-round worker reports, so a
sharded run is **bit-identical** to ``engine="event"``: same rounds,
same bits, same messages, same worst edge, same betweenness.

Cross-shard traffic travels as encoded wire frames batched per
(src shard, dst shard) per round (:mod:`repro.shard.frames`), decoded
through :mod:`repro.wire` on arrival.  See ``docs/sharding.md`` for
the full barrier protocol and the fault/kill semantics.

With a :class:`~repro.shard.supervisor.SupervisionConfig` the
coordinator additionally supervises its workers: each child stamps a
shared-memory heartbeat at every barrier, the blocking ``recv`` becomes
a polling watchdog that tells *dead* (pipe EOF / process gone) from
*hung* (alive but heartbeat stale), and either failure triggers a
global rollback — kill every child, restore the newest round-boundary
checkpoint (:mod:`repro.shard.checkpoint`), re-fork, replay.  Because
a snapshot is taken at a barrier (every in-flight message is explicit
state) and fault decisions are keyed hashes (the injector cursor is
pure state), the replayed rounds are bit-identical, so supervision and
resume never show up in any protocol output.  See
``docs/recovery.md``.
"""

from __future__ import annotations

import heapq
import os
import pickle
import time
from operator import itemgetter
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.congest.node import Inbox, RoundContext
from repro.congest.stats import SimulationStats
from repro.exceptions import (
    CheckpointError,
    CheckpointPause,
    CongestViolationError,
    SimulationNotTerminatedError,
    SimulationStalledError,
)
from repro.shard.checkpoint import (
    corrupt_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    resolve_checkpoint,
    write_checkpoint,
)
from repro.shard.frames import decode_shard_frame, encode_shard_frame
from repro.shard.partition import edge_cut, partition_nodes
from repro.shard.supervisor import WorkerFailure, supervision_for

#: FaultStats counters a worker ships (and a checkpoint snapshots).
_FAULT_COUNTERS = (
    "dropped", "duplicated", "delayed",
    "corrupted_detected", "corrupted_undetected",
    "crash_dropped", "link_dropped", "crash_rounds",
)


def _unwrap(node):
    """The protocol node behind an optional transport wrapper."""
    return getattr(node, "inner", node)


def _shard_dead_round(plan, members) -> Optional[int]:
    """First round from which *every* member is permanently crashed.

    ``None`` unless each member has a permanent crash window — the
    "kill a whole worker process" scenario.  Deterministically
    computable from the plan by every process, so coordinator and
    worker agree on the shard's death round without negotiation.
    """
    if plan is None:
        return None
    worst = 0
    for v in members:
        starts = [
            w.start for w in plan.crashes if w.node == v and w.end is None
        ]
        if not starts:
            return None
        worst = max(worst, min(starts))
    return worst


class _ShardWorker:
    """One shard's event-engine inner loop (runs in parent or child)."""

    def __init__(self, sim, shard_id, assignment, shards, dead_round):
        self.sim = sim
        self.shard_id = shard_id
        self.assignment = assignment
        self.members = shards[shard_id]
        self.dead_round = dead_round
        self.arith = getattr(_unwrap(sim.nodes[0]), "arith", None)
        # Local event-engine state.  In the parent this aliases the
        # simulator's own (unused by the coordinator); in a forked child
        # it is the inherited copy.
        self.in_flight: Dict[int, List[Tuple[int, Any]]] = {}
        self.future: List[Tuple[int, int, int, int, int, Any]] = []
        self._fseq = 0
        self.edge_load: Dict[Tuple[int, int], List[int]] = {}
        self.edge_frames: Dict[Tuple[int, int], List[Any]] = {}
        # Cross-shard records generated this round, keyed by dst shard.
        self._outbox: Dict[int, List[Tuple[int, int, int, Any]]] = {}
        self.cross_messages = 0
        self.cross_bits = 0
        # Supervision plumbing (set by _child_main in forked children).
        self.incarnation = 0
        self.heartbeat = None
        plan = sim.faults.plan if sim.faults is not None else None
        self._hangs = tuple(
            h for h in getattr(plan, "worker_hangs", ())
            if h.shard == shard_id
        )
        self._slows = tuple(
            s for s in getattr(plan, "slow_workers", ())
            if s.shard == shard_id
        )

    # ------------------------------------------------------------------
    def _apply_infra_faults(self, round_number: int) -> None:
        """Realize scheduled WorkerHang/SlowWorker faults for this round.

        A slow worker sleeps but keeps stamping its heartbeat (a healthy
        straggler the watchdog must tolerate); a hung worker spins with
        the heartbeat frozen, so only the supervisor's timeout can end
        it.  Hangs apply to incarnations below ``repeats``: the default
        1 hangs only the original worker, letting its checkpoint-
        restored replacement sail past the same round.
        """
        for slow in self._slows:
            if slow.round == round_number:
                end = time.monotonic() + slow.delay
                while True:
                    if self.heartbeat is not None:
                        self.heartbeat.value = time.monotonic()
                    remaining = end - time.monotonic()
                    if remaining <= 0:
                        break
                    time.sleep(min(0.05, remaining))
        for hang in self._hangs:
            if hang.round == round_number and self.incarnation < hang.repeats:
                while True:  # a wedge, by construction unrecoverable
                    time.sleep(3600)

    def process_round(self, round_number: int, frames) -> Dict[str, Any]:
        """Run one synchronous round over this shard; return the report."""
        if self._hangs or self._slows:
            self._apply_infra_faults(round_number)
        sim = self.sim
        nodes = sim.nodes
        deferred = sim._deferred
        has_filter = sim._has_wake_filter
        in_flight = self.in_flight
        self.in_flight = {}
        # 1. Ingest cross-shard batches.  Fresh records (due == send
        # round + 1) interleave with local fresh sends sender-sorted —
        # reproducing the single-process invariant that inboxes are
        # sender-sorted by construction; future records (delays,
        # duplicates) join the local future heap keyed so pop order
        # matches the global engine's (due, global seq) order.
        touched: Set[int] = set()
        for src_shard, send_round, word, bits, opaque in frames:
            for sender, receiver, due, message in decode_shard_frame(
                word, bits, opaque, send_round, sim.wire, self.arith
            ):
                if due == send_round + 1:
                    bucket = in_flight.get(receiver)
                    if bucket is None:
                        in_flight[receiver] = [(sender, message)]
                    else:
                        bucket.append((sender, message))
                        touched.add(receiver)
                else:
                    self._fseq += 1
                    heapq.heappush(
                        self.future,
                        (due, send_round, sender, self._fseq, receiver,
                         message),
                    )
        by_sender = itemgetter(0)
        for receiver in touched:
            # Stable: per-sender runs are contiguous within one source
            # list and a sender lives in exactly one shard.
            in_flight[receiver].sort(key=by_sender)
        # 2. Mature local futures due this round (appended after fresh
        # arrivals, exactly like Simulator._mature_futures).
        future = self.future
        while future and future[0][0] <= round_number:
            _due, _sr, sender, _seq, target, message = heapq.heappop(future)
            bucket = in_flight.get(target)
            if bucket is None:
                in_flight[target] = [(sender, message)]
            else:
                bucket.append((sender, message))
        # 3. Delivery with the wake filter (event-engine semantics).
        receivers: Set[int] = set()
        for target, arrivals in in_flight.items():
            box = deferred[target]
            if box is None:
                deferred[target] = arrivals
            else:
                box.extend(arrivals)
            if has_filter[target]:
                wakes = nodes[target].message_wakes
                for sender, message in arrivals:
                    if wakes(sender, message):
                        receivers.add(target)
                        break
            else:
                receivers.add(target)
        # 4. Active set (local nodes only — wakes are registered by
        # local nodes and arrivals are routed here by the coordinator).
        if round_number == 0:
            active: List[int] = list(self.members)
        else:
            heap = sim._wake_heap
            if heap and heap[0][0] <= round_number:
                woken: Set[int] = set()
                while heap and heap[0][0] <= round_number:
                    _, node_id = heapq.heappop(heap)
                    sim._wake_pending[node_id].discard(round_number)
                    woken.add(node_id)
                woken.update(receivers)
                active = sorted(woken)
            else:
                active = sorted(receivers)
        faults = sim.faults
        if faults is not None and active:
            alive: List[int] = []
            for node_id in active:
                if faults.node_crashed(node_id, round_number):
                    faults.note_crash_skip(node_id, round_number)
                    crash_end = faults.crash_end_after(node_id, round_number)
                    if crash_end is not None:
                        sim._register_wake(node_id, crash_end)
                else:
                    alive.append(node_id)
            active = alive
        # 5. Step.
        done_changes: List[Tuple[int, bool]] = []
        if active:
            inboxes: Dict[int, Inbox] = {}
            for node_id in active:
                box = deferred[node_id]
                if box is not None:
                    inboxes[node_id] = box
                    deferred[node_id] = None
            self._step(round_number, inboxes, active, done_changes)
        # 6. Report.
        edge_load = self.edge_load
        edges = [
            (key[0], key[1], load[0], load[1])
            for key, load in edge_load.items()
        ]
        if edge_load:
            if sim.frame_audit:
                sim._audit_frames(round_number, edge_load, self.edge_frames)
                self.edge_frames.clear()
            edge_load.clear()
        outbox = {}
        fresh_next = bool(self.in_flight)
        for dst, records in self._outbox.items():
            word, bits, opaque = encode_shard_frame(
                records, round_number, sim.wire
            )
            has_fresh = False
            n_future = 0
            min_due: Optional[int] = None
            for _s, _r, due, _m in records:
                if due == round_number + 1:
                    has_fresh = True
                else:
                    n_future += 1
                    if min_due is None or due < min_due:
                        min_due = due
            outbox[dst] = (word, bits, opaque, has_fresh, n_future, min_due)
        self._outbox = {}
        report: Dict[str, Any] = {
            "edges": edges,
            "done_changes": done_changes,
            "min_wake": sim._wake_heap[0][0] if sim._wake_heap else None,
            "future_len": len(self.future),
            "min_future": self.future[0][0] if self.future else None,
            "fresh_next": fresh_next,
            "last_progress": (
                faults.last_progress_round if faults is not None else 0
            ),
            "outbox": outbox,
        }
        if (
            self.dead_round is not None
            and round_number >= self.dead_round
        ):
            # Whole-shard kill: every member is permanently crashed from
            # here on.  Ship everything the coordinator needs to stand
            # in for this shard (residual wakes drive the round/stall
            # cadence; ledger rows allow a later partial collection)
            # and let the worker exit.
            report["shard_dead"] = self._death_payload()
        return report

    # ------------------------------------------------------------------
    def _step(self, round_number, inboxes, node_ids, done_changes) -> None:
        """One round over ``node_ids`` — Simulator._step adapted to route
        remote sends into the outbox instead of local in-flight lists."""
        sim = self.sim
        edge_load = self.edge_load
        edge_load_get = edge_load.get
        wire = sim.wire
        budget = sim.bit_budget if sim.strict else None
        frames = self.edge_frames if sim.frame_audit else None
        nodes = sim.nodes
        faults = sim.faults
        in_flight = self.in_flight
        in_flight_get = in_flight.get
        inboxes_get = inboxes.get
        assignment = self.assignment
        my_shard = self.shard_id
        outbox = self._outbox
        empty_inbox: Inbox = []
        for node_id in node_ids:
            node = nodes[node_id]
            was_done = node.done
            ctx = RoundContext(node_id, round_number, node.neighbors)
            if round_number == 0:
                node.on_start(ctx)
            node.on_round(ctx, inboxes_get(node_id, empty_inbox))
            for target, message in ctx.drain():
                bits = message.bit_size(wire)
                key = (node_id, target)
                load = edge_load_get(key)
                if load is None:
                    edge_load[key] = [1, bits]
                    total = bits
                else:
                    load[0] += 1
                    total = load[1] = load[1] + bits
                if budget is not None and total > budget:
                    raise CongestViolationError(
                        round_number, node_id, target, total, budget
                    )
                if frames is not None:
                    frame = frames.get(key)
                    if frame is None:
                        frames[key] = [message]
                    else:
                        frame.append(message)
                remote = assignment[target] != my_shard
                if remote:
                    self.cross_messages += 1
                    self.cross_bits += bits
                if faults is None:
                    outcomes = ((round_number + 1, message),)
                else:
                    outcomes = faults.deliveries(
                        round_number, node_id, target, message
                    )
                for due, delivered in outcomes:
                    if remote:
                        dst = assignment[target]
                        records = outbox.get(dst)
                        entry = (node_id, target, due, delivered)
                        if records is None:
                            outbox[dst] = [entry]
                        else:
                            records.append(entry)
                    elif due == round_number + 1:
                        bucket = in_flight_get(target)
                        if bucket is None:
                            in_flight[target] = [(node_id, delivered)]
                        else:
                            bucket.append((node_id, delivered))
                    else:
                        self._fseq += 1
                        heapq.heappush(
                            self.future,
                            (due, round_number, node_id, self._fseq,
                             target, delivered),
                        )
            if ctx._wakes is not None:
                for wake_round in ctx.drain_wakes():
                    sim._register_wake(node_id, wake_round)
            if node.done != was_done:
                done_changes.append((node_id, node.done))

    # ------------------------------------------------------------------
    # run-end extraction
    # ------------------------------------------------------------------
    def _fault_payload(self):
        faults = self.sim.faults
        if faults is None:
            return None
        stats = faults.stats
        return {
            "counters": {
                name: getattr(stats, name) for name in _FAULT_COUNTERS
            },
            "recoveries": list(stats.recoveries),
            "seen_crashed": dict(faults._seen_crashed),
        }

    def _common_reply(self) -> Dict[str, Any]:
        from repro.core.records import ledger_storage_totals

        ledgers = []
        for v in self.members:
            node = _unwrap(self.sim.nodes[v])
            ledger = getattr(node, "ledger", None)
            if ledger is not None:
                ledgers.append(ledger)
        return {
            "faults": self._fault_payload(),
            "cross_messages": self.cross_messages,
            "cross_bits": self.cross_bits,
            "ledger_words": ledger_storage_totals(ledgers)["words"],
        }

    def finish_reply(self) -> Dict[str, Any]:
        """Per-node protocol outputs for the clean-termination path."""
        reply = self._common_reply()
        extracts = []
        for v in self.members:
            node = self.sim.nodes[v]
            inner = _unwrap(node)
            agg = getattr(inner, "aggregation", None)
            counting = getattr(inner, "counting", None)
            extracts.append((
                v,
                getattr(agg, "betweenness_raw", None),
                getattr(agg, "diameter", None),
                getattr(counting, "own_start_time", None),
                node.done,
            ))
        reply["extracts"] = extracts
        return reply

    def stall_sent_sources(self) -> Dict[int, frozenset]:
        return {
            v: _unwrap(self.sim.nodes[v]).sent_sources()
            for v in self.members
        }

    def partial_reply(self, complete_set) -> Dict[str, Any]:
        """Per-node partial outputs for the stalled-run path."""
        reply = self._common_reply()
        extracts = []
        for v in self.members:
            node = self.sim.nodes[v]
            inner = _unwrap(node)
            agg = getattr(inner, "aggregation", None)
            counting = getattr(inner, "counting", None)
            extracts.append((
                v,
                inner.partial_betweenness_raw(complete_set),
                inner.sent_sources(),
                getattr(agg, "diameter", None),
                getattr(counting, "own_start_time", None),
                node.done,
            ))
        reply["extracts"] = extracts
        return reply

    def _death_payload(self) -> Dict[str, Any]:
        """State handover when the whole shard is permanently crashed."""
        sim = self.sim
        nodes = []
        for v in self.members:
            node = sim.nodes[v]
            inner = _unwrap(node)
            agg = getattr(inner, "aggregation", None)
            counting = getattr(inner, "counting", None)
            ledger = getattr(inner, "ledger", None)
            rows = []
            if ledger is not None:
                source_col = ledger.source_col
                sigma_col = ledger.sigma_col
                psi_col = ledger.psi_col
                for row in range(len(ledger)):
                    if psi_col[row] is not None:
                        rows.append(
                            (source_col[row], sigma_col[row], psi_col[row])
                        )
            nodes.append({
                "node": v,
                "rows": rows,
                "sent": inner.sent_sources(),
                "diameter": getattr(agg, "diameter", None),
                "start": getattr(counting, "own_start_time", None),
                "done": node.done,
            })
        payload = self._common_reply()
        payload["nodes"] = nodes
        payload["residue"] = sorted(sim._wake_heap)
        return payload

    # ------------------------------------------------------------------
    # checkpoint snapshot / restore (barrier-quiescent state only)
    # ------------------------------------------------------------------
    def _fault_cursor(self) -> Optional[Dict[str, Any]]:
        """The injector's replay cursor: counters plus per-edge sequence
        numbers.  Pure state — restoring it replays the exact same
        keyed-hash fault decisions the original run would have made."""
        faults = self.sim.faults
        if faults is None:
            return None
        stats = faults.stats
        return {
            "counters": {
                name: getattr(stats, name) for name in _FAULT_COUNTERS
            },
            "recoveries": list(stats.recoveries),
            "edge_seq": dict(faults._edge_seq),
            "seen_crashed": dict(faults._seen_crashed),
            "last_progress": faults.last_progress_round,
        }

    def snapshot_blob(self) -> bytes:
        """Pickle this shard's complete state at a round barrier.

        At a barrier every message is explicit state: fresh deliveries
        in ``in_flight``, delayed/duplicated ones in the future heap,
        undelivered arrivals in the deferred inboxes.  Node objects
        (ledger columns and all protocol fields) pickle as-is, except
        that live telemetry handles are detached for the dump — they
        hold unpicklable streams and are re-attached on restore.
        """
        sim = self.sim
        detached = []
        telemetry_nodes = []
        for v in self.members:
            node = sim.nodes[v]
            for which, obj in {
                id(node): ("outer", node),
                id(_unwrap(node)): ("inner", _unwrap(node)),
            }.values():
                tel = getattr(obj, "telemetry", None)
                if tel is not None:
                    obj.telemetry = None
                    detached.append((obj, tel))
                    telemetry_nodes.append((v, which))
        try:
            state = {
                "shard": self.shard_id,
                "nodes": {v: sim.nodes[v] for v in self.members},
                "telemetry_nodes": telemetry_nodes,
                "in_flight": self.in_flight,
                "future": list(self.future),
                "fseq": self._fseq,
                "cross_messages": self.cross_messages,
                "cross_bits": self.cross_bits,
                "deferred": {
                    v: sim._deferred[v]
                    for v in self.members
                    if sim._deferred[v] is not None
                },
                "wake_heap": list(sim._wake_heap),
                "wake_pending": {
                    v: set(sim._wake_pending[v])
                    for v in self.members
                    if sim._wake_pending[v]
                },
                "faults": self._fault_cursor(),
            }
            return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            for obj, tel in detached:
                obj.telemetry = tel

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot_blob` (from the unpickled dict).

        Field *values* are written into the existing shared objects —
        the simulator's wake/deferred structures are reset wholesale to
        this shard's snapshot (critical in a re-forked child, which
        inherits the parent's evolved shard-0 entries), and the fault
        cursor is written into the inherited injector so shard 0's
        live counters and a child's copy never mix.
        """
        sim = self.sim
        for v, node in state["nodes"].items():
            sim.nodes[v] = node
        for v, which in state["telemetry_nodes"]:
            node = sim.nodes[v]
            obj = node if which == "outer" else _unwrap(node)
            obj.telemetry = sim.telemetry
        self.in_flight = state["in_flight"]
        self.future = list(state["future"])
        self._fseq = state["fseq"]
        self.cross_messages = state["cross_messages"]
        self.cross_bits = state["cross_bits"]
        self.edge_load = {}
        self.edge_frames = {}
        self._outbox = {}
        deferred = sim._deferred
        for v in range(len(deferred)):
            deferred[v] = None
        for v, box in state["deferred"].items():
            deferred[v] = box
        sim._wake_heap[:] = state["wake_heap"]
        for pending in sim._wake_pending:
            pending.clear()
        for v, pending in state["wake_pending"].items():
            sim._wake_pending[v] |= pending
        cursor = state["faults"]
        faults = sim.faults
        if faults is not None and cursor is not None:
            stats = faults.stats
            for name, value in cursor["counters"].items():
                setattr(stats, name, value)
            stats.recoveries[:] = [
                tuple(entry) for entry in cursor["recoveries"]
            ]
            faults._edge_seq.clear()
            faults._edge_seq.update(cursor["edge_seq"])
            faults._seen_crashed.clear()
            faults._seen_crashed.update(cursor["seen_crashed"])
            faults.last_progress_round = cursor["last_progress"]


def _child_main(
    conn, worker, heartbeat=None, restore=None, incarnation=0
) -> None:
    """Command loop of a forked shard worker."""
    worker.heartbeat = heartbeat
    worker.incarnation = incarnation

    def beat():
        if heartbeat is not None:
            heartbeat.value = time.monotonic()

    try:
        if restore is not None:
            worker.restore_state(pickle.loads(restore))
        beat()
        while True:
            command = conn.recv()
            beat()
            op = command[0]
            if op == "round":
                report = worker.process_round(command[1], command[2])
                beat()
                conn.send(report)
                if "shard_dead" in report:
                    break
            elif op == "checkpoint":
                conn.send(worker.snapshot_blob())
                beat()
            elif op == "stall":
                conn.send(worker.stall_sent_sources())
            elif op == "partial":
                conn.send(worker.partial_reply(command[1]))
                break
            elif op == "finish":
                conn.send(worker.finish_reply())
                break
            elif op == "die":
                break
    except BaseException as exc:  # ship the failure to the coordinator
        try:
            conn.send({"error": exc})
        except Exception:
            try:
                conn.send({
                    "error": RuntimeError(
                        "{}: {}".format(type(exc).__name__, exc)
                    )
                })
            except Exception:
                pass
    finally:
        try:
            conn.close()
        finally:
            # Skip inherited atexit/finalizers — this process shares the
            # parent's descriptors and buffers via fork.
            os._exit(0)


class _Coordinator:
    """The parent-side outer loop replicating ``Simulator._run_event``."""

    def __init__(self, sim):
        self.sim = sim
        self.stats: SimulationStats = sim.stats
        self.workers = sim.workers
        self.partitioner = sim.partitioner
        root = 0
        proto_node = _unwrap(sim.nodes[0]) if sim.nodes else None
        for node in sim.nodes:
            inner = _unwrap(node)
            tree = getattr(inner, "tree", None)
            if tree is not None and getattr(tree, "is_root", False):
                root = inner.node_id
                break
        self.assignment, self.shards = partition_nodes(
            sim.graph, self.workers, kind=self.partitioner, root=root
        )
        self.n_shards = len(self.shards)
        self.cut_edges = edge_cut(sim.graph, self.assignment)
        plan = sim.faults.plan if sim.faults is not None else None
        self.plan = plan
        self.dead_rounds = [
            _shard_dead_round(plan, members) for members in self.shards
        ]
        self.arith = getattr(proto_node, "arith", None)
        self.config = getattr(proto_node, "config", None)
        n = len(sim.nodes)
        self.done = bytearray(1 if node.done else 0 for node in sim.nodes)
        self.done_count = sum(self.done)
        self.n = n
        # Per-shard liveness and last-report state.
        self.alive = [True] * self.n_shards
        self.min_wake: List[Optional[int]] = [None] * self.n_shards
        self.future_len = [0] * self.n_shards
        self.min_future: List[Optional[int]] = [None] * self.n_shards
        self.pending_frames: List[list] = [[] for _ in range(self.n_shards)]
        self.pending_future_len = [0] * self.n_shards
        self.pending_min_due: List[Optional[int]] = [None] * self.n_shards
        self.fresh_next = False
        self.last_progress = 0
        # Dead-shard handover state.
        self.residue: List[Tuple[int, int]] = []  # heap of (round, node)
        self.dead_seen: Set[int] = set()
        self.dead_payloads: Dict[int, Dict[str, Any]] = {}
        self.merged_fault_payloads: List[Dict[str, Any]] = []
        self.cross_messages = 0
        self.cross_bits = 0
        self.ledger_words = [0] * self.n_shards
        self.children: List[Tuple[int, Any, Any]] = []  # (shard, conn, proc)
        self.worker0: Optional[_ShardWorker] = None
        # --- supervision / checkpoint state -----------------------------
        self.supervision = supervision_for(
            plan, getattr(sim, "supervision", None)
        )
        self.protocol_name = (
            sim.protocol.name if getattr(sim, "protocol", None) else None
        )
        self.start_round = 0
        self.restarts = [0] * self.n_shards
        self.hang_detections = 0
        self.rollbacks = 0
        self.checkpoints_written = 0
        self.checkpoint_bytes = 0
        self.checkpoint_seconds = 0.0
        self._last_ckpt_round = -1
        self.resumed_from: Optional[int] = None
        self.infra_dead: Set[int] = set()
        self.heartbeats: List[Optional[Any]] = [None] * self.n_shards
        self._workers: Dict[int, _ShardWorker] = {}
        self._fallback_state: Optional[Dict[str, Any]] = None
        self._join_timeout = 5.0
        self._ctx = None
        self._ckpt_run_dir: Optional[Path] = None
        self._graph_hash: Optional[str] = None
        sup = self.supervision
        if sup is not None:
            from repro.obs.history import graph_fingerprint, run_key

            self._graph_hash = graph_fingerprint(sim.graph)
            key = run_key(
                self._graph_hash,
                {
                    "protocol": self.protocol_name,
                    "partitioner": self.partitioner,
                    "workers": self.n_shards,
                    "faults": plan.to_dict() if plan is not None else None,
                },
                "shard",
            )
            self._run_key = key
            if sup.checkpoints_enabled:
                self._ckpt_run_dir = Path(sup.checkpoint_dir) / key

    # ------------------------------------------------------------------
    def start(self) -> None:
        import multiprocessing

        sim = self.sim
        self._ctx = multiprocessing.get_context("fork")
        self.worker0 = _ShardWorker(
            sim, 0, self.assignment, self.shards, self.dead_rounds[0]
        )
        for shard in range(1, self.n_shards):
            self._workers[shard] = _ShardWorker(
                sim, shard, self.assignment, self.shards,
                self.dead_rounds[shard],
            )
        sup = self.supervision
        state = None
        if sup is not None and sup.resume_from is not None:
            state = self._load_resume_state(sup.resume_from)
            self._restore_coordinator_state(
                pickle.loads(state["coordinator"])
            )
            self.worker0.restore_state(pickle.loads(state["shards"][0]))
            self.start_round = state["round"]
            self.resumed_from = state["round"]
            self._last_ckpt_round = state["round"]
        self._spawn_children(state)
        if sup is not None:
            # The in-memory rollback floor: the resume snapshot itself,
            # or (fresh run) the pristine pre-round-0 state.  Recovery
            # prefers newer on-disk checkpoints and falls back here when
            # they are corrupt or checkpointing is off.
            self._fallback_state = (
                state if state is not None else self._capture_state(0)
            )

    def _spawn_children(self, state=None) -> None:
        """Fork one child per live shard (optionally from restore blobs).

        The blob rides the fork-inherited ``Process`` args: the child
        unpickles and applies it *in its own address space*, so the
        parent's copy of the shard (frozen at round 0) and the shared
        injector are never disturbed.
        """
        sup = self.supervision
        for shard in range(1, self.n_shards):
            if not self.alive[shard]:
                continue
            heartbeat = (
                self._ctx.Value("d", 0.0, lock=False)
                if sup is not None else None
            )
            restore = state["shards"].get(shard) if state is not None else None
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_child_main,
                args=(
                    child_conn, self._workers[shard], heartbeat, restore,
                    self.restarts[shard],
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.children.append((shard, parent_conn, proc))
            self.heartbeats[shard] = heartbeat

    def _kill_children(self) -> None:
        """Tear the worker pool down hard (rollback path: no goodbyes)."""
        for _shard, conn, _proc in self.children:
            try:
                conn.close()
            except OSError:
                pass
        for _shard, _conn, proc in self.children:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self._join_timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self._join_timeout)
        self.children = []

    def shutdown(self, notify: bool = True) -> None:
        for shard, conn, proc in self.children:
            if notify and self.alive[shard]:
                try:
                    conn.send(("die",))
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:
                pass
        for _shard, _conn, proc in self.children:
            proc.join(timeout=self._join_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self._join_timeout)
            if proc.is_alive():
                # SIGTERM can be masked or mishandled by a wedged child;
                # SIGKILL cannot.  Nothing may outlive the coordinator.
                proc.kill()
                proc.join(timeout=self._join_timeout)

    # ------------------------------------------------------------------
    # checkpoint plumbing
    # ------------------------------------------------------------------
    def _stats_state(self) -> Dict[str, Any]:
        stats = self.stats
        return {
            "message_count": stats.message_count,
            "bit_count": stats.bit_count,
            "max_edge_bits": stats.max_edge_bits_per_round,
            "max_edge_messages": stats.max_edge_messages_per_round,
            "round_series": list(stats.round_series),
            "worst_edge": stats.worst_edge,
            "cut": stats.cut,
        }

    def _restore_stats(self, snap: Dict[str, Any]) -> None:
        stats = self.stats
        stats.message_count = snap["message_count"]
        stats.bit_count = snap["bit_count"]
        stats.max_edge_bits_per_round = snap["max_edge_bits"]
        stats.max_edge_messages_per_round = snap["max_edge_messages"]
        stats.round_series[:] = snap["round_series"]
        stats.worst_edge = snap["worst_edge"]
        if stats.cut is not None and snap["cut"] is not None:
            stats.cut.__dict__.update(snap["cut"].__dict__)

    def _coordinator_state(self, round_number: int) -> Dict[str, Any]:
        """The merge-loop state paired with the shard snapshots.

        Restart counters are deliberately absent: the respawn budget
        tracks wall-clock reality and must never roll back with the
        protocol state.
        """
        return {
            "round": round_number,
            "done": bytes(self.done),
            "done_count": self.done_count,
            "alive": list(self.alive),
            "min_wake": list(self.min_wake),
            "future_len": list(self.future_len),
            "min_future": list(self.min_future),
            "pending_frames": [list(f) for f in self.pending_frames],
            "pending_future_len": list(self.pending_future_len),
            "pending_min_due": list(self.pending_min_due),
            "fresh_next": self.fresh_next,
            "last_progress": self.last_progress,
            "residue": list(self.residue),
            "dead_seen": set(self.dead_seen),
            "dead_payloads": dict(self.dead_payloads),
            "merged_fault_payloads": list(self.merged_fault_payloads),
            "infra_dead": set(self.infra_dead),
            "cross_messages": self.cross_messages,
            "cross_bits": self.cross_bits,
            "ledger_words": list(self.ledger_words),
            "stats": self._stats_state(),
        }

    def _restore_coordinator_state(self, snap: Dict[str, Any]) -> None:
        self.done = bytearray(snap["done"])
        self.done_count = snap["done_count"]
        self.alive = list(snap["alive"])
        self.min_wake = list(snap["min_wake"])
        self.future_len = list(snap["future_len"])
        self.min_future = list(snap["min_future"])
        self.pending_frames = [list(f) for f in snap["pending_frames"]]
        self.pending_future_len = list(snap["pending_future_len"])
        self.pending_min_due = list(snap["pending_min_due"])
        self.fresh_next = snap["fresh_next"]
        self.last_progress = snap["last_progress"]
        self.residue = list(snap["residue"])
        self.dead_seen = set(snap["dead_seen"])
        self.dead_payloads = dict(snap["dead_payloads"])
        self.merged_fault_payloads = list(snap["merged_fault_payloads"])
        self.infra_dead = set(snap.get("infra_dead", ()))
        self.cross_messages = snap["cross_messages"]
        self.cross_bits = snap["cross_bits"]
        self.ledger_words = list(snap["ledger_words"])
        self._restore_stats(snap["stats"])

    def _capture_state(self, round_number: int) -> Dict[str, Any]:
        """In-memory snapshot taken in the parent (pre-round-0 only for
        shards >= 1, whose parent-side copies stay frozen at round 0)."""
        blobs = {}
        for shard in range(1, self.n_shards):
            if self.alive[shard]:
                blobs[shard] = self._workers[shard].snapshot_blob()
        blobs[0] = self.worker0.snapshot_blob()
        return {
            "round": round_number,
            "shards": blobs,
            "coordinator": pickle.dumps(
                self._coordinator_state(round_number),
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        }

    def _ckpt_meta(self) -> Dict[str, Any]:
        meta = {
            "graph": self._graph_hash,
            "n": self.n,
            "workers": self.n_shards,
            "partitioner": self.partitioner,
            "protocol": self.protocol_name,
            "run_key": self._run_key,
        }
        sup = self.supervision
        if sup is not None and sup.meta:
            meta.update(sup.meta)
        return meta

    def _write_checkpoint(self, round_number: int) -> None:
        """Snapshot every shard at the current barrier and commit it."""
        sup = self.supervision
        started = time.perf_counter()
        for shard, conn, _proc in self.children:
            if self.alive[shard]:
                conn.send(("checkpoint",))
        blobs = {0: self.worker0.snapshot_blob()}
        for shard, conn, proc in self.children:
            if self.alive[shard]:
                reply = self._recv(shard, conn, proc, round_number)
                if isinstance(reply, dict) and "error" in reply:
                    self.shutdown()
                    raise reply["error"]
                blobs[shard] = reply
        coord = pickle.dumps(
            self._coordinator_state(round_number),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        ckpt = write_checkpoint(
            self._ckpt_run_dir, round_number, blobs, coord,
            self._ckpt_meta(),
        )
        self._last_ckpt_round = round_number
        self.checkpoints_written += 1
        self.checkpoint_bytes += sum(len(b) for b in blobs.values()) + len(
            coord
        )
        plan = self.plan
        if plan is not None and round_number in getattr(
            plan, "corrupt_checkpoint_rounds", ()
        ):
            corrupt_checkpoint(ckpt, plan.seed, round_number)
        prune_checkpoints(self._ckpt_run_dir, keep=sup.keep_checkpoints)
        self.checkpoint_seconds += time.perf_counter() - started
        if sup.stop_after is not None and round_number >= sup.stop_after:
            raise CheckpointPause(ckpt, round_number)

    def _load_resume_state(self, path) -> Dict[str, Any]:
        ckpt = resolve_checkpoint(Path(path))
        manifest, files = load_checkpoint(ckpt)
        meta = manifest.get("meta", {})
        mismatches = []
        for key, ours in (
            ("graph", self._graph_hash),
            ("n", self.n),
            ("workers", self.n_shards),
            ("partitioner", self.partitioner),
            ("protocol", self.protocol_name),
        ):
            theirs = meta.get(key)
            if theirs != ours:
                mismatches.append(
                    "{}: checkpoint has {!r}, this run has {!r}".format(
                        key, theirs, ours
                    )
                )
        if mismatches:
            raise CheckpointError(
                "checkpoint {} belongs to a different run — {}".format(
                    ckpt, "; ".join(mismatches)
                )
            )
        shards = {
            int(shard): files["shard-{}.bin".format(shard)]
            for shard in manifest["shards"]
        }
        return {
            "round": manifest["round"],
            "shards": shards,
            "coordinator": files["coordinator.bin"],
            "path": ckpt,
        }

    def _load_rollback_state(self) -> Dict[str, Any]:
        """Newest loadable snapshot: disk checkpoints newest-first (a
        corrupt one is skipped, which the checksum turns loud-but-safe),
        then the in-memory fallback (resume point or round 0)."""
        if self._ckpt_run_dir is not None:
            for ckpt in reversed(list_checkpoints(self._ckpt_run_dir)):
                try:
                    manifest, files = load_checkpoint(ckpt)
                except CheckpointError:
                    continue
                return {
                    "round": manifest["round"],
                    "shards": {
                        int(s): files["shard-{}.bin".format(s)]
                        for s in manifest["shards"]
                    },
                    "coordinator": files["coordinator.bin"],
                }
        return self._fallback_state

    def _restore_from_state(self, state: Dict[str, Any]) -> None:
        self._restore_coordinator_state(pickle.loads(state["coordinator"]))
        self.worker0.restore_state(pickle.loads(state["shards"][0]))
        # A rollback may land before a checkpoint the run already wrote;
        # allow the replay to rewrite the newer ones (atomically), so a
        # corrupt snapshot heals instead of poisoning every later
        # recovery.
        self._last_ckpt_round = state["round"]

    # ------------------------------------------------------------------
    # supervision: watchdog recv + recovery
    # ------------------------------------------------------------------
    def _recv(self, shard: int, conn, proc, round_number: int):
        """One worker reply — blocking when unsupervised, watchdog-polled
        (dead vs hung) when supervised."""
        sup = self.supervision
        if sup is None:
            try:
                return conn.recv()
            except EOFError:
                raise RuntimeError(
                    "shard worker {} exited unexpectedly at round "
                    "{}".format(shard, round_number)
                )
        heartbeat = self.heartbeats[shard]
        wait_start = time.monotonic()
        step = min(0.05, sup.heartbeat_timeout / 4.0)
        while True:
            try:
                if conn.poll(step):
                    return conn.recv()
            except (EOFError, OSError):
                raise WorkerFailure(
                    shard, "died",
                    "pipe closed at round {}".format(round_number),
                )
            if not proc.is_alive():
                raise WorkerFailure(
                    shard, "died",
                    "process exited at round {}".format(round_number),
                )
            last_beat = wait_start
            if heartbeat is not None and heartbeat.value > last_beat:
                last_beat = heartbeat.value
            stale = time.monotonic() - last_beat
            if stale > sup.heartbeat_timeout:
                raise WorkerFailure(
                    shard, "hung",
                    "no heartbeat for {:.1f}s at round {}".format(
                        stale, round_number
                    ),
                )

    def _death_payload_from_blob(self, state: Dict[str, Any]) -> Dict[str, Any]:
        """A ``_death_payload`` equivalent built from a checkpoint blob —
        the handover when a worker's restart budget is exhausted and its
        shard is abandoned at its last checkpointed state."""
        from repro.core.records import ledger_storage_totals

        nodes_out = []
        ledgers = []
        for v in sorted(state["nodes"]):
            node = state["nodes"][v]
            inner = _unwrap(node)
            agg = getattr(inner, "aggregation", None)
            counting = getattr(inner, "counting", None)
            ledger = getattr(inner, "ledger", None)
            rows = []
            if ledger is not None:
                ledgers.append(ledger)
                source_col = ledger.source_col
                sigma_col = ledger.sigma_col
                psi_col = ledger.psi_col
                for row in range(len(ledger)):
                    if psi_col[row] is not None:
                        rows.append(
                            (source_col[row], sigma_col[row], psi_col[row])
                        )
            nodes_out.append({
                "node": v,
                "rows": rows,
                "sent": inner.sent_sources(),
                "diameter": getattr(agg, "diameter", None),
                "start": getattr(counting, "own_start_time", None),
                "done": node.done,
            })
        cursor = state["faults"]
        faults_payload = None
        if cursor is not None:
            faults_payload = {
                "counters": dict(cursor["counters"]),
                "recoveries": list(cursor["recoveries"]),
                "seen_crashed": dict(cursor["seen_crashed"]),
            }
        return {
            "faults": faults_payload,
            "cross_messages": state["cross_messages"],
            "cross_bits": state["cross_bits"],
            "ledger_words": ledger_storage_totals(ledgers)["words"],
            "nodes": nodes_out,
            "residue": sorted(state["wake_heap"]),
        }

    def _recover(self, failure: WorkerFailure) -> int:
        """Global rollback after a worker failure; returns the round to
        re-enter the loop at.

        Within budget: kill every child, restore the newest loadable
        snapshot into the parent, re-fork all workers from its blobs
        (after exponential backoff) and replay — bit-identical by the
        barrier-snapshot + keyed-hash-fault argument.  Budget exhausted:
        same rollback, but the failed shard is handed to the existing
        whole-shard-kill machinery (its members reported dead at their
        checkpointed state) and the run degrades deterministically to a
        partial CompletenessReport instead of stalling forever.
        """
        sup = self.supervision
        shard = failure.shard
        if failure.reason == "hung":
            self.hang_detections += 1
        self.rollbacks += 1
        self._kill_children()
        state = self._load_rollback_state()
        if self.restarts[shard] >= sup.max_restarts:
            self._restore_from_state(state)
            payload = self._death_payload_from_blob(
                pickle.loads(state["shards"][shard])
            )
            self._mark_dead(shard, payload)
            self.infra_dead.add(shard)
            self._spawn_children(state)
            return state["round"]
        self.restarts[shard] += 1
        backoff = sup.backoff(self.restarts[shard] - 1)
        if backoff > 0:
            time.sleep(backoff)
        self._restore_from_state(state)
        self._spawn_children(state)
        return state["round"]

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def _global_min_future(self) -> Optional[int]:
        best: Optional[int] = None
        for value in self.min_future:
            if value is not None and (best is None or value < best):
                best = value
        for value in self.pending_min_due:
            if value is not None and (best is None or value < best):
                best = value
        return best

    def _global_future_len(self) -> int:
        return sum(self.future_len) + sum(self.pending_future_len)

    def _alive_min_wake(self) -> Optional[int]:
        best: Optional[int] = None
        for shard in range(self.n_shards):
            if self.alive[shard]:
                value = self.min_wake[shard]
                if value is not None and (best is None or value < best):
                    best = value
        return best

    def _pending_nodes(self) -> Tuple[int, ...]:
        return tuple(v for v in range(self.n) if not self.done[v])

    # ------------------------------------------------------------------
    # dead-shard residue (crash accounting parity with the event engine)
    # ------------------------------------------------------------------
    def _pop_residue(self, round_number: int) -> None:
        residue = self.residue
        if not residue or residue[0][0] > round_number:
            return
        woken: Set[int] = set()
        while residue and residue[0][0] <= round_number:
            _, node_id = heapq.heappop(residue)
            woken.add(node_id)
        faults = self.sim.faults
        if faults is None:
            # Supervision can abandon a shard with no fault plan at all
            # (externally killed worker, restart budget exhausted); there
            # is no crash accounting to mirror then.
            self.dead_seen.update(woken)
            return
        stats = faults.stats
        for node_id in sorted(woken):
            stats.crash_rounds += 1
            if node_id not in self.dead_seen:
                self.dead_seen.add(node_id)
                faults._seen_crashed.setdefault(node_id, round_number)
                windows = sorted(
                    (w for w in self.plan.crashes if w.node == node_id),
                    key=lambda w: w.start,
                )
                for window in windows:
                    if window.end is not None:
                        stats.recoveries.append(
                            (node_id, window.start, window.end)
                        )

    # ------------------------------------------------------------------
    # report handling
    # ------------------------------------------------------------------
    def _apply_report(self, shard: int, report: Dict[str, Any]) -> None:
        for node_id, flag in report["done_changes"]:
            old = self.done[node_id]
            new = 1 if flag else 0
            if old != new:
                self.done[node_id] = new
                self.done_count += 1 if new else -1
        if report["last_progress"] > self.last_progress:
            self.last_progress = report["last_progress"]
        self.min_wake[shard] = report["min_wake"]
        self.future_len[shard] = report["future_len"]
        self.min_future[shard] = report["min_future"]
        if report["fresh_next"]:
            self.fresh_next = True

    def _route_outbox(
        self, shard: int, round_number: int, report: Dict[str, Any]
    ) -> None:
        for dst, batch in report["outbox"].items():
            word, bits, opaque, has_fresh, n_future, min_due = batch
            self.pending_frames[dst].append(
                (shard, round_number, word, bits, opaque)
            )
            if has_fresh:
                self.fresh_next = True
            if n_future:
                self.pending_future_len[dst] += n_future
                current = self.pending_min_due[dst]
                if current is None or min_due < current:
                    self.pending_min_due[dst] = min_due

    def _mark_dead(self, shard: int, payload: Dict[str, Any]) -> None:
        self.alive[shard] = False
        self.dead_payloads[shard] = payload
        for entry in payload["residue"]:
            heapq.heappush(self.residue, tuple(entry))
        self.min_wake[shard] = None
        if payload["faults"] is not None:
            # Residue accounting must not re-record a recovery span the
            # worker already noted before dying: seed the first-seen set
            # now (counters still merge once, at run end).
            for node_id, first in payload["faults"]["seen_crashed"].items():
                self.dead_seen.add(node_id)
                self.sim.faults._seen_crashed.setdefault(node_id, first)
        self._absorb_common(shard, payload)

    def _absorb_common(self, shard: int, payload: Dict[str, Any]) -> None:
        if payload["faults"] is not None:
            self.merged_fault_payloads.append(payload["faults"])
        self.cross_messages += payload["cross_messages"]
        self.cross_bits += payload["cross_bits"]
        self.ledger_words[shard] = payload["ledger_words"]

    def _absorb_worker0(self) -> None:
        """Absorb shard 0's cross counters and ledger words.

        Shard 0 runs in-process and shares the coordinator's injector
        object, so its fault payload must NOT be merged (the counters
        are already live in ``sim.faults.stats``).
        """
        reply = self.worker0._common_reply()
        reply["faults"] = None
        self._absorb_common(0, reply)

    def _merge_fault_stats(self) -> None:
        faults = self.sim.faults
        if faults is None:
            return
        stats = faults.stats
        for payload in self.merged_fault_payloads:
            for name, value in payload["counters"].items():
                setattr(stats, name, getattr(stats, name) + value)
            stats.recoveries.extend(
                tuple(entry) for entry in payload["recoveries"]
            )
            for node_id, first_round in payload["seen_crashed"].items():
                self.dead_seen.add(node_id)
                faults._seen_crashed.setdefault(node_id, first_round)
        # Multi-process accumulation interleaves shards, so normalize to
        # a deterministic order (the single-process list is append-
        # ordered; only its length is surfaced in summaries).
        stats.recoveries.sort()
        self.merged_fault_payloads = []

    # ------------------------------------------------------------------
    # worker conversation
    # ------------------------------------------------------------------
    def _collect_round_reports(
        self, round_number: int
    ) -> List[Tuple[int, Dict[str, Any]]]:
        frames = self.pending_frames
        reports: List[Tuple[int, Dict[str, Any]]] = []
        for shard, conn, _proc in self.children:
            if self.alive[shard]:
                conn.send(("round", round_number, frames[shard]))
                frames[shard] = []
                self.pending_future_len[shard] = 0
                self.pending_min_due[shard] = None
        if self.alive[0]:
            report0 = self.worker0.process_round(round_number, frames[0])
            frames[0] = []
            self.pending_future_len[0] = 0
            self.pending_min_due[0] = None
            reports.append((0, report0))
        for shard, conn, proc in self.children:
            if self.alive[shard]:
                reports.append(
                    (shard, self._recv(shard, conn, proc, round_number))
                )
        for shard, report in reports:
            if "error" in report:
                self.alive[shard] = False
                self.shutdown()
                raise report["error"]
        return reports

    def _broadcast_collect(self, command, round_number: int = -1) -> Dict[int, Any]:
        """Send one command to every live child and gather the replies."""
        replies: Dict[int, Any] = {}
        for shard, conn, _proc in self.children:
            if self.alive[shard]:
                conn.send(command)
        for shard, conn, proc in self.children:
            if self.alive[shard]:
                reply = self._recv(shard, conn, proc, round_number)
                if isinstance(reply, dict) and "error" in reply:
                    self.shutdown()
                    raise reply["error"]
                replies[shard] = reply
        return replies

    # ------------------------------------------------------------------
    # run-end reconciliation
    # ------------------------------------------------------------------
    def _patch_clean(self, shard: int, extracts) -> None:
        nodes = self.sim.nodes
        for node_id, bc_raw, diameter, start, done in extracts:
            node = nodes[node_id]
            inner = _unwrap(node)
            if hasattr(inner, "aggregation"):
                inner.aggregation.betweenness_raw = bc_raw
                inner.aggregation.diameter = diameter
            if hasattr(inner, "counting"):
                inner.counting.own_start_time = start
            node.done = done
            if inner is not node:
                inner.done = done

    def _patch_partial(self, shard: int, extracts) -> None:
        nodes = self.sim.nodes
        for node_id, partial, sent, diameter, start, done in extracts:
            node = nodes[node_id]
            inner = _unwrap(node)
            # Shadow the plain methods with the remote-computed values;
            # the pipeline's _collect_partial recomputes the identical
            # complete set from the shadowed sent_sources, so the
            # ignored argument is safe.
            inner.sent_sources = (lambda _s=sent: _s)
            inner.partial_betweenness_raw = (
                lambda _complete, _v=partial: _v
            )
            if hasattr(inner, "aggregation"):
                inner.aggregation.diameter = diameter
            if hasattr(inner, "counting"):
                inner.counting.own_start_time = start
            node.done = done
            if inner is not node:
                inner.done = done

    def _patch_dead_partial(self, payload, complete_set) -> None:
        arith = self.arith
        nodes = self.sim.nodes
        for entry in payload["nodes"]:
            node_id = entry["node"]
            total = arith.psi_zero()
            for source, sigma, psi in entry["rows"]:
                if source != node_id and source in complete_set:
                    total = arith.psi_add(
                        total, arith.dependency(psi, sigma)
                    )
            node = nodes[node_id]
            inner = _unwrap(node)
            inner.sent_sources = (lambda _s=entry["sent"]: _s)
            inner.partial_betweenness_raw = (
                lambda _complete, _v=total: _v
            )
            if hasattr(inner, "aggregation"):
                inner.aggregation.diameter = entry["diameter"]
            if hasattr(inner, "counting"):
                inner.counting.own_start_time = entry["start"]
            node.done = entry["done"]
            if inner is not node:
                inner.done = entry["done"]

    def _attach_shard_summary(self) -> None:
        self.stats.shard = {
            "workers": self.n_shards,
            "partitioner": self.partitioner,
            "edge_cut": self.cut_edges,
            "cross_messages": self.cross_messages,
            "cross_bits": self.cross_bits,
            "per_shard": [
                {
                    "shard": shard,
                    "nodes": len(self.shards[shard]),
                    "ledger_words": self.ledger_words[shard],
                }
                for shard in range(self.n_shards)
            ],
        }
        if self.supervision is not None or self.resumed_from is not None:
            self.stats.supervisor = {
                "restarts": sum(self.restarts),
                "restarts_per_shard": list(self.restarts),
                "hang_detections": self.hang_detections,
                "rollbacks": self.rollbacks,
                "checkpoints_written": self.checkpoints_written,
                "checkpoint_bytes": self.checkpoint_bytes,
                "checkpoint_seconds": round(self.checkpoint_seconds, 6),
                "last_checkpoint_round": (
                    self._last_ckpt_round
                    if self._last_ckpt_round >= 0 else None
                ),
                "resumed_from": self.resumed_from,
                "shards_abandoned": sorted(self.infra_dead),
            }

    def _finish(self, round_number: int) -> SimulationStats:
        replies = self._broadcast_collect(("finish",), round_number)
        for shard, reply in replies.items():
            self._absorb_common(shard, reply)
            self._patch_clean(shard, reply["extracts"])
        for shard, payload in self.dead_payloads.items():
            # A permanently-crashed shard cannot have let the run reach
            # clean termination, but reconcile defensively.
            self._patch_clean(
                shard,
                [
                    (e["node"], None, e["diameter"], e["start"], e["done"])
                    for e in payload["nodes"]
                ],
            )
        if self.alive[0]:
            self._absorb_worker0()
        self._merge_fault_stats()
        self._attach_shard_summary()
        self.stats.rounds = round_number
        return self.stats

    def _stall(self, round_number: int) -> None:
        """Three-phase stall collection, then raise the structured error."""
        sim = self.sim
        sent_by_node: Dict[int, frozenset] = {}
        if self.alive[0]:
            sent_by_node.update(self.worker0.stall_sent_sources())
        for shard, reply in self._broadcast_collect(
            ("stall",), round_number
        ).items():
            sent_by_node.update(reply)
        for payload in self.dead_payloads.values():
            for entry in payload["nodes"]:
                sent_by_node[entry["node"]] = entry["sent"]
        config = self.config
        expected = sorted(
            v for v in range(self.n)
            if config is not None and config.is_source(v)
        )
        complete = frozenset(
            source
            for source in expected
            if all(
                source in sent
                for owner, sent in sent_by_node.items()
                if owner != source
            )
        )
        for shard, reply in self._broadcast_collect(
            ("partial", complete), round_number
        ).items():
            self._absorb_common(shard, reply)
            self._patch_partial(shard, reply["extracts"])
        for payload in self.dead_payloads.values():
            self._patch_dead_partial(payload, complete)
        if self.alive[0]:
            self._absorb_worker0()
        self._merge_fault_stats()
        self._attach_shard_summary()
        crashed = (
            tuple(sim.faults.crashed_nodes(round_number))
            if sim.faults is not None else ()
        )
        if self.infra_dead:
            # Members of abandoned shards are unreachable for the same
            # practical reason crashed nodes are; report them alongside.
            merged = set(crashed)
            for shard in self.infra_dead:
                merged.update(self.shards[shard])
            crashed = tuple(sorted(merged))
        raise SimulationStalledError(
            round_number,
            self.last_progress,
            self._pending_nodes(),
            crashed,
        )

    def _abort(self, round_number: int) -> None:
        self.shutdown()
        raise SimulationNotTerminatedError(
            round_number,
            self.sim.max_rounds,
            self._pending_nodes(),
            self.sim.graph.name,
        )

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Drive the merge loop, recovering from worker failures.

        Unsupervised this is exactly one ``_run_loop`` pass.  Supervised,
        a :class:`WorkerFailure` escaping the loop (dead or hung worker,
        detected anywhere a reply is awaited) triggers a rollback in
        ``_recover`` and the loop re-enters at the restored round.
        """
        start = self.start_round
        while True:
            try:
                return self._run_loop(start)
            except WorkerFailure as failure:
                start = self._recover(failure)

    def _run_loop(self, start_round: int) -> SimulationStats:
        sim = self.sim
        stats = self.stats
        telemetry = sim.telemetry
        on_tick = None
        if telemetry is not None and getattr(telemetry, "wants_ticks", False):
            on_tick = telemetry.on_round_tick
        on_round_end = (
            telemetry.on_round_end if telemetry is not None else None
        )
        faults = sim.faults
        patience = None
        if faults is not None:
            patience = max(faults.plan.stall_patience, 2 * self.n)
        sup = self.supervision
        checkpoint_every = (
            sup.checkpoint_every
            if sup is not None and self._ckpt_run_dir is not None else 0
        )
        max_rounds = sim.max_rounds
        by_sender = itemgetter(0)
        round_number = start_round
        while True:
            if on_tick is not None:
                on_tick(round_number)
            if faults is not None and (
                round_number - self.last_progress > patience
            ):
                if self._pending_nodes():
                    self._stall(round_number)
            if round_number > max_rounds:
                self._abort(round_number)
            min_future = self._global_min_future()
            traffic = self.fresh_next or (
                min_future is not None and min_future <= round_number
            )
            if not traffic and round_number > 0:
                if self.done_count == self.n and not self._global_future_len():
                    break
                alive_wake = self._alive_min_wake()
                if alive_wake is None or alive_wake > round_number:
                    # Idle at this round for every live shard: account
                    # residual wakes of dead shards (crash-round parity
                    # with the in-process engine), then fast-forward.
                    self._pop_residue(round_number)
                    skip_to = max_rounds + 1
                    for bound in (
                        alive_wake,
                        self.residue[0][0] if self.residue else None,
                        min_future,
                    ):
                        if bound is not None and bound < skip_to:
                            skip_to = bound
                    if skip_to == max_rounds + 1 and self.infra_dead:
                        # Nothing will ever wake again and a shard was
                        # abandoned mid-protocol.  Without a fault plan
                        # no stall-patience timer exists, so degrade to
                        # the partial-collection path here instead of
                        # fast-forwarding into the round-limit abort.
                        self._stall(round_number)
                    while round_number < skip_to:
                        stats.start_round()
                        round_number += 1
                    continue
            # Processed round: checkpoint at the barrier (pre-round state,
            # so a resumed run re-enters the loop right here), then
            # residue accounting, then the barrier itself.
            if (
                checkpoint_every
                and round_number > 0
                and round_number % checkpoint_every == 0
                and round_number > self._last_ckpt_round
            ):
                self._write_checkpoint(round_number)
            self._pop_residue(round_number)
            self.fresh_next = False
            reports = self._collect_round_reports(round_number)
            stats.start_round()
            merged: Dict[Tuple[int, int], List[int]] = {}
            edge_lists = [
                report["edges"] for _shard, report in reports
                if report["edges"]
            ]
            if edge_lists:
                if len(edge_lists) == 1:
                    entries = edge_lists[0]
                else:
                    entries = heapq.merge(*edge_lists, key=by_sender)
                for sender, receiver, messages, bits in entries:
                    merged[(sender, receiver)] = [messages, bits]
            if merged:
                stats.observe_round(round_number, merged)
                if on_round_end is not None:
                    on_round_end(round_number, merged)
            for shard, report in reports:
                self._apply_report(shard, report)
            for shard, report in reports:
                self._route_outbox(shard, round_number, report)
            for shard, report in reports:
                if "shard_dead" in report:
                    self._mark_dead(shard, report["shard_dead"])
            round_number += 1
        return self._finish(round_number)


def run_shard(simulator) -> SimulationStats:
    """Execute ``simulator`` across ``simulator.workers`` processes.

    Called by :meth:`Simulator.run` for ``engine="shard"`` (after the
    dispatcher validated the capability envelope).  Returns the populated
    stats; raises exactly the errors the event engine would.
    """
    coordinator = _Coordinator(simulator)
    coordinator.start()
    try:
        return coordinator.run()
    finally:
        # Clean termination and the stall path already told every live
        # worker to exit (the finish/partial commands are terminal);
        # this sweep covers abrupt error paths and is idempotent.
        coordinator.shutdown()
