"""The sharded multi-process round-synchronous runtime.

``run_shard(simulator)`` executes a run whose node set has been
partitioned across ``simulator.workers`` processes.  Shard 0 runs
inside the coordinator (parent) process — so the protocol root's
telemetry phase hooks stay in-process — and shards ``1..W-1`` run in
forked workers connected by ``multiprocessing`` pipes.  ``fork`` is
required (node factories are closures; forked children inherit the
pre-built node objects copy-on-write), which the dispatcher's
``shard_capability`` probe enforces.

Each worker drives its shard's nodes with a faithful copy of the event
engine's inner loop (wake heaps, passive-message deferral, crash
filtering, fault pipeline).  The coordinator replicates the event
engine's *outer* loop decision for decision — which round to process,
when to fast-forward idle stretches, when to declare termination,
stalling, or the round limit — from per-round worker reports, so a
sharded run is **bit-identical** to ``engine="event"``: same rounds,
same bits, same messages, same worst edge, same betweenness.

Cross-shard traffic travels as encoded wire frames batched per
(src shard, dst shard) per round (:mod:`repro.shard.frames`), decoded
through :mod:`repro.wire` on arrival.  See ``docs/sharding.md`` for
the full barrier protocol and the fault/kill semantics.
"""

from __future__ import annotations

import heapq
import os
from operator import itemgetter
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.congest.node import Inbox, RoundContext
from repro.congest.stats import SimulationStats
from repro.exceptions import (
    CongestViolationError,
    SimulationNotTerminatedError,
    SimulationStalledError,
)
from repro.shard.frames import decode_shard_frame, encode_shard_frame
from repro.shard.partition import edge_cut, partition_nodes


def _unwrap(node):
    """The protocol node behind an optional transport wrapper."""
    return getattr(node, "inner", node)


def _shard_dead_round(plan, members) -> Optional[int]:
    """First round from which *every* member is permanently crashed.

    ``None`` unless each member has a permanent crash window — the
    "kill a whole worker process" scenario.  Deterministically
    computable from the plan by every process, so coordinator and
    worker agree on the shard's death round without negotiation.
    """
    if plan is None:
        return None
    worst = 0
    for v in members:
        starts = [
            w.start for w in plan.crashes if w.node == v and w.end is None
        ]
        if not starts:
            return None
        worst = max(worst, min(starts))
    return worst


class _ShardWorker:
    """One shard's event-engine inner loop (runs in parent or child)."""

    def __init__(self, sim, shard_id, assignment, shards, dead_round):
        self.sim = sim
        self.shard_id = shard_id
        self.assignment = assignment
        self.members = shards[shard_id]
        self.dead_round = dead_round
        self.arith = getattr(_unwrap(sim.nodes[0]), "arith", None)
        # Local event-engine state.  In the parent this aliases the
        # simulator's own (unused by the coordinator); in a forked child
        # it is the inherited copy.
        self.in_flight: Dict[int, List[Tuple[int, Any]]] = {}
        self.future: List[Tuple[int, int, int, int, int, Any]] = []
        self._fseq = 0
        self.edge_load: Dict[Tuple[int, int], List[int]] = {}
        self.edge_frames: Dict[Tuple[int, int], List[Any]] = {}
        # Cross-shard records generated this round, keyed by dst shard.
        self._outbox: Dict[int, List[Tuple[int, int, int, Any]]] = {}
        self.cross_messages = 0
        self.cross_bits = 0

    # ------------------------------------------------------------------
    def process_round(self, round_number: int, frames) -> Dict[str, Any]:
        """Run one synchronous round over this shard; return the report."""
        sim = self.sim
        nodes = sim.nodes
        deferred = sim._deferred
        has_filter = sim._has_wake_filter
        in_flight = self.in_flight
        self.in_flight = {}
        # 1. Ingest cross-shard batches.  Fresh records (due == send
        # round + 1) interleave with local fresh sends sender-sorted —
        # reproducing the single-process invariant that inboxes are
        # sender-sorted by construction; future records (delays,
        # duplicates) join the local future heap keyed so pop order
        # matches the global engine's (due, global seq) order.
        touched: Set[int] = set()
        for src_shard, send_round, word, bits, opaque in frames:
            for sender, receiver, due, message in decode_shard_frame(
                word, bits, opaque, send_round, sim.wire, self.arith
            ):
                if due == send_round + 1:
                    bucket = in_flight.get(receiver)
                    if bucket is None:
                        in_flight[receiver] = [(sender, message)]
                    else:
                        bucket.append((sender, message))
                        touched.add(receiver)
                else:
                    self._fseq += 1
                    heapq.heappush(
                        self.future,
                        (due, send_round, sender, self._fseq, receiver,
                         message),
                    )
        by_sender = itemgetter(0)
        for receiver in touched:
            # Stable: per-sender runs are contiguous within one source
            # list and a sender lives in exactly one shard.
            in_flight[receiver].sort(key=by_sender)
        # 2. Mature local futures due this round (appended after fresh
        # arrivals, exactly like Simulator._mature_futures).
        future = self.future
        while future and future[0][0] <= round_number:
            _due, _sr, sender, _seq, target, message = heapq.heappop(future)
            bucket = in_flight.get(target)
            if bucket is None:
                in_flight[target] = [(sender, message)]
            else:
                bucket.append((sender, message))
        # 3. Delivery with the wake filter (event-engine semantics).
        receivers: Set[int] = set()
        for target, arrivals in in_flight.items():
            box = deferred[target]
            if box is None:
                deferred[target] = arrivals
            else:
                box.extend(arrivals)
            if has_filter[target]:
                wakes = nodes[target].message_wakes
                for sender, message in arrivals:
                    if wakes(sender, message):
                        receivers.add(target)
                        break
            else:
                receivers.add(target)
        # 4. Active set (local nodes only — wakes are registered by
        # local nodes and arrivals are routed here by the coordinator).
        if round_number == 0:
            active: List[int] = list(self.members)
        else:
            heap = sim._wake_heap
            if heap and heap[0][0] <= round_number:
                woken: Set[int] = set()
                while heap and heap[0][0] <= round_number:
                    _, node_id = heapq.heappop(heap)
                    sim._wake_pending[node_id].discard(round_number)
                    woken.add(node_id)
                woken.update(receivers)
                active = sorted(woken)
            else:
                active = sorted(receivers)
        faults = sim.faults
        if faults is not None and active:
            alive: List[int] = []
            for node_id in active:
                if faults.node_crashed(node_id, round_number):
                    faults.note_crash_skip(node_id, round_number)
                    crash_end = faults.crash_end_after(node_id, round_number)
                    if crash_end is not None:
                        sim._register_wake(node_id, crash_end)
                else:
                    alive.append(node_id)
            active = alive
        # 5. Step.
        done_changes: List[Tuple[int, bool]] = []
        if active:
            inboxes: Dict[int, Inbox] = {}
            for node_id in active:
                box = deferred[node_id]
                if box is not None:
                    inboxes[node_id] = box
                    deferred[node_id] = None
            self._step(round_number, inboxes, active, done_changes)
        # 6. Report.
        edge_load = self.edge_load
        edges = [
            (key[0], key[1], load[0], load[1])
            for key, load in edge_load.items()
        ]
        if edge_load:
            if sim.frame_audit:
                sim._audit_frames(round_number, edge_load, self.edge_frames)
                self.edge_frames.clear()
            edge_load.clear()
        outbox = {}
        fresh_next = bool(self.in_flight)
        for dst, records in self._outbox.items():
            word, bits, opaque = encode_shard_frame(
                records, round_number, sim.wire
            )
            has_fresh = False
            n_future = 0
            min_due: Optional[int] = None
            for _s, _r, due, _m in records:
                if due == round_number + 1:
                    has_fresh = True
                else:
                    n_future += 1
                    if min_due is None or due < min_due:
                        min_due = due
            outbox[dst] = (word, bits, opaque, has_fresh, n_future, min_due)
        self._outbox = {}
        report: Dict[str, Any] = {
            "edges": edges,
            "done_changes": done_changes,
            "min_wake": sim._wake_heap[0][0] if sim._wake_heap else None,
            "future_len": len(self.future),
            "min_future": self.future[0][0] if self.future else None,
            "fresh_next": fresh_next,
            "last_progress": (
                faults.last_progress_round if faults is not None else 0
            ),
            "outbox": outbox,
        }
        if (
            self.dead_round is not None
            and round_number >= self.dead_round
        ):
            # Whole-shard kill: every member is permanently crashed from
            # here on.  Ship everything the coordinator needs to stand
            # in for this shard (residual wakes drive the round/stall
            # cadence; ledger rows allow a later partial collection)
            # and let the worker exit.
            report["shard_dead"] = self._death_payload()
        return report

    # ------------------------------------------------------------------
    def _step(self, round_number, inboxes, node_ids, done_changes) -> None:
        """One round over ``node_ids`` — Simulator._step adapted to route
        remote sends into the outbox instead of local in-flight lists."""
        sim = self.sim
        edge_load = self.edge_load
        edge_load_get = edge_load.get
        wire = sim.wire
        budget = sim.bit_budget if sim.strict else None
        frames = self.edge_frames if sim.frame_audit else None
        nodes = sim.nodes
        faults = sim.faults
        in_flight = self.in_flight
        in_flight_get = in_flight.get
        inboxes_get = inboxes.get
        assignment = self.assignment
        my_shard = self.shard_id
        outbox = self._outbox
        empty_inbox: Inbox = []
        for node_id in node_ids:
            node = nodes[node_id]
            was_done = node.done
            ctx = RoundContext(node_id, round_number, node.neighbors)
            if round_number == 0:
                node.on_start(ctx)
            node.on_round(ctx, inboxes_get(node_id, empty_inbox))
            for target, message in ctx.drain():
                bits = message.bit_size(wire)
                key = (node_id, target)
                load = edge_load_get(key)
                if load is None:
                    edge_load[key] = [1, bits]
                    total = bits
                else:
                    load[0] += 1
                    total = load[1] = load[1] + bits
                if budget is not None and total > budget:
                    raise CongestViolationError(
                        round_number, node_id, target, total, budget
                    )
                if frames is not None:
                    frame = frames.get(key)
                    if frame is None:
                        frames[key] = [message]
                    else:
                        frame.append(message)
                remote = assignment[target] != my_shard
                if remote:
                    self.cross_messages += 1
                    self.cross_bits += bits
                if faults is None:
                    outcomes = ((round_number + 1, message),)
                else:
                    outcomes = faults.deliveries(
                        round_number, node_id, target, message
                    )
                for due, delivered in outcomes:
                    if remote:
                        dst = assignment[target]
                        records = outbox.get(dst)
                        entry = (node_id, target, due, delivered)
                        if records is None:
                            outbox[dst] = [entry]
                        else:
                            records.append(entry)
                    elif due == round_number + 1:
                        bucket = in_flight_get(target)
                        if bucket is None:
                            in_flight[target] = [(node_id, delivered)]
                        else:
                            bucket.append((node_id, delivered))
                    else:
                        self._fseq += 1
                        heapq.heappush(
                            self.future,
                            (due, round_number, node_id, self._fseq,
                             target, delivered),
                        )
            if ctx._wakes is not None:
                for wake_round in ctx.drain_wakes():
                    sim._register_wake(node_id, wake_round)
            if node.done != was_done:
                done_changes.append((node_id, node.done))

    # ------------------------------------------------------------------
    # run-end extraction
    # ------------------------------------------------------------------
    def _fault_payload(self):
        faults = self.sim.faults
        if faults is None:
            return None
        stats = faults.stats
        return {
            "counters": {
                name: getattr(stats, name)
                for name in (
                    "dropped", "duplicated", "delayed",
                    "corrupted_detected", "corrupted_undetected",
                    "crash_dropped", "link_dropped", "crash_rounds",
                )
            },
            "recoveries": list(stats.recoveries),
            "seen_crashed": dict(faults._seen_crashed),
        }

    def _common_reply(self) -> Dict[str, Any]:
        from repro.core.records import ledger_storage_totals

        ledgers = []
        for v in self.members:
            node = _unwrap(self.sim.nodes[v])
            ledger = getattr(node, "ledger", None)
            if ledger is not None:
                ledgers.append(ledger)
        return {
            "faults": self._fault_payload(),
            "cross_messages": self.cross_messages,
            "cross_bits": self.cross_bits,
            "ledger_words": ledger_storage_totals(ledgers)["words"],
        }

    def finish_reply(self) -> Dict[str, Any]:
        """Per-node protocol outputs for the clean-termination path."""
        reply = self._common_reply()
        extracts = []
        for v in self.members:
            node = self.sim.nodes[v]
            inner = _unwrap(node)
            agg = getattr(inner, "aggregation", None)
            counting = getattr(inner, "counting", None)
            extracts.append((
                v,
                getattr(agg, "betweenness_raw", None),
                getattr(agg, "diameter", None),
                getattr(counting, "own_start_time", None),
                node.done,
            ))
        reply["extracts"] = extracts
        return reply

    def stall_sent_sources(self) -> Dict[int, frozenset]:
        return {
            v: _unwrap(self.sim.nodes[v]).sent_sources()
            for v in self.members
        }

    def partial_reply(self, complete_set) -> Dict[str, Any]:
        """Per-node partial outputs for the stalled-run path."""
        reply = self._common_reply()
        extracts = []
        for v in self.members:
            node = self.sim.nodes[v]
            inner = _unwrap(node)
            agg = getattr(inner, "aggregation", None)
            counting = getattr(inner, "counting", None)
            extracts.append((
                v,
                inner.partial_betweenness_raw(complete_set),
                inner.sent_sources(),
                getattr(agg, "diameter", None),
                getattr(counting, "own_start_time", None),
                node.done,
            ))
        reply["extracts"] = extracts
        return reply

    def _death_payload(self) -> Dict[str, Any]:
        """State handover when the whole shard is permanently crashed."""
        sim = self.sim
        nodes = []
        for v in self.members:
            node = sim.nodes[v]
            inner = _unwrap(node)
            agg = getattr(inner, "aggregation", None)
            counting = getattr(inner, "counting", None)
            ledger = getattr(inner, "ledger", None)
            rows = []
            if ledger is not None:
                source_col = ledger.source_col
                sigma_col = ledger.sigma_col
                psi_col = ledger.psi_col
                for row in range(len(ledger)):
                    if psi_col[row] is not None:
                        rows.append(
                            (source_col[row], sigma_col[row], psi_col[row])
                        )
            nodes.append({
                "node": v,
                "rows": rows,
                "sent": inner.sent_sources(),
                "diameter": getattr(agg, "diameter", None),
                "start": getattr(counting, "own_start_time", None),
                "done": node.done,
            })
        payload = self._common_reply()
        payload["nodes"] = nodes
        payload["residue"] = sorted(sim._wake_heap)
        return payload


def _child_main(conn, worker) -> None:
    """Command loop of a forked shard worker."""
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "round":
                report = worker.process_round(command[1], command[2])
                conn.send(report)
                if "shard_dead" in report:
                    break
            elif op == "stall":
                conn.send(worker.stall_sent_sources())
            elif op == "partial":
                conn.send(worker.partial_reply(command[1]))
                break
            elif op == "finish":
                conn.send(worker.finish_reply())
                break
            elif op == "die":
                break
    except BaseException as exc:  # ship the failure to the coordinator
        try:
            conn.send({"error": exc})
        except Exception:
            try:
                conn.send({
                    "error": RuntimeError(
                        "{}: {}".format(type(exc).__name__, exc)
                    )
                })
            except Exception:
                pass
    finally:
        try:
            conn.close()
        finally:
            # Skip inherited atexit/finalizers — this process shares the
            # parent's descriptors and buffers via fork.
            os._exit(0)


class _Coordinator:
    """The parent-side outer loop replicating ``Simulator._run_event``."""

    def __init__(self, sim):
        self.sim = sim
        self.stats: SimulationStats = sim.stats
        self.workers = sim.workers
        self.partitioner = sim.partitioner
        root = 0
        proto_node = _unwrap(sim.nodes[0]) if sim.nodes else None
        for node in sim.nodes:
            inner = _unwrap(node)
            tree = getattr(inner, "tree", None)
            if tree is not None and getattr(tree, "is_root", False):
                root = inner.node_id
                break
        self.assignment, self.shards = partition_nodes(
            sim.graph, self.workers, kind=self.partitioner, root=root
        )
        self.n_shards = len(self.shards)
        self.cut_edges = edge_cut(sim.graph, self.assignment)
        plan = sim.faults.plan if sim.faults is not None else None
        self.plan = plan
        self.dead_rounds = [
            _shard_dead_round(plan, members) for members in self.shards
        ]
        self.arith = getattr(proto_node, "arith", None)
        self.config = getattr(proto_node, "config", None)
        n = len(sim.nodes)
        self.done = bytearray(1 if node.done else 0 for node in sim.nodes)
        self.done_count = sum(self.done)
        self.n = n
        # Per-shard liveness and last-report state.
        self.alive = [True] * self.n_shards
        self.min_wake: List[Optional[int]] = [None] * self.n_shards
        self.future_len = [0] * self.n_shards
        self.min_future: List[Optional[int]] = [None] * self.n_shards
        self.pending_frames: List[list] = [[] for _ in range(self.n_shards)]
        self.pending_future_len = [0] * self.n_shards
        self.pending_min_due: List[Optional[int]] = [None] * self.n_shards
        self.fresh_next = False
        self.last_progress = 0
        # Dead-shard handover state.
        self.residue: List[Tuple[int, int]] = []  # heap of (round, node)
        self.dead_seen: Set[int] = set()
        self.dead_payloads: Dict[int, Dict[str, Any]] = {}
        self.merged_fault_payloads: List[Dict[str, Any]] = []
        self.cross_messages = 0
        self.cross_bits = 0
        self.ledger_words = [0] * self.n_shards
        self.children: List[Tuple[int, Any, Any]] = []  # (shard, conn, proc)
        self.worker0: Optional[_ShardWorker] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        import multiprocessing

        sim = self.sim
        ctx = multiprocessing.get_context("fork")
        self.worker0 = _ShardWorker(
            sim, 0, self.assignment, self.shards, self.dead_rounds[0]
        )
        for shard in range(1, self.n_shards):
            parent_conn, child_conn = ctx.Pipe()
            worker = _ShardWorker(
                sim, shard, self.assignment, self.shards,
                self.dead_rounds[shard],
            )
            proc = ctx.Process(
                target=_child_main,
                args=(child_conn, worker),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.children.append((shard, parent_conn, proc))

    def shutdown(self, notify: bool = True) -> None:
        for shard, conn, proc in self.children:
            if notify and self.alive[shard]:
                try:
                    conn.send(("die",))
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:
                pass
        for _shard, _conn, proc in self.children:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    def _global_min_future(self) -> Optional[int]:
        best: Optional[int] = None
        for value in self.min_future:
            if value is not None and (best is None or value < best):
                best = value
        for value in self.pending_min_due:
            if value is not None and (best is None or value < best):
                best = value
        return best

    def _global_future_len(self) -> int:
        return sum(self.future_len) + sum(self.pending_future_len)

    def _alive_min_wake(self) -> Optional[int]:
        best: Optional[int] = None
        for shard in range(self.n_shards):
            if self.alive[shard]:
                value = self.min_wake[shard]
                if value is not None and (best is None or value < best):
                    best = value
        return best

    def _pending_nodes(self) -> Tuple[int, ...]:
        return tuple(v for v in range(self.n) if not self.done[v])

    # ------------------------------------------------------------------
    # dead-shard residue (crash accounting parity with the event engine)
    # ------------------------------------------------------------------
    def _pop_residue(self, round_number: int) -> None:
        residue = self.residue
        if not residue or residue[0][0] > round_number:
            return
        woken: Set[int] = set()
        while residue and residue[0][0] <= round_number:
            _, node_id = heapq.heappop(residue)
            woken.add(node_id)
        faults = self.sim.faults
        stats = faults.stats
        for node_id in sorted(woken):
            stats.crash_rounds += 1
            if node_id not in self.dead_seen:
                self.dead_seen.add(node_id)
                faults._seen_crashed.setdefault(node_id, round_number)
                windows = sorted(
                    (w for w in self.plan.crashes if w.node == node_id),
                    key=lambda w: w.start,
                )
                for window in windows:
                    if window.end is not None:
                        stats.recoveries.append(
                            (node_id, window.start, window.end)
                        )

    # ------------------------------------------------------------------
    # report handling
    # ------------------------------------------------------------------
    def _apply_report(self, shard: int, report: Dict[str, Any]) -> None:
        for node_id, flag in report["done_changes"]:
            old = self.done[node_id]
            new = 1 if flag else 0
            if old != new:
                self.done[node_id] = new
                self.done_count += 1 if new else -1
        if report["last_progress"] > self.last_progress:
            self.last_progress = report["last_progress"]
        self.min_wake[shard] = report["min_wake"]
        self.future_len[shard] = report["future_len"]
        self.min_future[shard] = report["min_future"]
        if report["fresh_next"]:
            self.fresh_next = True

    def _route_outbox(
        self, shard: int, round_number: int, report: Dict[str, Any]
    ) -> None:
        for dst, batch in report["outbox"].items():
            word, bits, opaque, has_fresh, n_future, min_due = batch
            self.pending_frames[dst].append(
                (shard, round_number, word, bits, opaque)
            )
            if has_fresh:
                self.fresh_next = True
            if n_future:
                self.pending_future_len[dst] += n_future
                current = self.pending_min_due[dst]
                if current is None or min_due < current:
                    self.pending_min_due[dst] = min_due

    def _mark_dead(self, shard: int, payload: Dict[str, Any]) -> None:
        self.alive[shard] = False
        self.dead_payloads[shard] = payload
        for entry in payload["residue"]:
            heapq.heappush(self.residue, tuple(entry))
        self.min_wake[shard] = None
        if payload["faults"] is not None:
            # Residue accounting must not re-record a recovery span the
            # worker already noted before dying: seed the first-seen set
            # now (counters still merge once, at run end).
            for node_id, first in payload["faults"]["seen_crashed"].items():
                self.dead_seen.add(node_id)
                self.sim.faults._seen_crashed.setdefault(node_id, first)
        self._absorb_common(shard, payload)

    def _absorb_common(self, shard: int, payload: Dict[str, Any]) -> None:
        if payload["faults"] is not None:
            self.merged_fault_payloads.append(payload["faults"])
        self.cross_messages += payload["cross_messages"]
        self.cross_bits += payload["cross_bits"]
        self.ledger_words[shard] = payload["ledger_words"]

    def _absorb_worker0(self) -> None:
        """Absorb shard 0's cross counters and ledger words.

        Shard 0 runs in-process and shares the coordinator's injector
        object, so its fault payload must NOT be merged (the counters
        are already live in ``sim.faults.stats``).
        """
        reply = self.worker0._common_reply()
        reply["faults"] = None
        self._absorb_common(0, reply)

    def _merge_fault_stats(self) -> None:
        faults = self.sim.faults
        if faults is None:
            return
        stats = faults.stats
        for payload in self.merged_fault_payloads:
            for name, value in payload["counters"].items():
                setattr(stats, name, getattr(stats, name) + value)
            stats.recoveries.extend(
                tuple(entry) for entry in payload["recoveries"]
            )
            for node_id, first_round in payload["seen_crashed"].items():
                self.dead_seen.add(node_id)
                faults._seen_crashed.setdefault(node_id, first_round)
        # Multi-process accumulation interleaves shards, so normalize to
        # a deterministic order (the single-process list is append-
        # ordered; only its length is surfaced in summaries).
        stats.recoveries.sort()
        self.merged_fault_payloads = []

    # ------------------------------------------------------------------
    # worker conversation
    # ------------------------------------------------------------------
    def _collect_round_reports(
        self, round_number: int
    ) -> List[Tuple[int, Dict[str, Any]]]:
        frames = self.pending_frames
        reports: List[Tuple[int, Dict[str, Any]]] = []
        for shard, conn, _proc in self.children:
            if self.alive[shard]:
                conn.send(("round", round_number, frames[shard]))
                frames[shard] = []
                self.pending_future_len[shard] = 0
                self.pending_min_due[shard] = None
        if self.alive[0]:
            report0 = self.worker0.process_round(round_number, frames[0])
            frames[0] = []
            self.pending_future_len[0] = 0
            self.pending_min_due[0] = None
            reports.append((0, report0))
        for shard, conn, _proc in self.children:
            if self.alive[shard]:
                try:
                    reports.append((shard, conn.recv()))
                except EOFError:
                    raise RuntimeError(
                        "shard worker {} exited unexpectedly at round "
                        "{}".format(shard, round_number)
                    )
        for shard, report in reports:
            if "error" in report:
                self.alive[shard] = False
                self.shutdown()
                raise report["error"]
        return reports

    def _broadcast_collect(self, command) -> Dict[int, Any]:
        """Send one command to every live child and gather the replies."""
        replies: Dict[int, Any] = {}
        for shard, conn, _proc in self.children:
            if self.alive[shard]:
                conn.send(command)
        for shard, conn, _proc in self.children:
            if self.alive[shard]:
                reply = conn.recv()
                if isinstance(reply, dict) and "error" in reply:
                    self.shutdown()
                    raise reply["error"]
                replies[shard] = reply
        return replies

    # ------------------------------------------------------------------
    # run-end reconciliation
    # ------------------------------------------------------------------
    def _patch_clean(self, shard: int, extracts) -> None:
        nodes = self.sim.nodes
        for node_id, bc_raw, diameter, start, done in extracts:
            node = nodes[node_id]
            inner = _unwrap(node)
            if hasattr(inner, "aggregation"):
                inner.aggregation.betweenness_raw = bc_raw
                inner.aggregation.diameter = diameter
            if hasattr(inner, "counting"):
                inner.counting.own_start_time = start
            node.done = done
            if inner is not node:
                inner.done = done

    def _patch_partial(self, shard: int, extracts) -> None:
        nodes = self.sim.nodes
        for node_id, partial, sent, diameter, start, done in extracts:
            node = nodes[node_id]
            inner = _unwrap(node)
            # Shadow the plain methods with the remote-computed values;
            # the pipeline's _collect_partial recomputes the identical
            # complete set from the shadowed sent_sources, so the
            # ignored argument is safe.
            inner.sent_sources = (lambda _s=sent: _s)
            inner.partial_betweenness_raw = (
                lambda _complete, _v=partial: _v
            )
            if hasattr(inner, "aggregation"):
                inner.aggregation.diameter = diameter
            if hasattr(inner, "counting"):
                inner.counting.own_start_time = start
            node.done = done
            if inner is not node:
                inner.done = done

    def _patch_dead_partial(self, payload, complete_set) -> None:
        arith = self.arith
        nodes = self.sim.nodes
        for entry in payload["nodes"]:
            node_id = entry["node"]
            total = arith.psi_zero()
            for source, sigma, psi in entry["rows"]:
                if source != node_id and source in complete_set:
                    total = arith.psi_add(
                        total, arith.dependency(psi, sigma)
                    )
            node = nodes[node_id]
            inner = _unwrap(node)
            inner.sent_sources = (lambda _s=entry["sent"]: _s)
            inner.partial_betweenness_raw = (
                lambda _complete, _v=total: _v
            )
            if hasattr(inner, "aggregation"):
                inner.aggregation.diameter = entry["diameter"]
            if hasattr(inner, "counting"):
                inner.counting.own_start_time = entry["start"]
            node.done = entry["done"]
            if inner is not node:
                inner.done = entry["done"]

    def _attach_shard_summary(self) -> None:
        self.stats.shard = {
            "workers": self.n_shards,
            "partitioner": self.partitioner,
            "edge_cut": self.cut_edges,
            "cross_messages": self.cross_messages,
            "cross_bits": self.cross_bits,
            "per_shard": [
                {
                    "shard": shard,
                    "nodes": len(self.shards[shard]),
                    "ledger_words": self.ledger_words[shard],
                }
                for shard in range(self.n_shards)
            ],
        }

    def _finish(self, round_number: int) -> SimulationStats:
        replies = self._broadcast_collect(("finish",))
        for shard, reply in replies.items():
            self._absorb_common(shard, reply)
            self._patch_clean(shard, reply["extracts"])
        for shard, payload in self.dead_payloads.items():
            # A permanently-crashed shard cannot have let the run reach
            # clean termination, but reconcile defensively.
            self._patch_clean(
                shard,
                [
                    (e["node"], None, e["diameter"], e["start"], e["done"])
                    for e in payload["nodes"]
                ],
            )
        if self.alive[0]:
            self._absorb_worker0()
        self._merge_fault_stats()
        self._attach_shard_summary()
        self.stats.rounds = round_number
        return self.stats

    def _stall(self, round_number: int) -> None:
        """Three-phase stall collection, then raise the structured error."""
        sim = self.sim
        sent_by_node: Dict[int, frozenset] = {}
        if self.alive[0]:
            sent_by_node.update(self.worker0.stall_sent_sources())
        for shard, reply in self._broadcast_collect(("stall",)).items():
            sent_by_node.update(reply)
        for payload in self.dead_payloads.values():
            for entry in payload["nodes"]:
                sent_by_node[entry["node"]] = entry["sent"]
        config = self.config
        expected = sorted(
            v for v in range(self.n)
            if config is not None and config.is_source(v)
        )
        complete = frozenset(
            source
            for source in expected
            if all(
                source in sent
                for owner, sent in sent_by_node.items()
                if owner != source
            )
        )
        for shard, reply in self._broadcast_collect(
            ("partial", complete)
        ).items():
            self._absorb_common(shard, reply)
            self._patch_partial(shard, reply["extracts"])
        for payload in self.dead_payloads.values():
            self._patch_dead_partial(payload, complete)
        if self.alive[0]:
            self._absorb_worker0()
        self._merge_fault_stats()
        self._attach_shard_summary()
        raise SimulationStalledError(
            round_number,
            self.last_progress,
            self._pending_nodes(),
            sim.faults.crashed_nodes(round_number),
        )

    def _abort(self, round_number: int) -> None:
        self.shutdown()
        raise SimulationNotTerminatedError(
            round_number,
            self.sim.max_rounds,
            self._pending_nodes(),
            self.sim.graph.name,
        )

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        sim = self.sim
        stats = self.stats
        telemetry = sim.telemetry
        on_tick = None
        if telemetry is not None and getattr(telemetry, "wants_ticks", False):
            on_tick = telemetry.on_round_tick
        on_round_end = (
            telemetry.on_round_end if telemetry is not None else None
        )
        faults = sim.faults
        patience = None
        if faults is not None:
            patience = max(faults.plan.stall_patience, 2 * self.n)
        max_rounds = sim.max_rounds
        by_sender = itemgetter(0)
        round_number = 0
        while True:
            if on_tick is not None:
                on_tick(round_number)
            if faults is not None and (
                round_number - self.last_progress > patience
            ):
                if self._pending_nodes():
                    self._stall(round_number)
            if round_number > max_rounds:
                self._abort(round_number)
            min_future = self._global_min_future()
            traffic = self.fresh_next or (
                min_future is not None and min_future <= round_number
            )
            if not traffic and round_number > 0:
                if self.done_count == self.n and not self._global_future_len():
                    break
                alive_wake = self._alive_min_wake()
                if alive_wake is None or alive_wake > round_number:
                    # Idle at this round for every live shard: account
                    # residual wakes of dead shards (crash-round parity
                    # with the in-process engine), then fast-forward.
                    self._pop_residue(round_number)
                    skip_to = max_rounds + 1
                    for bound in (
                        alive_wake,
                        self.residue[0][0] if self.residue else None,
                        min_future,
                    ):
                        if bound is not None and bound < skip_to:
                            skip_to = bound
                    while round_number < skip_to:
                        stats.start_round()
                        round_number += 1
                    continue
            # Processed round: residue accounting, then one barrier.
            self._pop_residue(round_number)
            self.fresh_next = False
            reports = self._collect_round_reports(round_number)
            stats.start_round()
            merged: Dict[Tuple[int, int], List[int]] = {}
            edge_lists = [
                report["edges"] for _shard, report in reports
                if report["edges"]
            ]
            if edge_lists:
                if len(edge_lists) == 1:
                    entries = edge_lists[0]
                else:
                    entries = heapq.merge(*edge_lists, key=by_sender)
                for sender, receiver, messages, bits in entries:
                    merged[(sender, receiver)] = [messages, bits]
            if merged:
                stats.observe_round(round_number, merged)
                if on_round_end is not None:
                    on_round_end(round_number, merged)
            for shard, report in reports:
                self._apply_report(shard, report)
            for shard, report in reports:
                self._route_outbox(shard, round_number, report)
            for shard, report in reports:
                if "shard_dead" in report:
                    self._mark_dead(shard, report["shard_dead"])
            round_number += 1
        return self._finish(round_number)


def run_shard(simulator) -> SimulationStats:
    """Execute ``simulator`` across ``simulator.workers`` processes.

    Called by :meth:`Simulator.run` for ``engine="shard"`` (after the
    dispatcher validated the capability envelope).  Returns the populated
    stats; raises exactly the errors the event engine would.
    """
    coordinator = _Coordinator(simulator)
    coordinator.start()
    try:
        return coordinator.run()
    finally:
        # Clean termination and the stall path already told every live
        # worker to exit (the finish/partial commands are terminal);
        # this sweep covers abrupt error paths and is idempotent.
        coordinator.shutdown()
