"""Synchronous CONGEST-model network simulator (Section III-A)."""

from repro.congest.message import (
    IntMessage,
    Message,
    PayloadMessage,
    TokenMessage,
    TYPE_TAG_BITS,
    WireFormat,
    int_bits,
)
from repro.congest.node import Inbox, NodeAlgorithm, NodeFactory, RoundContext
from repro.congest.simulator import (
    DEFAULT_CONGEST_FACTOR,
    Simulator,
    run_protocol,
)
from repro.congest.stats import CutTracker, SimulationStats
from repro.congest.primitives import (
    BfsTreeNode,
    BroadcastNode,
    ConvergecastMaxNode,
    ConvergecastNode,
    LeaderElectionNode,
    elect_root,
    make_bfs_tree_factory,
    make_broadcast_factory,
    make_convergecast_factory,
)
from repro.congest.trace import Delivery, FaultEvent, Tracer

__all__ = [
    "BfsTreeNode",
    "BroadcastNode",
    "ConvergecastNode",
    "make_broadcast_factory",
    "ConvergecastMaxNode",
    "LeaderElectionNode",
    "elect_root",
    "make_bfs_tree_factory",
    "make_convergecast_factory",
    "DEFAULT_CONGEST_FACTOR",
    "CutTracker",
    "Inbox",
    "IntMessage",
    "Message",
    "NodeAlgorithm",
    "NodeFactory",
    "PayloadMessage",
    "RoundContext",
    "SimulationStats",
    "Simulator",
    "TokenMessage",
    "Tracer",
    "Delivery",
    "FaultEvent",
    "TYPE_TAG_BITS",
    "WireFormat",
    "int_bits",
    "run_protocol",
]
