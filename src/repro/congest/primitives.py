"""Reusable CONGEST protocol primitives.

The betweenness protocol embeds several textbook building blocks (BFS
tree construction, census convergecast, tree broadcast).  This module
provides *standalone, generic* versions of those primitives plus a
leader election, each as a :class:`~repro.congest.node.NodeAlgorithm`
ready to run on the simulator — useful both for building other
protocols and for discharging the paper's "a BFS tree rooted in a
randomly selected vertex" premise inside the model:

* :class:`BfsTreeNode` — BFS tree from a known root with child
  discovery, subtree census and a completion echo; O(D) rounds.
* :class:`ConvergecastMaxNode` — max-aggregation toward a root over a
  prebuilt tree (the shape DoneReport uses).
* :class:`LeaderElectionNode` — minimum-id leader election in a
  connected graph with *unknown* N and D, via competing BFS-tree echoes:
  every node starts a candidacy; candidacies of non-minimal ids are
  swallowed by smaller waves; the minimum id's tree completes its echo
  and the result is broadcast.  O(D) rounds, O(log N)-bit messages.

The election gives :func:`elect_root`, and
``distributed_betweenness(root=None)`` uses it so the whole pipeline is
self-contained in the message-passing model.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.congest.node import Inbox, NodeAlgorithm, RoundContext
from repro.exceptions import ProtocolError
from repro.wire import ID, UINT, DISTANCE, Message, register

# ----------------------------------------------------------------------
# messages (codec tags 12-15; the dispatch inside the node algorithms
# below stays the readable isinstance form — these primitives are the
# pedagogical counterpart of the production protocol)
# ----------------------------------------------------------------------
@register(12)
class Wave(Message):
    """Generic flood wave carrying an origin id and its hop distance."""

    __slots__ = ("origin", "dist")

    WIRE_LAYOUT = (("origin", ID), ("dist", DISTANCE))

    def __init__(self, origin: int, dist: int):
        self.origin = origin
        self.dist = dist

    def __repr__(self) -> str:
        return "Wave(origin={}, dist={})".format(self.origin, self.dist)


@register(13)
class Join(Message):
    """Child → parent attachment for the wave's tree."""

    __slots__ = ("origin",)

    WIRE_LAYOUT = (("origin", ID),)

    def __init__(self, origin: int):
        self.origin = origin

    def __repr__(self) -> str:
        return "Join(origin={})".format(self.origin)


@register(14)
class Echo(Message):
    """Convergecast payload: subtree aggregate for the wave's tree."""

    __slots__ = ("origin", "value")

    WIRE_LAYOUT = (("origin", ID), ("value", UINT))

    def __init__(self, origin: int, value: int):
        self.origin = origin
        self.value = value

    def __repr__(self) -> str:
        return "Echo(origin={}, value={})".format(self.origin, self.value)


@register(15)
class Decide(Message):
    """Root broadcast announcing the protocol's final value."""

    __slots__ = ("origin", "value")

    WIRE_LAYOUT = (("origin", ID), ("value", UINT))

    def __init__(self, origin: int, value: int):
        self.origin = origin
        self.value = value

    def __repr__(self) -> str:
        return "Decide(origin={}, value={})".format(self.origin, self.value)


# ----------------------------------------------------------------------
# BFS tree with census and completion echo
# ----------------------------------------------------------------------
class BfsTreeNode(NodeAlgorithm):
    """Build BFS(root) with children, subtree sizes and a done echo.

    After termination every node knows its ``parent``, ``children`` and
    ``depth``; the root additionally knows ``census`` = N.  This is the
    standalone form of the betweenness pipeline's phase 0.
    """

    root = 0  # override per run via a closure/factory if needed

    def __init__(self, node_id: int, neighbors: Sequence[int]):
        super().__init__(node_id, neighbors)
        self.parent: Optional[int] = None
        self.children: Set[int] = set()
        self.depth: Optional[int] = None
        self.census: Optional[int] = None
        self._settle_round: Optional[int] = None
        self._children_final = False
        self._child_counts: Dict[int, int] = {}
        self._echo_sent = False

    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        if ctx.round_number == 0 and self.node_id == self.root:
            self.depth = 0
            self._settle_round = 0
            ctx.broadcast(Wave(self.root, 0))
        for sender, message in inbox:
            if isinstance(message, Wave) and self.depth is None:
                self.depth = message.dist + 1
                self.parent = sender
                self._settle_round = ctx.round_number
                ctx.send(sender, Join(message.origin))
                ctx.broadcast(Wave(message.origin, self.depth))
            elif isinstance(message, Join):
                self.children.add(sender)
            elif isinstance(message, Echo):
                self._child_counts[sender] = message.value
        if (
            not self._children_final
            and self._settle_round is not None
            and ctx.round_number >= self._settle_round + 2
        ):
            self._children_final = True
        if not self._children_final and self._settle_round is not None:
            # Children become final on a timer, not a message; tell the
            # event engine to step us then.
            ctx.wake_at(self._settle_round + 2)
        if (
            self._children_final
            and not self._echo_sent
            and all(c in self._child_counts for c in self.children)
        ):
            self._echo_sent = True
            size = 1 + sum(self._child_counts.values())
            if self.node_id == self.root:
                self.census = size
            else:
                ctx.send(self.parent, Echo(self.root, size))
            self.done = True


def make_bfs_tree_factory(root: int):
    """Factory producing :class:`BfsTreeNode` rooted at ``root``."""

    def factory(node_id: int, neighbors: Tuple[int, ...]) -> BfsTreeNode:
        node = BfsTreeNode(node_id, neighbors)
        node.root = root
        return node

    return factory


# ----------------------------------------------------------------------
# convergecast and broadcast over a known tree
# ----------------------------------------------------------------------
class ConvergecastNode(NodeAlgorithm):
    """Reduce per-node values toward the root over a prebuilt tree.

    Construct via :func:`make_convergecast_factory`, supplying the tree
    (parents, children), each node's local value, and an associative
    combiner (default ``max``).  After the run the root's ``result``
    holds the tree-wide reduction; O(depth) rounds, one O(log N)-bit
    message per tree edge.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        parent: Optional[int],
        children: Set[int],
        value: int,
        combine=max,
    ):
        super().__init__(node_id, neighbors)
        self.parent = parent
        self.children = set(children)
        self.value = value
        self.combine = combine
        self.result: Optional[int] = None
        self._reports: Dict[int, int] = {}

    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        for sender, message in inbox:
            if isinstance(message, Echo):
                self._reports[sender] = message.value
        if self.done:
            return
        if all(c in self._reports for c in self.children):
            aggregate = self.value
            for child_value in self._reports.values():
                aggregate = self.combine(aggregate, child_value)
            if self.parent is None:
                self.result = aggregate
            else:
                ctx.send(self.parent, Echo(self.node_id, aggregate))
            self.done = True


#: Backwards-compatible name for the max reduction.
ConvergecastMaxNode = ConvergecastNode


def make_convergecast_factory(
    parents: Dict[int, Optional[int]],
    children: Dict[int, Set[int]],
    values: Dict[int, int],
    combine=max,
):
    """Factory for :class:`ConvergecastNode` over a given tree."""

    def factory(node_id: int, neighbors: Tuple[int, ...]):
        return ConvergecastNode(
            node_id,
            neighbors,
            parents[node_id],
            children[node_id],
            values[node_id],
            combine=combine,
        )

    return factory


class BroadcastNode(NodeAlgorithm):
    """Tree broadcast: the root's value reaches every node in O(depth).

    Construct via :func:`make_broadcast_factory`.  After the run every
    node's ``received`` holds the root's value.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        children: Set[int],
        value: Optional[int],
    ):
        super().__init__(node_id, neighbors)
        self.children = set(children)
        self.received: Optional[int] = value  # root starts with it

    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        if self.done:
            return
        for _sender, message in inbox:
            if isinstance(message, Decide):
                self.received = message.value
        if self.received is not None:
            for child in sorted(self.children):
                ctx.send(child, Decide(self.node_id, self.received))
            self.done = True


def make_broadcast_factory(
    children: Dict[int, Set[int]],
    root: int,
    value: int,
):
    """Factory for :class:`BroadcastNode` distributing ``value`` from root."""

    def factory(node_id: int, neighbors: Tuple[int, ...]):
        return BroadcastNode(
            node_id,
            neighbors,
            children[node_id],
            value if node_id == root else None,
        )

    return factory


# ----------------------------------------------------------------------
# leader election (minimum id) with unknown N and D
# ----------------------------------------------------------------------
class LeaderElectionNode(NodeAlgorithm):
    """Minimum-priority leader election via competing BFS candidacies.

    Every node starts a candidacy wave at round 0.  Nodes adopt the
    lowest-priority origin they have heard (re-flooding it once per
    adoption) and abandon higher-priority candidacies.  Tree
    joins/echoes are tracked per adopted origin; only the global
    minimum's tree ever completes its echo back to the origin (every
    node eventually adopts it), at which point the winner broadcasts
    :class:`Decide` and all nodes learn the ``leader``.

    With the default ``seed = None`` the priority is the node id (the
    classic minimum-id election).  With a shared integer seed every
    node ranks candidates by a common pseudo-random permutation of the
    ids — realizing the paper's "randomly selected vertex" inside the
    model (the seed is shared knowledge, like the port numbering).

    O(D) rounds after the winner's wave saturates; every message is
    O(log N) bits.
    """

    #: shared priority seed (None = plain minimum-id election).
    seed: Optional[int] = None

    def _rank(self, candidate: int):
        if self.seed is None:
            return candidate
        # A 32-bit avalanche mix (xorshift-multiply) keyed by the shared
        # seed; the id tie-break makes the order a total permutation.
        x = ((candidate + 1) * 2654435761 + self.seed * 0x9E3779B9) & 0xFFFFFFFF
        x ^= x >> 16
        x = (x * 0x45D9F3B) & 0xFFFFFFFF
        x ^= x >> 16
        return (x, candidate)

    def __init__(self, node_id: int, neighbors: Sequence[int]):
        super().__init__(node_id, neighbors)
        #: best (lowest-priority) candidate adopted so far (own id initially).
        self.best = node_id
        self.parent: Optional[int] = None  # parent in best's tree
        self.depth = 0
        self.leader: Optional[int] = None
        self._settle_round = 0
        self._children: Set[int] = set()
        self._child_counts: Dict[int, int] = {}
        self._echo_sent = False
        self._decided = False

    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        if ctx.round_number == 0:
            ctx.broadcast(Wave(self.node_id, 0))
        self._handle_inbox(ctx, inbox)
        self._maybe_echo(ctx)

    def _adopt(self, ctx: RoundContext, origin: int, dist: int, sender):
        self.best = origin
        self.parent = sender
        self.depth = dist + 1 if sender is not None else 0
        self._settle_round = ctx.round_number
        self._children = set()
        self._child_counts = {}
        self._echo_sent = False
        if sender is not None:
            ctx.send(sender, Join(origin))
        ctx.broadcast(Wave(origin, self.depth))

    def _handle_inbox(self, ctx: RoundContext, inbox: Inbox) -> None:
        best_wave = None
        for sender, message in inbox:
            if isinstance(message, Wave):
                if self._rank(message.origin) < self._rank(self.best) and (
                    best_wave is None
                    or self._rank(message.origin)
                    < self._rank(best_wave[1].origin)
                ):
                    best_wave = (sender, message)
            elif isinstance(message, Join):
                if message.origin == self.best:
                    self._children.add(sender)
            elif isinstance(message, Echo):
                if message.origin == self.best:
                    self._child_counts[sender] = message.value
            elif isinstance(message, Decide):
                if not self._decided:
                    self._decided = True
                    self.leader = message.origin
                    ctx.broadcast(Decide(message.origin, message.value))
                    self.done = True
        if best_wave is not None:
            sender, wave = best_wave
            self._adopt(ctx, wave.origin, wave.dist, sender)

    def _maybe_echo(self, ctx: RoundContext) -> None:
        if self._echo_sent or self._decided:
            return
        if ctx.round_number < self._settle_round + 2:
            # Children not final yet — a timer, so register the wake for
            # the event engine (adoptions reset the settle round).
            ctx.wake_at(self._settle_round + 2)
            return
        if any(c not in self._child_counts for c in self._children):
            return
        size = 1 + sum(self._child_counts.values())
        self._echo_sent = True
        if self.best == self.node_id:
            # Our own candidacy's echo completed: we heard back from a
            # saturated tree with no smaller id anywhere in it — and
            # since every node adopts the global minimum, only the
            # minimum ever reaches this point.
            self._decided = True
            self.leader = self.node_id
            ctx.broadcast(Decide(self.node_id, size))
            self.done = True
        else:
            ctx.send(self.parent, Echo(self.best, size))


def elect_root(graph, seed: Optional[int] = None, **simulator_kwargs) -> Tuple[int, int]:
    """Run leader election on ``graph``; returns ``(leader, rounds)``.

    Discharges the paper's "randomly selected vertex" premise inside
    the model: with a shared ``seed``, the elected node is a
    pseudo-random vertex; without one, the minimum id wins.
    """
    from repro.congest.simulator import run_protocol

    def factory(node_id, neighbors):
        node = LeaderElectionNode(node_id, neighbors)
        node.seed = seed
        return node

    nodes, stats = run_protocol(graph, factory, **simulator_kwargs)
    leaders = {node.leader for node in nodes}
    if len(leaders) != 1 or None in leaders:
        raise ProtocolError(
            "leader election did not converge: {}".format(leaders)
        )
    return leaders.pop(), stats.rounds
