"""Compatibility shim: the message layer now lives in :mod:`repro.wire`.

Historically the simulator's generic messages lived here while the
betweenness protocol's lived in ``repro.core.messages``, each with its
own heuristic ``payload_bits``.  Both now share the typed codec of
:mod:`repro.wire` — exact encoded widths, one tag registry, one
encoder/decoder — and this module only re-exports the names its
importers relied on.
"""

from repro.wire import (
    TYPE_TAG_BITS,
    IntMessage,
    Message,
    PayloadMessage,
    TokenMessage,
    WireFormat,
    int_bits,
)

__all__ = [
    "TYPE_TAG_BITS",
    "IntMessage",
    "Message",
    "PayloadMessage",
    "TokenMessage",
    "WireFormat",
    "int_bits",
]
