"""Messages and wire-size accounting for the CONGEST simulator.

The CONGEST model allows each node to send at most O(log N) bits per
edge per round.  To make that restriction *checkable* rather than
nominal, every message carries an explicit bit cost: node identifiers
cost ``ceil(log2 N)`` bits, round stamps cost the bits of the round
horizon, counters cost their actual binary length, and arithmetic
payloads report their own width (2L + 1 bits for the paper's floating
point format, the true integer length in exact mode — which is exactly
how the "Large Value Challenge" becomes observable).

A :class:`WireFormat` captures the per-network constants; message
classes implement :meth:`Message.payload_bits` against it.
"""

from __future__ import annotations

import abc
import math
from typing import Any

#: Bits reserved to tag the message type on the wire.  A real
#: implementation multiplexing a handful of protocol message kinds needs
#: a small constant tag; 4 bits cover 16 kinds.
TYPE_TAG_BITS = 4


def int_bits(value: int) -> int:
    """Bits to encode the non-negative integer ``value`` (at least 1)."""
    if value < 0:
        raise ValueError("wire integers are non-negative")
    return max(1, value.bit_length())


class WireFormat:
    """Per-network wire-size constants.

    Parameters
    ----------
    num_nodes:
        N; node identifiers cost ``ceil(log2 N)`` bits.
    round_horizon:
        An upper bound on any round number carried in a message.  The
        paper's algorithm finishes within O(N) rounds; the pipeline
        passes ``6 * N + 16`` which is safely above the worst case.
    """

    def __init__(self, num_nodes: int, round_horizon: int = 0):
        if num_nodes < 1:
            raise ValueError("wire format needs at least one node")
        self.num_nodes = num_nodes
        self.id_bits = max(1, math.ceil(math.log2(num_nodes)))
        horizon = round_horizon if round_horizon > 0 else 6 * num_nodes + 16
        self.round_bits = max(1, math.ceil(math.log2(horizon + 1)))
        # Distances and diameters are < N, so they fit in id_bits.
        self.distance_bits = self.id_bits

    def __repr__(self) -> str:
        return "WireFormat(N={}, id_bits={}, round_bits={})".format(
            self.num_nodes, self.id_bits, self.round_bits
        )


class Message(abc.ABC):
    """Base class for everything sent over an edge.

    Subclasses are small frozen records; they must implement
    :meth:`payload_bits`.  The total wire size adds the type tag.

    Messages are treated as **immutable once enqueued**: the simulator
    delivers the same object to every receiver (a broadcast enqueues one
    instance per neighbor) and memoizes :meth:`bit_size` per instance,
    so mutating a message after sending it would desynchronize the bit
    accounting.
    """

    __slots__ = ("_bit_cache",)

    @abc.abstractmethod
    def payload_bits(self, wire: WireFormat) -> int:
        """Bits of the payload under the given wire format."""

    def bit_size(self, wire: WireFormat) -> int:
        """Total wire size: type tag plus payload.

        The result is cached per (message, wire) pair — a broadcast of
        one instance over many edges encodes its payload exactly once.
        """
        try:
            cached = self._bit_cache
        except AttributeError:
            cached = None
        if cached is not None and cached[0] is wire:
            return cached[1]
        bits = TYPE_TAG_BITS + self.payload_bits(wire)
        self._bit_cache = (wire, bits)
        return bits


class TokenMessage(Message):
    """A pure signal with no payload (e.g. a DFS token hand-off)."""

    __slots__ = ("kind",)

    def __init__(self, kind: str = "token"):
        self.kind = kind

    def payload_bits(self, wire: WireFormat) -> int:
        return 0

    def __repr__(self) -> str:
        return "TokenMessage({!r})".format(self.kind)


class IntMessage(Message):
    """A single non-negative integer (used by tests and simple protocols)."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def payload_bits(self, wire: WireFormat) -> int:
        return int_bits(self.value)

    def __repr__(self) -> str:
        return "IntMessage({})".format(self.value)


class PayloadMessage(Message):
    """An opaque payload with an explicitly declared bit cost.

    Useful for modelling protocols (e.g. the two-party communication
    arguments of Section IX) where only the *amount* of information
    matters to the analysis.
    """

    __slots__ = ("payload", "bits")

    def __init__(self, payload: Any, bits: int):
        self.payload = payload
        self.bits = int(bits)

    def payload_bits(self, wire: WireFormat) -> int:
        return self.bits

    def __repr__(self) -> str:
        return "PayloadMessage(bits={})".format(self.bits)
