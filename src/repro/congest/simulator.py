"""The synchronous CONGEST-model network simulator.

Semantics (matching Section III-A of the paper):

* Execution proceeds in globally synchronized rounds ``0, 1, 2, ...``.
* A message enqueued in round ``t`` is delivered at the start of round
  ``t + 1``; channels are reliable and FIFO.
* Within a round a node first receives, then computes (for free), then
  sends — so a node at distance ℓ from a BFS source settles *and*
  forwards the wave in round ``T_s + ℓ``, exactly the timing the paper's
  Lemma 4 arithmetic assumes.
* In **strict mode** the simulator enforces the CONGEST bandwidth
  restriction: the bits enqueued on one directed edge in one round may
  not exceed ``congest_factor * ceil(log2 N)``; an overflow raises
  :class:`~repro.exceptions.CongestViolationError`.  The factor models
  the O(·) constant; the paper's algorithm needs only a small constant
  because at most one BFS wave, one aggregation message, one token and
  one control message share an edge per round.

The simulator is deterministic: nodes act in id order and inboxes are
sorted by sender id, so every run (and therefore every benchmark table)
is exactly reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.congest.message import Message, WireFormat
from repro.congest.node import Inbox, NodeAlgorithm, NodeFactory, RoundContext
from repro.congest.stats import CutTracker, SimulationStats
from repro.exceptions import (
    CongestViolationError,
    SimulationNotTerminatedError,
)
from repro.graphs.graph import Graph

#: Default per-edge budget multiplier: budget = factor * ceil(log2 N).
#: The pipeline's worst round stacks a BFS wave (id + round stamp +
#: distance + a 2L+1-bit float), a token and a control message, all
#: O(log N); 32 covers L = 3 log2 N comfortably while still catching the
#: Theta(N)-bit messages of exact arithmetic on path-count-heavy graphs.
DEFAULT_CONGEST_FACTOR = 32


class Simulator:
    """Run a :class:`NodeAlgorithm` on every node of a graph.

    Parameters
    ----------
    graph:
        The communication topology.
    node_factory:
        Called as ``node_factory(node_id, neighbors)`` for every node.
    strict:
        Enforce the per-edge bit budget (default True).
    congest_factor:
        Budget multiplier c in ``c * ceil(log2 N)`` bits per directed
        edge per round.
    max_rounds:
        Safety valve; exceeded ⇒ :class:`SimulationNotTerminatedError`.
        Defaults to ``20 * N + 1000``, far above the paper's O(N) bound.
    cut:
        Optional node set: traffic crossing the induced 2-partition is
        tallied in ``stats.cut`` (used by the Section IX experiments).
    wire:
        Override the :class:`WireFormat` (defaults to one sized for the
        graph).
    tracer:
        Optional :class:`~repro.congest.trace.Tracer` recording every
        delivery for post-run inspection.
    """

    def __init__(
        self,
        graph: Graph,
        node_factory: NodeFactory,
        strict: bool = True,
        congest_factor: int = DEFAULT_CONGEST_FACTOR,
        max_rounds: Optional[int] = None,
        cut: Optional[Iterable[int]] = None,
        wire: Optional[WireFormat] = None,
        tracer=None,
    ):
        self.graph = graph
        self.strict = strict
        self.wire = wire or WireFormat(max(1, graph.num_nodes))
        # O(log N) hides an additive constant; flooring the log factor
        # at 4 bits keeps degenerate 2-node networks from being starved
        # below a single float-carrying message.
        self.bit_budget = congest_factor * max(4, self.wire.id_bits)
        self.max_rounds = (
            max_rounds if max_rounds is not None else 20 * graph.num_nodes + 1000
        )
        self.stats = SimulationStats()
        self.tracer = tracer
        if cut is not None:
            self.stats.cut = CutTracker(frozenset(cut))
        self.nodes: List[NodeAlgorithm] = [
            node_factory(v, graph.neighbors(v)) for v in graph.nodes()
        ]
        # messages delivered at the start of the *next* round:
        # receiver -> list of (sender, message)
        self._in_flight: Dict[int, List[Tuple[int, Message]]] = {}

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Drive rounds until every node is done and no message is in flight.

        Returns the populated :class:`SimulationStats`.
        """
        round_number = 0
        while True:
            if round_number > self.max_rounds:
                raise SimulationNotTerminatedError(
                    "simulation exceeded {} rounds on {!r}".format(
                        self.max_rounds, self.graph.name
                    )
                )
            inboxes, had_traffic = self._deliver()
            if not had_traffic and self._all_done() and round_number > 0:
                break
            self._step(round_number, inboxes)
            round_number += 1
        self.stats.rounds = round_number
        return self.stats

    # ------------------------------------------------------------------
    def _deliver(self) -> Tuple[Dict[int, Inbox], bool]:
        """Move in-flight messages into per-node inboxes."""
        inboxes = self._in_flight
        self._in_flight = {}
        had_traffic = bool(inboxes)
        for inbox in inboxes.values():
            inbox.sort(key=lambda pair: pair[0])  # deterministic order
        return inboxes, had_traffic

    def _all_done(self) -> bool:
        return all(node.done for node in self.nodes)

    def _step(self, round_number: int, inboxes: Dict[int, Inbox]) -> None:
        """Run one synchronous round across all nodes."""
        self.stats.start_round()
        per_edge_bits: Dict[Tuple[int, int], int] = {}
        per_edge_msgs: Dict[Tuple[int, int], int] = {}
        for node in self.nodes:
            ctx = RoundContext(node.node_id, round_number, node.neighbors)
            if round_number == 0:
                node.on_start(ctx)
            node.on_round(ctx, inboxes.get(node.node_id, []))
            for target, message in ctx.drain():
                bits = message.bit_size(self.wire)
                if self.tracer is not None:
                    self.tracer.record(
                        round_number, node.node_id, target, message, bits
                    )
                key = (node.node_id, target)
                per_edge_bits[key] = per_edge_bits.get(key, 0) + bits
                per_edge_msgs[key] = per_edge_msgs.get(key, 0) + 1
                if self.strict and per_edge_bits[key] > self.bit_budget:
                    raise CongestViolationError(
                        round_number,
                        node.node_id,
                        target,
                        per_edge_bits[key],
                        self.bit_budget,
                    )
                self._in_flight.setdefault(target, []).append(
                    (node.node_id, message)
                )
        for (sender, receiver), bits in per_edge_bits.items():
            self.stats.observe_edge_load(
                round_number,
                sender,
                receiver,
                per_edge_msgs[(sender, receiver)],
                bits,
            )


def run_protocol(
    graph: Graph,
    node_factory: NodeFactory,
    **kwargs,
) -> Tuple[List[NodeAlgorithm], SimulationStats]:
    """Convenience wrapper: build a :class:`Simulator`, run it, return nodes.

    Returns
    -------
    (nodes, stats):
        The node objects after termination (holding their local outputs)
        and the run statistics.
    """
    sim = Simulator(graph, node_factory, **kwargs)
    stats = sim.run()
    return sim.nodes, stats
