"""The synchronous CONGEST-model network simulator.

Semantics (matching Section III-A of the paper):

* Execution proceeds in globally synchronized rounds ``0, 1, 2, ...``.
* A message enqueued in round ``t`` is delivered at the start of round
  ``t + 1``; channels are reliable and FIFO.
* Within a round a node first receives, then computes (for free), then
  sends — so a node at distance ℓ from a BFS source settles *and*
  forwards the wave in round ``T_s + ℓ``, exactly the timing the paper's
  Lemma 4 arithmetic assumes.
* In **strict mode** the simulator enforces the CONGEST bandwidth
  restriction: the bits enqueued on one directed edge in one round may
  not exceed ``congest_factor * ceil(log2 N)``; an overflow raises
  :class:`~repro.exceptions.CongestViolationError`.  The factor models
  the O(·) constant; the paper's algorithm needs only a small constant
  because at most one BFS wave, one aggregation message, one token and
  one control message share an edge per round.

The simulator is deterministic: nodes act in id order, and each inbox
lists messages in sender-id order (senders act in id order, so the
in-flight lists are sender-sorted by construction — no per-round sort is
needed), so every run (and therefore every benchmark table) is exactly
reproducible.

Two execution engines share these semantics:

* ``engine="sweep"`` (the default) calls ``on_round`` on **every** node
  **every** round, exactly like a lockstep hardware network would.  It
  makes no assumptions about the node algorithm and is the reference
  for differential testing, tracing and debugging.
* ``engine="event"`` only steps **active** nodes: nodes with a
  newly delivered *waking* message, plus nodes that registered an
  explicit self-wake via :meth:`RoundContext.wake_at`.  Rounds in which
  no node is active are fast-forwarded without touching any node.  The
  paper's pipelined schedule (Lemma 4) leaves most nodes idle in most
  rounds, so this drops the O(N * rounds) Python-level sweep to the
  protocol's true activity volume.  **Contract:** a node stepped with
  an empty inbox outside its registered wake rounds must not change
  state or send — protocols whose idle ``on_round`` has side effects
  (e.g. counting quiet rounds) must either register wakes or use the
  sweep engine.

  Receivers can additionally declare individual arrivals *passive* via
  :meth:`NodeAlgorithm.message_wakes`: a passive message is delivered
  (it lands in the node's inbox and counts toward the round's traffic
  and edge budgets exactly as under the sweep engine) but does not by
  itself cause a step — it is processed in batch at the node's next
  step.  This is only sound for messages whose handling neither
  mutates state nor sends (pure acknowledgements / broadcast echoes);
  the betweenness protocol uses it for the BFS-wave echoes that ripple
  back from already-settled nodes, which dominate the active-step
  count on high-diameter graphs.
"""

from __future__ import annotations

import gc
import heapq
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.congest.node import Inbox, NodeAlgorithm, NodeFactory, RoundContext
from repro.congest.stats import CutTracker, SimulationStats
from repro.exceptions import (
    CongestViolationError,
    SimulationNotTerminatedError,
    WireCodecError,
)
from repro.wire import Message, WireFormat, encode_frame
from repro.graphs.graph import Graph

#: Default per-edge budget multiplier: budget = factor * ceil(log2 N).
#: The pipeline's worst round stacks a BFS wave (id + round stamp +
#: distance + a 2L+1-bit float), a token and a control message, all
#: O(log N); 32 covers L = 3 log2 N comfortably while still catching the
#: Theta(N)-bit messages of exact arithmetic on path-count-heavy graphs.
DEFAULT_CONGEST_FACTOR = 32

#: Recognized execution engines (see the module docstring).  ``"auto"``
#: resolves to the fastest capable engine at construction time via
#: :func:`repro.engines.resolve_engine`; ``"bulk"`` is the vectorized
#: numpy backend and ``"shard"`` the multi-process runtime of
#: :mod:`repro.shard` (both raise
#: :class:`~repro.exceptions.EngineCapabilityError` when the run falls
#: outside their envelope).  ``"auto"`` never resolves to ``"shard"``
#: — multi-process execution is an explicit opt-in.
ENGINES = ("sweep", "event", "bulk", "shard", "auto")


class Simulator:
    """Run a :class:`NodeAlgorithm` on every node of a graph.

    Parameters
    ----------
    graph:
        The communication topology.
    node_factory:
        Called as ``node_factory(node_id, neighbors)`` for every node.
    strict:
        Enforce the per-edge bit budget (default True).
    congest_factor:
        Budget multiplier c in ``c * ceil(log2 N)`` bits per directed
        edge per round.
    max_rounds:
        Safety valve; exceeded ⇒ :class:`SimulationNotTerminatedError`.
        Defaults to ``20 * N + 1000``, far above the paper's O(N) bound.
    cut:
        Optional node set: traffic crossing the induced 2-partition is
        tallied in ``stats.cut`` (used by the Section IX experiments).
    wire:
        Override the :class:`WireFormat` (defaults to one sized for the
        graph).
    tracer:
        Optional :class:`~repro.congest.trace.Tracer` recording every
        delivery for post-run inspection.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` (duck-typed —
        this module does not import ``repro.obs``).  When given, the
        simulator calls ``on_run_start(self)`` before the first round,
        ``on_send(round, sender, receiver, message, bits)`` per enqueued
        message (only if ``telemetry.wants_sends``), ``on_round_end(
        round, edge_load)`` after each round with traffic (with the
        reusable accounting buffer, before it is cleared), and
        ``on_run_end(stats)`` after termination.  If
        ``telemetry.profiler`` is set, the engines additionally time
        their delivery/step sections and count scheduling events.  The
        disabled path (``None``, the default) costs one identity check
        per hook site, mirroring ``tracer``.
    engine:
        ``"sweep"`` (default) steps every node every round; ``"event"``
        steps only nodes with pending messages or registered wakes and
        fast-forwards idle rounds.  Both engines produce identical
        results for protocols honoring the wake contract (see the
        module docstring).
    frame_audit:
        When True, the simulator additionally *materializes* every
        per-edge per-round frame through the wire codec
        (:func:`repro.wire.encode_frame` coalesces the edge's messages
        into one bit string) and verifies its length equals the bits
        the accounting charged; a disagreement raises
        :class:`~repro.exceptions.WireCodecError`.  This turns the
        bandwidth numbers from "trusted bookkeeping" into "checked
        against real encoded frames" at the cost of encoding every
        message, so it is off by default.  (Incompatible with resilient
        transport runs, whose envelopes are honestly sized but live
        outside the 4-bit tag registry.)
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` or pre-built
        :class:`~repro.faults.injector.FaultInjector`.  When given,
        every send is routed through the injector's delivery pipeline
        (drop / duplicate / delay / corrupt / link-down), nodes inside
        crash windows are skipped instead of stepped, and a per-round
        stall check converts a starved run into
        :class:`~repro.exceptions.SimulationStalledError`.  ``None``
        (the default) is a zero-cost fast path: one identity check per
        hook site, and the run is bit-identical to a faultless build.
    protocol:
        Optional protocol name or :class:`~repro.protocols.Protocol`
        descriptor identifying the algorithm the node factory builds.
        When omitted it is inferred from the constructed nodes' exact
        class (``None`` for unregistered custom algorithms).  The
        engine dispatcher, the progress estimator and the telemetry
        metadata consult it instead of probing for the stock node.
    gc_pause:
        Pause the cyclic garbage collector for the duration of the
        run.  Off by default — the array-backed ledger removed the
        Theta(N^2) tracked records that once made this dominate (see
        :meth:`run`); opt in for long single-process event-engine
        sweeps, where skipping collections over the message churn is
        still worth ~15% at N = 800.
    workers:
        Number of worker processes for ``engine="shard"`` (ignored by
        the single-process engines).  Shard 0 runs inside this process;
        the rest are forked children exchanging encoded wire frames per
        round.  See ``docs/sharding.md``.
    partitioner:
        Node-partitioning strategy for ``engine="shard"``: ``"greedy"``
        (default, graph-growing edge-cut minimizer) or ``"block"``
        (contiguous id ranges).
    supervision:
        A :class:`repro.shard.supervisor.SupervisionConfig` turning the
        shard coordinator into a supervisor (heartbeat watchdog, worker
        respawn, round-boundary checkpoints, resume).  Requires
        ``engine="shard"``; see ``docs/recovery.md``.
    checkpoint_every, checkpoint_dir, max_restarts, heartbeat_timeout,
    resume_from:
        Scalar shorthands assembled into a ``SupervisionConfig`` when
        ``supervision`` is not given.  All default to off; setting any
        of them implies supervision (and therefore ``engine="shard"``).
    """

    def __init__(
        self,
        graph: Graph,
        node_factory: NodeFactory,
        strict: bool = True,
        congest_factor: int = DEFAULT_CONGEST_FACTOR,
        max_rounds: Optional[int] = None,
        cut: Optional[Iterable[int]] = None,
        wire: Optional[WireFormat] = None,
        tracer=None,
        telemetry=None,
        engine: str = "sweep",
        frame_audit: bool = False,
        faults=None,
        protocol=None,
        gc_pause: bool = False,
        workers: int = 1,
        partitioner: str = "greedy",
        supervision=None,
        checkpoint_every: int = 0,
        checkpoint_dir=None,
        max_restarts: int = 0,
        heartbeat_timeout: Optional[float] = None,
        resume_from=None,
    ):
        if engine not in ENGINES:
            raise ValueError(
                "unknown engine {!r} (expected one of {})".format(
                    engine, ENGINES
                )
            )
        if not isinstance(workers, int) or workers < 1:
            raise ValueError(
                "workers must be a positive int, got {!r}".format(workers)
            )
        # Worker count and partitioner apply to engine="shard" only;
        # they are validated here (and the partitioner name by
        # repro.shard.partition at run time) so a typo fails fast even
        # when the run resolves to a single-process engine.
        from repro.shard.partition import PARTITIONERS

        if partitioner not in PARTITIONERS:
            raise ValueError(
                "unknown partitioner {!r} (expected one of {})".format(
                    partitioner, PARTITIONERS
                )
            )
        self.workers = workers
        self.partitioner = partitioner
        # Supervision (heartbeats, respawn, round-boundary checkpoints,
        # resume) for engine="shard".  An explicit SupervisionConfig
        # wins; otherwise the scalar knobs assemble one; otherwise None
        # keeps the unsupervised fast path byte-for-byte intact.
        if supervision is not None:
            self.supervision = supervision
        elif (
            checkpoint_every
            or max_restarts
            or heartbeat_timeout is not None
            or checkpoint_dir is not None
            or resume_from is not None
        ):
            from repro.shard.supervisor import (
                DEFAULT_HEARTBEAT_TIMEOUT,
                SupervisionConfig,
            )

            self.supervision = SupervisionConfig(
                heartbeat_timeout=(
                    heartbeat_timeout if heartbeat_timeout is not None
                    else DEFAULT_HEARTBEAT_TIMEOUT
                ),
                max_restarts=max_restarts,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=(
                    str(checkpoint_dir) if checkpoint_dir is not None
                    else None
                ),
                resume_from=(
                    str(resume_from) if resume_from is not None else None
                ),
            )
        else:
            self.supervision = None
        self.graph = graph
        self.strict = strict
        self.engine = engine
        self.wire = wire or WireFormat(max(1, graph.num_nodes))
        # O(log N) hides an additive constant; flooring the log factor
        # at 4 bits keeps degenerate 2-node networks from being starved
        # below a single float-carrying message.
        self.bit_budget = congest_factor * max(4, self.wire.id_bits)
        self.max_rounds = (
            max_rounds if max_rounds is not None else 20 * graph.num_nodes + 1000
        )
        self.stats = SimulationStats()
        self.tracer = tracer
        if tracer is not None and hasattr(tracer, "bind_wire"):
            # Payload-capturing tracers encode each message through the
            # run's wire format (see repro.congest.trace).
            tracer.bind_wire(self.wire)
        self.telemetry = telemetry
        if cut is not None:
            self.stats.cut = CutTracker(frozenset(cut))
        self.nodes: List[NodeAlgorithm] = [
            node_factory(v, graph.neighbors(v)) for v in graph.nodes()
        ]
        # messages delivered at the start of the *next* round:
        # receiver -> list of (sender, message).  Senders are stepped in
        # id order, so each list is sender-sorted by construction.
        self._in_flight: Dict[int, List[Tuple[int, Message]]] = {}
        # Reusable per-round edge accounting buffer (cleared, never
        # reallocated): directed edge -> [messages, bits] this round.
        self._edge_load: Dict[Tuple[int, int], List[int]] = {}
        # Frame audit (off by default): directed edge -> the round's
        # message objects, encoded and length-checked at round end.
        self.frame_audit = frame_audit
        self._edge_frames: Dict[Tuple[int, int], List[Message]] = {}
        # Event engine state: a heap of pending wake rounds plus a
        # per-node set of registered rounds (deduplicating re-requests).
        self._wake_heap: List[Tuple[int, int]] = []
        self._wake_pending: List[Set[int]] = [set() for _ in self.nodes]
        # Per-node accumulation inboxes (event engine): delivered but
        # not yet consumed messages.  A node consumes its buffer when
        # stepped; passive messages may sit here across several rounds.
        self._deferred: List[Optional[List[Tuple[int, Message]]]] = [
            None for _ in self.nodes
        ]
        # Nodes whose class overrides message_wakes get the per-message
        # delivery filter; everyone else wakes on any arrival without
        # paying a method call per message.
        base_wakes = NodeAlgorithm.message_wakes
        self._has_wake_filter: List[bool] = [
            type(node).message_wakes is not base_wakes for node in self.nodes
        ]
        # Fault injection (None = zero-cost fast path).  A bare
        # FaultPlan is wrapped in a fresh injector here; the import is
        # lazy so repro.congest keeps no hard dependency on repro.faults.
        if faults is not None and not hasattr(faults, "deliveries"):
            from repro.faults.injector import FaultInjector

            faults = FaultInjector(faults, tracer=tracer)
        self.faults = faults
        # Messages maturing later than next round (delays, duplicates):
        # a heap of (delivery round, tiebreak, sender, target, message).
        self._future: List[Tuple[int, int, int, int, Message]] = []
        self._future_seq = 0
        if faults is not None:
            faults.bind(self)
            self.stats.faults = faults.stats
        #: Explicit GC pause around the run loop.  The PR 1 workaround
        #: for the old object-ledger's Theta(N^2) tracked records; the
        #: array-backed ledger keeps its rows in GC-invisible buffers,
        #: so the pause is off by default and opt-in for long sweeps.
        self.gc_pause = gc_pause
        # The registered protocol this run executes: an explicit name /
        # descriptor, or inferred from the node class the factory built
        # (transport wrappers expose the protocol node as ``.inner``).
        # None for unregistered custom algorithms.  Lazy import keeps
        # repro.congest importable without the protocols package.
        from repro.protocols import get_protocol, protocol_of_node

        if protocol is not None:
            self.protocol = get_protocol(protocol)
        else:
            probe = self.nodes[0] if self.nodes else None
            if probe is not None:
                probe = getattr(probe, "inner", probe)
            self.protocol = (
                protocol_of_node(probe) if probe is not None else None
            )
        # Resolve "auto" / validate "bulk" now that nodes and faults are
        # in place, so self.engine is a concrete name before run() (and
        # before telemetry snapshots it in on_run_start).  Lazy import:
        # repro.congest stays importable without the engines package.
        self.engine_requested = engine
        self.engine_decision = None
        if engine in ("auto", "bulk", "shard"):
            from repro.engines import decide_engine

            self.engine_decision = decide_engine(engine, self)
            self.engine = self.engine_decision.resolved
        if self.supervision is not None and self.engine != "shard":
            # Supervision only exists in the multi-process runtime; a
            # silently-ignored checkpoint/resume request would be a
            # durability lie, so fail loudly instead.
            from repro.exceptions import EngineCapabilityError

            raise EngineCapabilityError(
                self.engine,
                "supervision (checkpoints, restarts, resume) requires "
                "engine='shard'",
            )
        self.stats.engine = self.engine

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Drive rounds until every node is done and no message is in flight.

        Historical note: PR 1 paused the cyclic garbage collector here
        unconditionally, because the old object-backed ledger grew
        Theta(N^2) tracked records and each allocation-triggered
        collection scanned them for nothing (over half the wall clock
        at N = 800).  The array-backed
        :class:`~repro.core.records.NodeLedger` keeps its rows in flat
        buffers the collector never sees, so the unconditional pause is
        retired: runs up to N = 2000 complete on the event engine with
        GC live.  What remains is ordinary collection pressure from the
        per-round message churn — measured ~15% of wall clock at
        N = 800 on the event engine — so the pause survives as the
        opt-in ``gc_pause`` flag for long single-process sweeps
        (correctness is identical either way).

        Returns the populated :class:`SimulationStats`.
        """
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_run_start(self)
        pause = self.gc_pause and gc.isenabled()
        if pause:
            gc.disable()
        try:
            if self.engine == "event":
                stats = self._run_event()
            elif self.engine == "bulk":
                from repro.engines.bulk import run_bulk

                stats = run_bulk(self)
            elif self.engine == "shard":
                from repro.shard.runtime import run_shard

                stats = run_shard(self)
            else:
                stats = self._run_sweep()
        finally:
            if pause:
                gc.enable()
        if telemetry is not None:
            telemetry.on_run_end(stats)
        return stats

    # ------------------------------------------------------------------
    # sweep engine: the reference lockstep loop
    # ------------------------------------------------------------------
    def _run_sweep(self) -> SimulationStats:
        all_ids = range(len(self.nodes))
        telemetry = self.telemetry
        profiler = telemetry.profiler if telemetry is not None else None
        # Streaming/progress tick: bound once, None on the fast path, so
        # a run without a bus or estimator pays one identity check per
        # round (same discipline as tracer/faults).
        on_tick = None
        if telemetry is not None and getattr(telemetry, "wants_ticks", False):
            on_tick = telemetry.on_round_tick
        faults = self.faults
        round_number = 0
        while True:
            if on_tick is not None:
                on_tick(round_number)
            if faults is not None:
                faults.check_stalled(round_number, self)
                if self._future:
                    self._mature_futures(round_number)
            if round_number > self.max_rounds:
                raise SimulationNotTerminatedError(
                    round_number,
                    self.max_rounds,
                    tuple(n.node_id for n in self.nodes if not n.done),
                    self.graph.name,
                )
            inboxes, had_traffic = self._deliver()
            if (
                not had_traffic
                and round_number > 0
                and not self._future
                and self._all_done()
            ):
                break
            if profiler is None:
                self._step(round_number, inboxes, all_ids)
            else:
                started = perf_counter()
                self._step(round_number, inboxes, all_ids)
                profiler.add("engine.step", perf_counter() - started)
            round_number += 1
        self.stats.rounds = round_number
        return self.stats

    # ------------------------------------------------------------------
    # event engine: active-set scheduling
    # ------------------------------------------------------------------
    def _run_event(self) -> SimulationStats:
        nodes = self.nodes
        deferred = self._deferred
        has_filter = self._has_wake_filter
        telemetry = self.telemetry
        profiler = telemetry.profiler if telemetry is not None else None
        on_tick = None
        if telemetry is not None and getattr(telemetry, "wants_ticks", False):
            on_tick = telemetry.on_round_tick
        faults = self.faults
        done_count = sum(1 for node in nodes if node.done)
        round_number = 0
        while True:
            if on_tick is not None:
                on_tick(round_number)
            if faults is not None:
                faults.check_stalled(round_number, self)
                if self._future:
                    self._mature_futures(round_number)
            if round_number > self.max_rounds:
                raise SimulationNotTerminatedError(
                    round_number,
                    self.max_rounds,
                    tuple(n.node_id for n in nodes if not n.done),
                    self.graph.name,
                )
            # Delivery with the wake filter: every arrival lands in the
            # receiver's accumulation buffer, but only *waking* messages
            # pull the receiver into this round's active set.
            in_flight = self._in_flight
            had_traffic = bool(in_flight)
            receivers: Set[int] = set()
            if had_traffic:
                started = perf_counter() if profiler is not None else 0.0
                self._in_flight = {}
                for target, arrivals in in_flight.items():
                    box = deferred[target]
                    if box is None:
                        deferred[target] = arrivals
                    else:
                        box.extend(arrivals)
                    if has_filter[target]:
                        wakes = nodes[target].message_wakes
                        for sender, message in arrivals:
                            if wakes(sender, message):
                                receivers.add(target)
                                break
                    else:
                        receivers.add(target)
                if profiler is not None:
                    profiler.add("engine.deliver", perf_counter() - started)
            elif (
                done_count == len(nodes)
                and round_number > 0
                and not self._future
            ):
                break
            active = self._active_set(round_number, receivers)
            if faults is not None and active:
                # Crashed nodes are filtered *before* their deferred
                # buffers are consumed (fail-pause preserves them), and
                # woken again at the first alive round so a finite
                # crash window resumes by itself.
                alive: List[int] = []
                for node_id in active:
                    if faults.node_crashed(node_id, round_number):
                        faults.note_crash_skip(node_id, round_number)
                        crash_end = faults.crash_end_after(
                            node_id, round_number
                        )
                        if crash_end is not None:
                            self._register_wake(node_id, crash_end)
                    else:
                        alive.append(node_id)
                active = alive
            if not active:
                if had_traffic:
                    # Every arrival this round was passive: the round
                    # elapses (the messages were on the wire) but no
                    # node needs stepping.
                    if profiler is not None:
                        profiler.bump("engine.passive_rounds")
                    self.stats.start_round()
                    round_number += 1
                    continue
                # Idle round(s): nobody receives and nobody asked to be
                # woken.  By the wake contract no node would change
                # state, so fast-forward to the next registered wake
                # (the sweep engine would burn an O(N) no-op pass per
                # round here).  With no wake pending at all the network
                # is permanently silent: run the round counter out so
                # the failure mode matches the sweep engine's.  Delayed
                # deliveries sitting in the future heap cap the skip the
                # same way registered wakes do.
                skip_to = self.max_rounds + 1
                if self._wake_heap:
                    skip_to = min(skip_to, self._wake_heap[0][0])
                if self._future:
                    skip_to = min(skip_to, self._future[0][0])
                if profiler is not None and skip_to > round_number:
                    profiler.bump(
                        "engine.fast_forwarded_rounds", skip_to - round_number
                    )
                while round_number < skip_to:
                    self.stats.start_round()
                    round_number += 1
                continue
            inboxes: Dict[int, Inbox] = {}
            for node_id in active:
                box = deferred[node_id]
                if box is not None:
                    inboxes[node_id] = box
                    deferred[node_id] = None
            if profiler is None:
                done_count += self._step(round_number, inboxes, active)
            else:
                started = perf_counter()
                done_count += self._step(round_number, inboxes, active)
                profiler.add("engine.step", perf_counter() - started)
                profiler.bump("engine.active_node_steps", len(active))
            round_number += 1
        self.stats.rounds = round_number
        return self.stats

    def _active_set(
        self, round_number: int, receivers: Set[int]
    ) -> List[int]:
        """Node ids to step this round, in ascending (deterministic) order."""
        if round_number == 0:
            # Round 0 is special: every node gets on_start + on_round,
            # exactly as under the sweep engine.
            return list(range(len(self.nodes)))
        heap = self._wake_heap
        if heap and heap[0][0] <= round_number:
            woken: Set[int] = set()
            while heap and heap[0][0] <= round_number:
                _, node_id = heapq.heappop(heap)
                self._wake_pending[node_id].discard(round_number)
                woken.add(node_id)
            woken.update(receivers)
            return sorted(woken)
        return sorted(receivers)

    def _register_wake(self, node_id: int, wake_round: int) -> None:
        pending = self._wake_pending[node_id]
        if wake_round not in pending:
            pending.add(wake_round)
            heapq.heappush(self._wake_heap, (wake_round, node_id))

    # ------------------------------------------------------------------
    # shared per-round machinery
    # ------------------------------------------------------------------
    def _deliver(self) -> Tuple[Dict[int, Inbox], bool]:
        """Move in-flight messages into per-node inboxes.

        Inboxes are sender-sorted by construction (senders act in id
        order and channels are FIFO), so no sorting is needed here.
        """
        inboxes = self._in_flight
        self._in_flight = {}
        return inboxes, bool(inboxes)

    def _all_done(self) -> bool:
        return all(node.done for node in self.nodes)

    def _mature_futures(self, round_number: int) -> None:
        """Move delayed deliveries due by ``round_number`` into in-flight.

        Runs before the round's delivery pass in both engines, so a
        matured message is handed over exactly like a message sent last
        round (it only arrives later in the inbox list — receivers must
        not rely on sender-sorted inboxes under an active fault plan).
        """
        future = self._future
        in_flight = self._in_flight
        while future and future[0][0] <= round_number:
            _due, _seq, sender, target, message = heapq.heappop(future)
            bucket = in_flight.get(target)
            if bucket is None:
                in_flight[target] = [(sender, message)]
            else:
                bucket.append((sender, message))

    def _step(
        self,
        round_number: int,
        inboxes: Dict[int, Inbox],
        node_ids: Iterable[int],
    ) -> int:
        """Run one synchronous round over ``node_ids`` (ascending order).

        Returns the net change in the number of done nodes (consumed by
        the event engine's incremental termination check).
        """
        self.stats.start_round()
        event = self.engine == "event"
        edge_load = self._edge_load
        edge_load_get = edge_load.get
        wire = self.wire
        tracer = self.tracer
        telemetry = self.telemetry
        on_send = None
        on_round_end = None
        if telemetry is not None:
            if telemetry.wants_sends:
                on_send = telemetry.on_send
            on_round_end = telemetry.on_round_end
        budget = self.bit_budget if self.strict else None
        frames = self._edge_frames if self.frame_audit else None
        nodes = self.nodes
        faults = self.faults
        in_flight = self._in_flight
        in_flight_get = in_flight.get
        inboxes_get = inboxes.get
        empty_inbox: Inbox = []
        done_delta = 0
        for node_id in node_ids:
            if faults is not None and faults.node_crashed(
                node_id, round_number
            ):
                # Fail-pause: the node is frozen, not stepped.  (The
                # event engine filters crashed nodes out of the active
                # set before this loop; this branch is the sweep path.)
                faults.note_crash_skip(node_id, round_number)
                continue
            node = nodes[node_id]
            was_done = node.done
            ctx = RoundContext(node_id, round_number, node.neighbors)
            if round_number == 0:
                node.on_start(ctx)
            node.on_round(ctx, inboxes_get(node_id, empty_inbox))
            for target, message in ctx.drain():
                bits = message.bit_size(wire)
                if tracer is not None:
                    tracer.record(round_number, node_id, target, message, bits)
                if on_send is not None:
                    on_send(round_number, node_id, target, message, bits)
                key = (node_id, target)
                load = edge_load_get(key)
                if load is None:
                    edge_load[key] = [1, bits]
                    total = bits
                else:
                    load[0] += 1
                    total = load[1] = load[1] + bits
                if budget is not None and total > budget:
                    raise CongestViolationError(
                        round_number, node_id, target, total, budget
                    )
                if frames is not None:
                    frame = frames.get(key)
                    if frame is None:
                        frames[key] = [message]
                    else:
                        frame.append(message)
                if faults is None:
                    bucket = in_flight_get(target)
                    if bucket is None:
                        in_flight[target] = [(node_id, message)]
                    else:
                        bucket.append((node_id, message))
                else:
                    # The send was billed above regardless of fate: the
                    # sender transmitted; the network decides delivery.
                    for due, delivered in faults.deliveries(
                        round_number, node_id, target, message
                    ):
                        if due == round_number + 1:
                            bucket = in_flight_get(target)
                            if bucket is None:
                                in_flight[target] = [(node_id, delivered)]
                            else:
                                bucket.append((node_id, delivered))
                        else:
                            self._future_seq += 1
                            heapq.heappush(
                                self._future,
                                (due, self._future_seq, node_id, target,
                                 delivered),
                            )
            if event:
                if ctx._wakes is not None:
                    for wake_round in ctx.drain_wakes():
                        self._register_wake(node_id, wake_round)
                if node.done != was_done:
                    done_delta += 1 if node.done else -1
        if edge_load:
            if frames is not None:
                self._audit_frames(round_number, edge_load, frames)
                frames.clear()
            self.stats.observe_round(round_number, edge_load)
            if on_round_end is not None:
                on_round_end(round_number, edge_load)
            edge_load.clear()
        return done_delta

    def _audit_frames(
        self,
        round_number: int,
        edge_load: Dict[Tuple[int, int], List[int]],
        frames: Dict[Tuple[int, int], List[Message]],
    ) -> None:
        """Materialize each edge's coalesced frame and check its length.

        The accounting charged ``sum(bit_size)`` per edge; the codec
        guarantees a coalesced frame is exactly that long.  A mismatch
        means a message lied about its size (or mutated after being
        enqueued) and the CONGEST budget was enforced on wrong numbers.
        """
        wire = self.wire
        for key, load in edge_load.items():
            _word, frame_bits = encode_frame(frames[key], wire)
            if frame_bits != load[1]:
                sender, receiver = key
                raise WireCodecError(
                    "round {}: edge {}->{} charged {} bits but its "
                    "encoded frame is {} bits".format(
                        round_number, sender, receiver, load[1], frame_bits
                    )
                )


def run_protocol(
    graph: Graph,
    node_factory: NodeFactory,
    **kwargs,
) -> Tuple[List[NodeAlgorithm], SimulationStats]:
    """Convenience wrapper: build a :class:`Simulator`, run it, return nodes.

    Returns
    -------
    (nodes, stats):
        The node objects after termination (holding their local outputs)
        and the run statistics.
    """
    sim = Simulator(graph, node_factory, **kwargs)
    stats = sim.run()
    return sim.nodes, stats
