"""Node-algorithm interface for the synchronous CONGEST simulator.

A distributed algorithm is expressed as a :class:`NodeAlgorithm`
subclass.  The simulator instantiates one object per graph node (via a
factory), then drives rounds: in each round every node receives the
messages sent to it in the previous round, updates its local state, and
enqueues messages for its neighbors.  Local computation is free, exactly
as in the model of Section III-A of the paper; only rounds and message
bits are accounted.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence, Tuple

from repro.congest.message import Message

#: The inbox handed to ``on_round``: (sender id, message) pairs, in
#: deterministic (sender-sorted, enqueue-ordered) order.
Inbox = List[Tuple[int, Message]]


class RoundContext:
    """Per-round API a node uses to interact with the network.

    The simulator creates one context per node per round; ``send`` and
    ``broadcast`` enqueue messages for delivery at the start of the next
    round.
    """

    __slots__ = ("node_id", "round_number", "_neighbors", "_outbox", "_wakes")

    def __init__(self, node_id: int, round_number: int, neighbors: Sequence[int]):
        self.node_id = node_id
        self.round_number = round_number
        self._neighbors = neighbors
        self._outbox: List[Tuple[int, Message]] = []
        self._wakes: Optional[List[int]] = None

    @property
    def neighbors(self) -> Sequence[int]:
        """This node's neighbor ids (local knowledge)."""
        return self._neighbors

    def send(self, target: int, message: Message) -> None:
        """Enqueue ``message`` for neighbor ``target`` (delivered next round)."""
        if target not in self._neighbors:
            raise ValueError(
                "node {} has no edge to {}".format(self.node_id, target)
            )
        self._outbox.append((target, message))

    def broadcast(self, message: Message) -> None:
        """Send ``message`` to every neighbor."""
        for target in self._neighbors:
            self._outbox.append((target, message))

    def wake_at(self, round_number: int) -> None:
        """Register a self-wake: step this node again at ``round_number``.

        Under the event engine (``Simulator(engine="event")``) a node is
        only stepped when its inbox is non-empty; a node whose next
        action is triggered by the *round number* alone (a scheduled
        aggregation send, a timer such as "my children are final two
        rounds after I settle") must register that round here or it will
        sleep through it.  The sweep engine steps every node every round
        and ignores wake registrations.

        Registering the same round twice, or a round that also delivers
        messages, is harmless.  The round must lie strictly in the
        future.
        """
        if round_number <= self.round_number:
            raise ValueError(
                "node {} asked to wake at round {} which is not after the "
                "current round {}".format(
                    self.node_id, round_number, self.round_number
                )
            )
        if self._wakes is None:
            self._wakes = [round_number]
        else:
            self._wakes.append(round_number)

    def drain(self) -> List[Tuple[int, Message]]:
        """Internal: hand the enqueued sends to the simulator."""
        out, self._outbox = self._outbox, []
        return out

    def drain_wakes(self) -> Sequence[int]:
        """Internal: hand the registered wake rounds to the simulator."""
        wakes = self._wakes
        if wakes is None:
            return ()
        self._wakes = None
        return wakes


class NodeAlgorithm(abc.ABC):
    """Base class for the per-node state machine of a protocol.

    Subclasses receive their id and neighbor list at construction and
    implement :meth:`on_round`.  A node signals completion by setting
    :attr:`done`; the simulation terminates when every node is done and
    no message is in flight.

    To be runnable under the event engine (``Simulator(engine="event")``)
    a node must uphold the **active-set invariant**: whenever its next
    state change or send is triggered purely by the round number (not by
    an incoming message), it registers that round via
    :meth:`RoundContext.wake_at` before returning from ``on_round``.
    Purely message-driven algorithms need no registrations.
    """

    def __init__(self, node_id: int, neighbors: Sequence[int]):
        self.node_id = node_id
        self.neighbors = tuple(neighbors)
        self.done = False

    def on_start(self, ctx: RoundContext) -> None:
        """Called once in round 0 before any message exchange.

        The default does nothing; override to send wake-up messages.
        ``on_round`` is also called in round 0, with an empty inbox,
        after ``on_start``.
        """

    @abc.abstractmethod
    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        """Process one synchronous round.

        Parameters
        ----------
        ctx:
            Sending interface and the current round number.
        inbox:
            Messages delivered this round (sent in the previous one).
            Under the event engine, deferred passive messages from
            earlier rounds (see :meth:`message_wakes`) precede this
            round's arrivals.
        """

    def message_wakes(self, sender: int, message: Message) -> bool:
        """Whether an arriving message must wake this node (event engine).

        The event engine consults this at delivery time.  Returning
        False marks the message *passive*: it is still delivered (it
        was on the wire, so it counts toward the round's traffic and
        per-edge budgets exactly as under the sweep engine) but does
        not by itself schedule a step; it waits in the inbox until the
        node's next step.  Only declare a message passive if handling
        it never mutates state and never sends — e.g. a broadcast echo
        that the handler merely validates and discards.  Messages that
        can signal a protocol violation should wake the node so the
        error surfaces in the same round as under the sweep engine.

        The default wakes on everything, which is always correct.  The
        sweep engine never consults this method.
        """
        return True

    def __repr__(self) -> str:
        return "{}(node={}, done={})".format(
            type(self).__name__, self.node_id, self.done
        )


#: Factory signature the simulator accepts: (node_id, neighbors) -> node.
NodeFactory = Callable[[int, Tuple[int, ...]], NodeAlgorithm]
