"""Node-algorithm interface for the synchronous CONGEST simulator.

A distributed algorithm is expressed as a :class:`NodeAlgorithm`
subclass.  The simulator instantiates one object per graph node (via a
factory), then drives rounds: in each round every node receives the
messages sent to it in the previous round, updates its local state, and
enqueues messages for its neighbors.  Local computation is free, exactly
as in the model of Section III-A of the paper; only rounds and message
bits are accounted.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Sequence, Tuple

from repro.congest.message import Message

#: The inbox handed to ``on_round``: (sender id, message) pairs, in
#: deterministic (sender-sorted, enqueue-ordered) order.
Inbox = List[Tuple[int, Message]]


class RoundContext:
    """Per-round API a node uses to interact with the network.

    The simulator creates one context per node per round; ``send`` and
    ``broadcast`` enqueue messages for delivery at the start of the next
    round.
    """

    __slots__ = ("node_id", "round_number", "_neighbors", "_outbox")

    def __init__(self, node_id: int, round_number: int, neighbors: Sequence[int]):
        self.node_id = node_id
        self.round_number = round_number
        self._neighbors = neighbors
        self._outbox: List[Tuple[int, Message]] = []

    @property
    def neighbors(self) -> Sequence[int]:
        """This node's neighbor ids (local knowledge)."""
        return self._neighbors

    def send(self, target: int, message: Message) -> None:
        """Enqueue ``message`` for neighbor ``target`` (delivered next round)."""
        if target not in self._neighbors:
            raise ValueError(
                "node {} has no edge to {}".format(self.node_id, target)
            )
        self._outbox.append((target, message))

    def broadcast(self, message: Message) -> None:
        """Send ``message`` to every neighbor."""
        for target in self._neighbors:
            self._outbox.append((target, message))

    def drain(self) -> List[Tuple[int, Message]]:
        """Internal: hand the enqueued sends to the simulator."""
        out, self._outbox = self._outbox, []
        return out


class NodeAlgorithm(abc.ABC):
    """Base class for the per-node state machine of a protocol.

    Subclasses receive their id and neighbor list at construction and
    implement :meth:`on_round`.  A node signals completion by setting
    :attr:`done`; the simulation terminates when every node is done and
    no message is in flight.
    """

    def __init__(self, node_id: int, neighbors: Sequence[int]):
        self.node_id = node_id
        self.neighbors = tuple(neighbors)
        self.done = False

    def on_start(self, ctx: RoundContext) -> None:
        """Called once in round 0 before any message exchange.

        The default does nothing; override to send wake-up messages.
        ``on_round`` is also called in round 0, with an empty inbox,
        after ``on_start``.
        """

    @abc.abstractmethod
    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        """Process one synchronous round.

        Parameters
        ----------
        ctx:
            Sending interface and the current round number.
        inbox:
            Messages delivered this round (sent in the previous one).
        """

    def __repr__(self) -> str:
        return "{}(node={}, done={})".format(
            type(self).__name__, self.node_id, self.done
        )


#: Factory signature the simulator accepts: (node_id, neighbors) -> node.
NodeFactory = Callable[[int, Tuple[int, ...]], NodeAlgorithm]
