"""Round-by-round protocol tracing for the CONGEST simulator.

A :class:`Tracer` attached to a :class:`~repro.congest.simulator.Simulator`
records every delivery (round, sender, receiver, message type, bits —
the *exact* encoded frame length under the :mod:`repro.wire` codec,
the same number the bandwidth accounting charges), subject to optional
filters, and offers query and rendering helpers:

* :meth:`Tracer.deliveries` / :meth:`Tracer.of_type` — raw event access;
* :meth:`Tracer.edge_frames` — deliveries re-grouped into the per-edge
  per-round coalesced frames the CONGEST budget is enforced on;
* :meth:`Tracer.rounds_active` — when a message type was on the wire,
  which makes phase boundaries (tree build → counting → aggregation)
  visible and testable;
* :meth:`Tracer.timeline` — an ASCII activity timeline per message
  type, the closest thing to a protocol "figure" a terminal can show.

Tracing every message of a large run costs memory, so the tracer
supports type and node filters and a hard event cap.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Type

from repro.wire import Message, WireFormat, encode_frame

#: Glyphs for the timeline, from idle to busiest octile.
_SPARK = " .:-=+*#@"


@dataclass(frozen=True)
class Delivery:
    """One traced message delivery (recorded at send time).

    ``word`` is the exact encoded frame of the single message under the
    run's wire format — captured only when the tracer was built with
    ``capture_payloads=True``.  Together with ``bits`` it can be fed
    back through :func:`repro.wire.decode_frame` to recover the message
    fields, which is what the trace-diff forensics do.
    """

    round_number: int
    sender: int
    receiver: int
    message_type: str
    bits: int
    word: Optional[int] = None


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (recorded by the fault injector).

    ``kind`` is the injector's taxonomy: ``drop``, ``duplicate``,
    ``delay``, ``corrupt_detected``, ``corrupt_undetected``,
    ``crash_drop``, ``link_down``.
    """

    round_number: int
    kind: str
    sender: int
    receiver: int


class Tracer:
    """Collects :class:`Delivery` events during a simulation run.

    Parameters
    ----------
    message_types:
        Restrict tracing to these :class:`Message` subclasses (default:
        all).
    nodes:
        Restrict to deliveries where sender or receiver is in this set.
    max_events:
        Hard cap; recording stops (and :attr:`truncated` is set) once
        reached.
    capture_payloads:
        Also store each message's exact encoded frame word (the bits
        that travel on the wire), enabling decoded field-level diffs.
        Costs one codec pass per recorded message.
    """

    def __init__(
        self,
        message_types: Optional[Iterable[Type[Message]]] = None,
        nodes: Optional[Iterable[int]] = None,
        max_events: int = 1_000_000,
        capture_payloads: bool = False,
    ):
        self._types = (
            tuple(message_types) if message_types is not None else None
        )
        self._nodes = frozenset(nodes) if nodes is not None else None
        self._max_events = max_events
        self._events: List[Delivery] = []
        self._fault_events: List[FaultEvent] = []
        self.truncated = False
        self.capture_payloads = capture_payloads
        self.wire: Optional[WireFormat] = None

    # ------------------------------------------------------------------
    def bind_wire(self, wire: WireFormat) -> None:
        """Called by the simulator with the run's wire format.

        Payload capture needs the codec parameters; without a bound
        wire the tracer records deliveries but no frame words.
        """
        self.wire = wire

    def record(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        message: Message,
        bits: int,
    ) -> None:
        """Called by the simulator for every enqueued message."""
        if self.truncated:
            return
        if self._types is not None and not isinstance(message, self._types):
            return
        if self._nodes is not None and not (
            sender in self._nodes or receiver in self._nodes
        ):
            return
        if len(self._events) >= self._max_events:
            self.truncated = True
            return
        word = None
        if self.capture_payloads and self.wire is not None:
            word, _ = encode_frame((message,), self.wire)
        self._events.append(
            Delivery(
                round_number,
                sender,
                receiver,
                type(message).__name__,
                bits,
                word,
            )
        )

    def record_fault(
        self, round_number: int, kind: str, sender: int, receiver: int
    ) -> None:
        """Called by the fault injector for every injected fault.

        Fault events share the tracer's event cap with deliveries but
        not its type/node filters (a chaos run wants the full fault
        schedule even when message tracing is filtered).
        """
        if len(self._fault_events) >= self._max_events:
            self.truncated = True
            return
        self._fault_events.append(
            FaultEvent(round_number, kind, sender, receiver)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def deliveries(self) -> Tuple[Delivery, ...]:
        """All recorded events, in send order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def of_type(self, type_name: str) -> List[Delivery]:
        """Events whose message type matches ``type_name``."""
        return [e for e in self._events if e.message_type == type_name]

    def fault_events(self) -> Tuple[FaultEvent, ...]:
        """All recorded fault injections, in occurrence order."""
        return tuple(self._fault_events)

    def fault_summary(self) -> Dict[str, int]:
        """kind -> number of injected faults of that kind."""
        out: Dict[str, int] = {}
        for event in self._fault_events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def message_types(self) -> List[str]:
        """Distinct traced message type names, first-seen order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.message_type, None)
        return list(seen)

    def rounds_active(self, type_name: str) -> Tuple[int, int]:
        """(first, last) round a message type was sent; (-1, -1) if never."""
        rounds = [e.round_number for e in self.of_type(type_name)]
        if not rounds:
            return (-1, -1)
        return (min(rounds), max(rounds))

    def counts_per_round(self, type_name: Optional[str] = None) -> Dict[int, int]:
        """round -> number of (matching) deliveries."""
        out: Dict[int, int] = {}
        for event in self._events:
            if type_name is None or event.message_type == type_name:
                out[event.round_number] = out.get(event.round_number, 0) + 1
        return out

    def edge_frames(self) -> Dict[Tuple[int, int, int], Tuple[int, int]]:
        """Recorded traffic re-grouped into per-edge per-round frames.

        Returns ``(round, sender, receiver) -> (messages, bits)`` — the
        coalesced frame view the CONGEST budget is enforced on: all of
        an edge's messages in one round travel as a single concatenated
        frame whose length is the sum of the per-message sizes.  (With
        filters active the view covers only the recorded subset.)
        """
        out: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        for e in self._events:
            key = (e.round_number, e.sender, e.receiver)
            messages, bits = out.get(key, (0, 0))
            out[key] = (messages + 1, bits + e.bits)
        return out

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def timeline(self, width: int = 72) -> str:
        """An ASCII activity timeline, one row per message type.

        Rounds are bucketed into ``width`` columns; cell glyphs scale
        with the bucket's message count relative to the row's maximum.
        """
        if not self._events:
            return "(no traced traffic)"
        last_round = max(e.round_number for e in self._events)
        buckets = max(1, min(width, last_round + 1))
        span = (last_round + 1) / buckets
        lines = []
        label_width = max(len(t) for t in self.message_types())
        for type_name in self.message_types():
            histogram = [0] * buckets
            for event in self.of_type(type_name):
                histogram[int(event.round_number / span)] += 1
            peak = max(histogram)
            row = "".join(
                _SPARK[
                    0
                    if count == 0
                    else 1 + min(
                        len(_SPARK) - 2,
                        (count * (len(_SPARK) - 1) - 1) // peak,
                    )
                ]
                for count in histogram
            )
            lines.append(
                "{:<{w}} |{}| peak {}/bucket".format(
                    type_name, row, peak, w=label_width
                )
            )
        lines.append(
            "{:<{w}}  rounds 0..{} ({} buckets)".format(
                "", last_round, buckets, w=label_width
            )
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialize the recorded events for external tooling.

        The JSON object carries a schema marker, the truncation flag,
        and one compact ``[round, sender, receiver, type, bits]`` row
        per delivery — small enough to feed a timeline visualizer.
        :meth:`from_json` reads the format back.

        Payload-capturing tracers append the encoded frame word as an
        optional sixth row element and record the wire parameters under
        an optional ``wire`` key; both are absent from plain traces (and
        ignored by older readers), keeping the schema compatible in both
        directions.
        """
        with_words = self.capture_payloads and any(
            e.word is not None for e in self._events
        )
        payload = {
            "schema": "repro-trace-v1",
            "truncated": self.truncated,
            "events": [
                [
                    e.round_number,
                    e.sender,
                    e.receiver,
                    e.message_type,
                    e.bits,
                ]
                + ([e.word] if with_words else [])
                for e in self._events
            ],
        }
        if with_words and self.wire is not None:
            payload["wire"] = {
                "num_nodes": self.wire.num_nodes,
                "round_bits": self.wire.round_bits,
            }
        if self._fault_events:
            # Optional key: traces from fault-free runs (and traces
            # written by older builds) omit it, keeping the schema
            # backward compatible in both directions.
            payload["faults"] = [
                [f.round_number, f.kind, f.sender, f.receiver]
                for f in self._fault_events
            ]
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Tracer":
        """Rebuild a tracer from :meth:`to_json` output.

        The returned tracer holds the deserialized events and the
        original truncation flag; its queries and rendering behave
        exactly as on the recording tracer, so a trace captured on one
        machine can be inspected on another.
        """
        payload = json.loads(text)
        schema = payload.get("schema")
        if schema != "repro-trace-v1":
            raise ValueError(
                "unsupported trace schema {!r} (expected 'repro-trace-v1')".format(
                    schema
                )
            )
        tracer = cls()
        events = []
        for row in payload["events"]:
            r, s, t, kind, bits = row[:5]
            word = int(row[5]) if len(row) > 5 and row[5] is not None else None
            events.append(
                Delivery(int(r), int(s), int(t), str(kind), int(bits), word)
            )
        tracer._events = events
        tracer._fault_events = [
            FaultEvent(int(r), str(kind), int(s), int(t))
            for r, kind, s, t in payload.get("faults", ())
        ]
        tracer.truncated = bool(payload.get("truncated", False))
        wire_info = payload.get("wire")
        if wire_info:
            round_bits = int(wire_info.get("round_bits", 0))
            tracer.wire = WireFormat(
                int(wire_info["num_nodes"]),
                round_horizon=(1 << round_bits) - 1 if round_bits else 0,
            )
            tracer.capture_payloads = True
        return tracer

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-type totals: count, bits, first and last active round."""
        out: Dict[str, Dict[str, int]] = {}
        for type_name in self.message_types():
            events = self.of_type(type_name)
            first, last = self.rounds_active(type_name)
            out[type_name] = {
                "count": len(events),
                "bits": sum(e.bits for e in events),
                "first_round": first,
                "last_round": last,
            }
        return out
