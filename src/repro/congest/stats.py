"""Traffic and round statistics collected by the CONGEST simulator.

Every bit figure here is an *exact encoded frame length* under the
:mod:`repro.wire` codec — the simulator charges each message its real
``bit_size`` (type tag + typed layout fields), so these statistics are
measurements of the wire, not heuristic estimates.  The statistics
serve three reproduction targets:

* **Round complexity** (Theorem 3): ``rounds`` is the number of
  synchronous rounds until global termination.
* **CONGEST compliance** (Lemmas 3–5): ``max_edge_bits_per_round`` is
  the worst per-edge per-direction per-round load ever observed, to be
  compared with ``c * ceil(log2 N)``.
* **Lower-bound experiments** (Section IX): when a node partition is
  registered, ``cut_bits`` counts every bit crossing the cut, realizing
  the communication-complexity argument of Theorems 5 and 6.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple


class CutTracker:
    """Counts traffic crossing a 2-partition of the nodes.

    Parameters
    ----------
    left:
        The node set forming one side of the cut (e.g. "Alice's" half of
        a lower-bound gadget); everything else is the other side.
    """

    def __init__(self, left: FrozenSet[int]):
        self.left = frozenset(left)
        self.bits = 0
        self.messages = 0
        self.bits_per_round: Dict[int, int] = {}

    def observe(self, round_number: int, sender: int, receiver: int, bits: int):
        """Record a delivery if it crosses the cut."""
        if (sender in self.left) != (receiver in self.left):
            self.bits += bits
            self.messages += 1
            self.bits_per_round[round_number] = (
                self.bits_per_round.get(round_number, 0) + bits
            )

    def max_bits_in_round(self) -> int:
        """The busiest round's cut traffic (0 if no traffic crossed)."""
        return max(self.bits_per_round.values(), default=0)


class SimulationStats:
    """Aggregate statistics for one simulator run."""

    def __init__(self):
        self.rounds = 0
        self.message_count = 0
        self.bit_count = 0
        self.max_edge_bits_per_round = 0
        self.max_edge_messages_per_round = 0
        #: per-round totals: list of (messages, bits)
        self.round_series: List[Tuple[int, int]] = []
        self.cut: Optional[CutTracker] = None
        #: the directed edge and round achieving max_edge_bits_per_round
        self.worst_edge: Optional[Tuple[int, int, int]] = None
        #: fault counters (a :class:`repro.faults.injector.FaultStats`)
        #: when the run carried a fault plan; None on clean runs.
        self.faults = None
        #: the engine that actually executed the run ("sweep"/"event"/
        #: "bulk"/"shard") — the resolved name, never "auto".
        #: Deliberately kept out of :meth:`summary` so summaries stay
        #: engine-identical.
        self.engine: Optional[str] = None
        #: shard-runtime breakdown (worker count, partitioner, edge cut,
        #: cross-shard traffic, per-shard ledger words) when the run
        #: executed under ``engine="shard"``; None otherwise.  Like
        #: :attr:`engine`, kept out of :meth:`summary` — the numbers it
        #: splits out (cross-shard bits/messages) are a *view* of the
        #: same exact totals, not extra traffic.
        self.shard = None
        #: supervision breakdown (restarts per shard, hang detections,
        #: rollbacks, checkpoints written/bytes/seconds, resume round)
        #: when the run was supervised or resumed; None otherwise.  Kept
        #: out of :meth:`summary` like :attr:`engine` — recovery must be
        #: invisible in every protocol-output comparison.
        self.supervisor = None

    def start_round(self):
        self.round_series.append((0, 0))

    def observe_edge_load(
        self,
        round_number: int,
        sender: int,
        receiver: int,
        messages: int,
        bits: int,
    ):
        """Record the load placed on one directed edge this round."""
        self.message_count += messages
        self.bit_count += bits
        msg_total, bit_total = self.round_series[-1]
        self.round_series[-1] = (msg_total + messages, bit_total + bits)
        if bits > self.max_edge_bits_per_round:
            self.max_edge_bits_per_round = bits
            self.worst_edge = (round_number, sender, receiver)
        if messages > self.max_edge_messages_per_round:
            self.max_edge_messages_per_round = messages
        if self.cut is not None:
            self.cut.observe(round_number, sender, receiver, bits)

    def observe_round(
        self,
        round_number: int,
        edge_load: Dict[Tuple[int, int], List[int]],
    ):
        """Consume one round's per-edge accounting buffer in batch.

        ``edge_load`` maps each directed edge ``(sender, receiver)`` to
        its ``[messages, bits]`` totals for this round.  The caller (the
        simulator) owns and reuses the buffer; this method only reads
        it.  Equivalent to calling :meth:`observe_edge_load` per edge,
        but with the per-round aggregates folded once.
        """
        round_msgs = 0
        round_bits = 0
        max_bits = self.max_edge_bits_per_round
        max_msgs = self.max_edge_messages_per_round
        cut = self.cut
        for key, (messages, bits) in edge_load.items():
            round_msgs += messages
            round_bits += bits
            if bits > max_bits:
                max_bits = bits
                self.worst_edge = (round_number, key[0], key[1])
            if messages > max_msgs:
                max_msgs = messages
            if cut is not None:
                cut.observe(round_number, key[0], key[1], bits)
        self.message_count += round_msgs
        self.bit_count += round_bits
        self.max_edge_bits_per_round = max_bits
        self.max_edge_messages_per_round = max_msgs
        msg_total, bit_total = self.round_series[-1]
        self.round_series[-1] = (msg_total + round_msgs, bit_total + round_bits)

    def summary(self) -> Dict[str, object]:
        """A plain-dict summary convenient for benchmark tables.

        ``worst_edge`` is the ``(round, sender, receiver)`` achieving
        ``max_edge_bits_per_round`` (None with no traffic) and
        ``round_series_len`` the length of the per-round series — both
        must agree between the two engines, so including them here puts
        them under every summary-equality differential test.
        """
        out = {
            "rounds": self.rounds,
            "messages": self.message_count,
            "bits": self.bit_count,
            "max_edge_bits_per_round": self.max_edge_bits_per_round,
            "max_edge_messages_per_round": self.max_edge_messages_per_round,
            "worst_edge": self.worst_edge,
            "round_series_len": len(self.round_series),
        }
        if self.cut is not None:
            out["cut_bits"] = self.cut.bits
            out["cut_messages"] = self.cut.messages
        if self.faults is not None:
            out["faults"] = self.faults.as_dict()
        return out

    def __repr__(self) -> str:
        return "SimulationStats({})".format(self.summary())
