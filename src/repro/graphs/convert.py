"""Conversion between :class:`repro.graphs.Graph` and ``networkx``.

``networkx`` is an optional test/benchmark dependency: the library core
never imports it, but the test suite uses it as an independent oracle
for distances, shortest-path counts, and betweenness values.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, GraphBuilder


def to_networkx(graph: Graph) -> Any:
    """Return an undirected ``networkx.Graph`` copy of ``graph``."""
    import networkx as nx

    g = nx.Graph(name=graph.name)
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    return g


def from_networkx(nx_graph: Any, name: str = "") -> Graph:
    """Convert an undirected ``networkx`` graph (nodes relabelled densely).

    Node labels are mapped to ``0 .. N-1`` in sorted order when sortable,
    otherwise in insertion order.  Directed or multi graphs are rejected.
    """
    if nx_graph.is_directed():
        raise GraphError("only undirected graphs are supported")
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported")
    try:
        ordered = sorted(nx_graph.nodes())
    except TypeError:
        ordered = list(nx_graph.nodes())
    builder = GraphBuilder(name=name or nx_graph.name or "networkx")
    for node in ordered:
        builder.add_node(node)
    for u, v in nx_graph.edges():
        if u == v:
            continue  # drop self loops: the simple-graph model has none
        builder.add_edge(u, v)
    return builder.build()
