"""Graph generators used by tests, examples, and benchmarks.

All random generators take an explicit integer ``seed`` and are
deterministic for a given seed (``random.Random`` based, no global
state), which keeps every benchmark table reproducible.

The generators cover the graph families relevant to the paper's
complexity claims: low-diameter dense graphs (complete, ER), high-
diameter sparse graphs (paths, cycles, trees), graphs with exponentially
many shortest paths (grids, hypercubes — the "Large Value Challenge"),
and classic social-network data (Zachary's karate club) for the
examples.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.properties import connected_components


# ----------------------------------------------------------------------
# deterministic families
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """The path P_n: diameter n-1, the worst case for round pipelining."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)], name="path-{}".format(n))


def cycle_graph(n: int) -> Graph:
    """The cycle C_n (n >= 3)."""
    if n < 3:
        raise GraphError("cycle needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges, name="cycle-{}".format(n))


def complete_graph(n: int) -> Graph:
    """The complete graph K_n: diameter 1, maximal congestion."""
    edges = list(itertools.combinations(range(n), 2))
    return Graph(n, edges, name="complete-{}".format(n))


def star_graph(n: int) -> Graph:
    """A star with one hub (node 0) and ``n - 1`` leaves."""
    return Graph(n, [(0, i) for i in range(1, n)], name="star-{}".format(n))


def wheel_graph(n: int) -> Graph:
    """A wheel: hub node 0 plus a cycle on nodes ``1 .. n-1`` (n >= 4)."""
    if n < 4:
        raise GraphError("wheel needs at least 4 nodes")
    rim = list(range(1, n))
    edges = [(0, v) for v in rim]
    edges += [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    return Graph(n, edges, name="wheel-{}".format(n))


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """K_{a,b} with the left part ``0..a-1`` and right part ``a..a+b-1``."""
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return Graph(a + b, edges, name="kbipartite-{}x{}".format(a, b))


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols grid.

    Grids have Theta(binomial) many shortest paths between opposite
    corners, so they exercise the paper's floating-point machinery.
    """
    def node(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
    return Graph(rows * cols, edges, name="grid-{}x{}".format(rows, cols))


def hypercube_graph(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube Q_dim on ``2**dim`` nodes.

    sigma between antipodal nodes is ``dim!`` — exponential in the
    diameter, the canonical "Large Value Challenge" instance.
    """
    n = 1 << dim
    edges = [
        (v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < v ^ (1 << b)
    ]
    return Graph(n, edges, name="hypercube-{}".format(dim))


def balanced_tree(branching: int, height: int) -> Graph:
    """A complete ``branching``-ary tree of the given height."""
    if branching < 1:
        raise GraphError("branching factor must be >= 1")
    edges: List[Edge] = []
    count = 1
    frontier = [0]
    for _ in range(height):
        nxt = []
        for parent in frontier:
            for _ in range(branching):
                child = count
                count += 1
                edges.append((parent, child))
                nxt.append(child)
        frontier = nxt
    return Graph(count, edges, name="tree-b{}-h{}".format(branching, height))


def lollipop_graph(clique: int, tail: int) -> Graph:
    """K_clique with a path of ``tail`` nodes attached (classic BC testbed).

    The junction node has very high betweenness, making this a good
    sanity graph for centrality code.
    """
    edges = list(itertools.combinations(range(clique), 2))
    prev = clique - 1
    for i in range(tail):
        edges.append((prev, clique + i))
        prev = clique + i
    return Graph(clique + tail, edges, name="lollipop-{}-{}".format(clique, tail))


def barbell_graph(clique: int, bridge: int) -> Graph:
    """Two K_clique blobs joined by a path of ``bridge`` inner nodes."""
    edges = list(itertools.combinations(range(clique), 2))
    offset = clique + bridge
    edges += [
        (offset + a, offset + b) for a, b in itertools.combinations(range(clique), 2)
    ]
    chain = [clique - 1] + [clique + i for i in range(bridge)] + [offset]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return Graph(
        2 * clique + bridge, edges, name="barbell-{}-{}".format(clique, bridge)
    )


def diamond_chain_graph(k: int) -> Graph:
    """A chain of k diamonds: sigma grows as 2**k on 3k + 1 nodes.

    Node layout: junctions ``j_0 .. j_k`` with two parallel middle nodes
    between consecutive junctions.  The number of shortest paths from
    j_0 to j_k is exactly 2**k while the diameter is only 2k, making
    this the minimal deterministic witness of the paper's "Large Value
    Challenge": exact path counts need Theta(k) = Theta(N) bits on the
    wire, overflowing any O(log N)-bit message.
    """
    if k < 1:
        raise GraphError("need at least one diamond")
    edges: List[Edge] = []
    junction = 0
    next_id = 1
    for _ in range(k):
        top, bottom, nxt = next_id, next_id + 1, next_id + 2
        next_id += 3
        edges += [
            (junction, top),
            (junction, bottom),
            (top, nxt),
            (bottom, nxt),
        ]
        junction = nxt
    return Graph(3 * k + 1, edges, name="diamonds-{}".format(k))


def ladder_graph(n: int) -> Graph:
    """The ladder: two paths of length n joined rung by rung."""
    edges: List[Edge] = []
    for i in range(n - 1):
        edges.append((i, i + 1))
        edges.append((n + i, n + i + 1))
    edges += [(i, n + i) for i in range(n)]
    return Graph(2 * n, edges, name="ladder-{}".format(n))


def circulant_graph(n: int, offsets: Sequence[int]) -> Graph:
    """The circulant C_n(offsets): i ~ i ± k (mod n) for each offset k.

    Vertex-transitive, so every centrality is uniform — a useful
    symmetry oracle for centrality tests.
    """
    if n < 3:
        raise GraphError("circulant needs at least 3 nodes")
    edge_set = set()
    for k in offsets:
        k = k % n
        if k == 0:
            raise GraphError("offset 0 would create self loops")
        for v in range(n):
            if v != (v + k) % n:
                edge_set.add(canonical_edge(v, (v + k) % n))
    return Graph(n, sorted(edge_set), name="circulant-{}-{}".format(
        n, "_".join(str(k) for k in offsets)))


def caveman_graph(cliques: int, size: int) -> Graph:
    """A connected caveman graph: ``cliques`` K_size's joined in a ring.

    One edge of each clique is rewired to the next clique, producing a
    clustered small-world — the classic model of tightly-knit social
    groups with a few brokers, which is exactly the structure
    betweenness centrality highlights.
    """
    if cliques < 2 or size < 2:
        raise GraphError("need at least 2 cliques of size >= 2")
    edges: List[Edge] = []
    for c in range(cliques):
        base = c * size
        members = range(base, base + size)
        edges.extend(
            (u, v) for u, v in itertools.combinations(members, 2)
        )
    # connect clique c's node 1 to clique (c+1)'s node 0
    edge_set = set(edges)
    for c in range(cliques):
        nxt = (c + 1) % cliques
        a = c * size + min(1, size - 1)
        b = nxt * size
        edge_set.add(canonical_edge(a, b))
    return Graph(
        cliques * size, sorted(edge_set),
        name="caveman-{}x{}".format(cliques, size),
    )


# ----------------------------------------------------------------------
# random families
# ----------------------------------------------------------------------
def erdos_renyi_graph(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p): each pair is an edge independently with probability p."""
    rng = random.Random(seed)
    edges = [
        (u, v) for u, v in itertools.combinations(range(n), 2) if rng.random() < p
    ]
    return Graph(n, edges, name="er-{}-p{:.3g}".format(n, p))


def gnm_random_graph(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m): exactly ``m`` edges sampled uniformly without replacement."""
    all_pairs = list(itertools.combinations(range(n), 2))
    if m > len(all_pairs):
        raise GraphError("m too large for simple graph")
    rng = random.Random(seed)
    return Graph(n, rng.sample(all_pairs, m), name="gnm-{}-{}".format(n, m))


def random_tree(n: int, seed: int = 0) -> Graph:
    """A uniformly random labelled tree via a Prüfer sequence."""
    if n <= 1:
        return Graph(n, [], name="rtree-{}".format(n))
    if n == 2:
        return Graph(2, [(0, 1)], name="rtree-2")
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    edges: List[Edge] = []
    for v in prufer:
        for leaf in range(n):
            if degree[leaf] == 1:
                edges.append(canonical_edge(leaf, v))
                degree[leaf] -= 1
                degree[v] -= 1
                break
    last = [v for v in range(n) if degree[v] == 1]
    edges.append(canonical_edge(last[0], last[1]))
    return Graph(n, edges, name="rtree-{}".format(n))


def barabasi_albert_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Preferential attachment: each new node attaches to ``m`` nodes.

    Starts from a star on ``m + 1`` nodes; attachment targets are drawn
    proportionally to degree via the repeated-nodes trick.
    """
    if m < 1 or m >= n:
        raise GraphError("need 1 <= m < n")
    rng = random.Random(seed)
    edges: List[Edge] = [(0, i) for i in range(1, m + 1)]
    repeated: List[int] = [0] * m + list(range(1, m + 1))
    for new in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            edges.append(canonical_edge(new, t))
            repeated.append(t)
            repeated.append(new)
    return Graph(n, edges, name="ba-{}-m{}".format(n, m))


def watts_strogatz_graph(n: int, k: int, beta: float, seed: int = 0) -> Graph:
    """Small-world ring lattice with rewiring probability ``beta``.

    ``k`` must be even; each node starts connected to its ``k`` nearest
    ring neighbors, then each clockwise edge is rewired with probability
    ``beta`` to a uniformly random non-duplicate target.
    """
    if k % 2 or k >= n:
        raise GraphError("k must be even and < n")
    rng = random.Random(seed)
    edge_set = set()
    for v in range(n):
        for j in range(1, k // 2 + 1):
            edge_set.add(canonical_edge(v, (v + j) % n))
    edges = sorted(edge_set)
    result = set(edges)
    for (u, v) in edges:
        if rng.random() < beta:
            candidates = [
                w
                for w in range(n)
                if w != u and canonical_edge(u, w) not in result
            ]
            if candidates:
                result.discard((u, v))
                result.add(canonical_edge(u, rng.choice(candidates)))
    return Graph(n, sorted(result), name="ws-{}-k{}-b{:.3g}".format(n, k, beta))


def random_geometric_graph(n: int, radius: float, seed: int = 0) -> Graph:
    """Nodes at uniform points of the unit square, edges within ``radius``.

    A standard model for wireless/sensor networks, the motivating domain
    for distributed centrality computation.
    """
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    r2 = radius * radius
    edges = [
        (u, v)
        for u, v in itertools.combinations(range(n), 2)
        if (points[u][0] - points[v][0]) ** 2 + (points[u][1] - points[v][1]) ** 2
        <= r2
    ]
    return Graph(n, edges, name="rgg-{}-r{:.3g}".format(n, radius))


def connected_erdos_renyi_graph(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) patched into a connected graph.

    Components beyond the first are joined by one extra edge each (from
    a random node of the component to a random node of the running giant
    component), so the result is connected but otherwise ER-like.
    """
    g = erdos_renyi_graph(n, p, seed)
    return ensure_connected(g, seed=seed ^ 0x9E3779B9)


def ensure_connected(graph: Graph, seed: int = 0) -> Graph:
    """Return ``graph`` with minimal extra edges making it connected."""
    comps = connected_components(graph)
    if len(comps) <= 1:
        return graph
    rng = random.Random(seed)
    extra: List[Edge] = []
    base = comps[0]
    for comp in comps[1:]:
        extra.append(canonical_edge(rng.choice(base), rng.choice(comp)))
        base = base + comp
    return Graph(
        graph.num_nodes,
        list(graph.edges()) + extra,
        name=graph.name + "-connected",
    )


# ----------------------------------------------------------------------
# named datasets
# ----------------------------------------------------------------------
_KARATE_EDGES: Tuple[Tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
    (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
    (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
    (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
    (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
    (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
)


def karate_club_graph() -> Graph:
    """Zachary's karate club (34 nodes, 78 edges).

    The classic social network; node 0 is the instructor ("Mr. Hi") and
    node 33 the club administrator ("John A.").  Used by the social
    network example to rank brokers by betweenness.
    """
    return Graph(34, _KARATE_EDGES, name="karate-club")


_FLORENTINE_FAMILIES = (
    "Acciaiuoli", "Albizzi", "Barbadori", "Bischeri", "Castellani",
    "Ginori", "Guadagni", "Lamberteschi", "Medici", "Pazzi", "Peruzzi",
    "Ridolfi", "Salviati", "Strozzi", "Tornabuoni",
)

_FLORENTINE_EDGES = (
    ("Acciaiuoli", "Medici"),
    ("Albizzi", "Ginori"),
    ("Albizzi", "Guadagni"),
    ("Albizzi", "Medici"),
    ("Barbadori", "Castellani"),
    ("Barbadori", "Medici"),
    ("Bischeri", "Guadagni"),
    ("Bischeri", "Peruzzi"),
    ("Bischeri", "Strozzi"),
    ("Castellani", "Peruzzi"),
    ("Castellani", "Strozzi"),
    ("Guadagni", "Lamberteschi"),
    ("Guadagni", "Tornabuoni"),
    ("Medici", "Ridolfi"),
    ("Medici", "Salviati"),
    ("Medici", "Tornabuoni"),
    ("Pazzi", "Salviati"),
    ("Peruzzi", "Strozzi"),
    ("Ridolfi", "Strozzi"),
    ("Ridolfi", "Tornabuoni"),
)


def florentine_families_graph() -> Tuple[Graph, List[str]]:
    """Padgett's Florentine families marriage network (15 nodes).

    The canonical small social network where betweenness explains
    power: the Medici sit on far more shortest paths than any richer
    family.  Returns ``(graph, labels)`` with labels[i] the family name
    of node i (alphabetical order).

    Note: like networkx's version this includes the isolated-by-
    marriage Pucci family's *exclusion* — only the 15 connected
    families appear.
    """
    index = {name: i for i, name in enumerate(_FLORENTINE_FAMILIES)}
    edges = [(index[a], index[b]) for a, b in _FLORENTINE_EDGES]
    return (
        Graph(len(_FLORENTINE_FAMILIES), edges, name="florentine"),
        list(_FLORENTINE_FAMILIES),
    )


def figure1_graph() -> Graph:
    """The 5-node example graph of Figure 1 in the paper.

    Nodes 0..4 correspond to v1..v5.  Edges: v1–v2, v2–v3, v2–v5, v3–v4,
    v5–v4.  The paper works through every sending time on this graph and
    derives CB(v2) = 7/2.
    """
    return Graph(5, [(0, 1), (1, 2), (1, 4), (2, 3), (4, 3)], name="figure1")
