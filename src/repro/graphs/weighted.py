"""Weighted graphs and the virtual-node subdivision transform.

The paper's algorithm is defined for unweighted graphs; its conclusion
points at Nanongkai's virtual-node idea [16] for the weighted case:
replace each edge of integer weight w by a path of w unit edges (w - 1
fresh *virtual* nodes).  Shortest-path structure between *real* nodes is
preserved exactly — distances, path counts, and which real nodes lie on
which shortest paths — so running the unweighted machinery on the
subdivision with virtual nodes masked out of the source/target sets
computes weighted betweenness exactly.

This module provides the :class:`WeightedGraph` type (positive integer
weights), weighted BFS/Dijkstra properties, and :func:`subdivide`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import (
    EmptyGraphError,
    GraphNotConnectedError,
    InvalidEdgeError,
    UnknownNodeError,
)
from repro.graphs.graph import Graph, canonical_edge

WeightedEdge = Tuple[int, int, int]


class WeightedGraph:
    """An immutable undirected simple graph with positive integer weights.

    Integer weights are the natural domain for the subdivision
    transform (a weight-w edge becomes w unit hops); rational weights
    can be pre-scaled by their common denominator.
    """

    __slots__ = ("_num_nodes", "_adjacency", "_edges", "_name")

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[WeightedEdge] = (),
        name: Optional[str] = None,
    ):
        if num_nodes < 0:
            raise EmptyGraphError("number of nodes must be non-negative")
        self._num_nodes = int(num_nodes)
        adjacency: List[List[Tuple[int, int]]] = [
            [] for _ in range(self._num_nodes)
        ]
        seen = set()
        edge_list: List[WeightedEdge] = []
        for u, v, w in edges:
            u, v, w = int(u), int(v), int(w)
            if u == v:
                raise InvalidEdgeError("self loop at node {}".format(u))
            if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
                raise InvalidEdgeError(
                    "edge ({}, {}) references an unknown node".format(u, v)
                )
            if w < 1:
                raise InvalidEdgeError(
                    "edge ({}, {}) has non-positive weight {}".format(u, v, w)
                )
            key = canonical_edge(u, v)
            if key in seen:
                raise InvalidEdgeError("duplicate edge ({}, {})".format(u, v))
            seen.add(key)
            edge_list.append((key[0], key[1], w))
            adjacency[u].append((v, w))
            adjacency[v].append((u, w))
        for nbrs in adjacency:
            nbrs.sort()
        self._adjacency = tuple(tuple(nbrs) for nbrs in adjacency)
        self._edges = tuple(sorted(edge_list))
        self._name = name or "weighted-graph"

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes N."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of weighted edges M."""
        return len(self._edges)

    @property
    def name(self) -> str:
        """Human-readable label."""
        return self._name

    def nodes(self) -> range:
        """All node identifiers."""
        return range(self._num_nodes)

    def edges(self) -> Tuple[WeightedEdge, ...]:
        """All edges as ``(u, v, weight)`` with u < v, sorted."""
        return self._edges

    def neighbors(self, v: int) -> Tuple[Tuple[int, int], ...]:
        """``(neighbor, weight)`` pairs of node ``v``, sorted."""
        if not 0 <= v < self._num_nodes:
            raise UnknownNodeError(v)
        return self._adjacency[v]

    def total_weight(self) -> int:
        """Sum of all edge weights (the subdivision's edge count)."""
        return sum(w for _, _, w in self._edges)

    def __repr__(self) -> str:
        return "WeightedGraph(name={!r}, N={}, M={})".format(
            self._name, self._num_nodes, self.num_edges
        )


def dijkstra(graph: WeightedGraph, source: int) -> Tuple[List[int], List[int]]:
    """Weighted SSSP with path counting from ``source``.

    Returns ``(dist, sigma)`` where unreachable nodes have ``dist = -1``
    and ``sigma = 0``.  Path counts are exact integers.
    """
    inf = float("inf")
    dist: List[float] = [inf] * graph.num_nodes
    sigma = [0] * graph.num_nodes
    dist[source] = 0
    sigma[source] = 1
    done = [False] * graph.num_nodes
    heap: List[Tuple[float, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        for u, w in graph.neighbors(v):
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                sigma[u] = sigma[v]
                heapq.heappush(heap, (nd, u))
            elif nd == dist[u] and not done[u]:
                sigma[u] += sigma[v]
    out_dist = [int(d) if d != inf else -1 for d in dist]
    return out_dist, sigma


def weighted_diameter(graph: WeightedGraph) -> int:
    """max_{u,v} d(u, v) of a connected weighted graph."""
    best = 0
    for v in graph.nodes():
        dist, _ = dijkstra(graph, v)
        if any(d < 0 for d in dist):
            raise GraphNotConnectedError("weighted diameter: not connected")
        best = max(best, max(dist))
    return best


def is_weighted_connected(graph: WeightedGraph) -> bool:
    """Whether the weighted graph is connected."""
    if graph.num_nodes == 0:
        return True
    dist, _ = dijkstra(graph, 0)
    return all(d >= 0 for d in dist)


class Subdivision:
    """The unweighted subdivision of a weighted graph.

    Attributes
    ----------
    graph:
        The unit-edge graph; real node ids are preserved (0..N-1) and
        virtual nodes occupy N..N'-1.
    real_nodes:
        Frozen set of the original node ids.
    edge_chains:
        ``(u, v) -> list of virtual ids`` along the subdivided edge,
        ordered from u's side to v's (empty for weight-1 edges).
    """

    def __init__(self, graph: Graph, real_nodes, edge_chains):
        self.graph = graph
        self.real_nodes = frozenset(real_nodes)
        self.edge_chains: Dict[Tuple[int, int], List[int]] = edge_chains

    @property
    def num_virtual(self) -> int:
        """How many virtual nodes the transform added."""
        return self.graph.num_nodes - len(self.real_nodes)

    def is_real(self, node: int) -> bool:
        """Whether ``node`` exists in the original weighted graph."""
        return node in self.real_nodes


def subdivide(weighted: WeightedGraph) -> Subdivision:
    """Replace each weight-w edge by a path of w unit edges.

    Distances, shortest-path counts, and shortest-path membership
    between real nodes are preserved exactly (each weighted edge
    traversal corresponds to the unique unit-path traversal of its
    chain).
    """
    next_id = weighted.num_nodes
    edges: List[Tuple[int, int]] = []
    chains: Dict[Tuple[int, int], List[int]] = {}
    for u, v, w in weighted.edges():
        chain: List[int] = []
        prev = u
        for _ in range(w - 1):
            chain.append(next_id)
            edges.append((prev, next_id))
            prev = next_id
            next_id += 1
        edges.append((prev, v))
        chains[(u, v)] = chain
    graph = Graph(next_id, edges, name=weighted.name + "-subdivided")
    return Subdivision(graph, range(weighted.num_nodes), chains)
