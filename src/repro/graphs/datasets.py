"""Embedded classic network datasets.

Data provenance:

* ``les_miserables_graph`` — D. E. Knuth, *The Stanford GraphBase*
  (1993): co-appearance network of characters in Victor Hugo's
  novel; 77 characters, 254 pairs, weights = number of chapters
  in which the pair co-appears.  The unweighted projection is the
  classic betweenness demo (Valjean towers over everyone); the
  weighted variant exercises the subdivision pipeline on real data.

The larger embedded datasets live here to keep
``repro.graphs.generators`` readable; Zachary's karate club and the
Florentine families remain there for historical reasons.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graphs.graph import Graph
from repro.graphs.weighted import WeightedGraph

#: Character names, alphabetical; index = node id.
LES_MISERABLES_CHARACTERS: Tuple[str, ...] = (
    "Anzelma", "Babet", "Bahorel", "Bamatabois",
    "BaronessT", "Blacheville", "Bossuet", "Boulatruelle",
    "Brevet", "Brujon", "Champmathieu", "Champtercier",
    "Chenildieu", "Child1", "Child2", "Claquesous",
    "Cochepaille", "Combeferre", "Cosette", "Count",
    "CountessDeLo", "Courfeyrac", "Cravatte", "Dahlia",
    "Enjolras", "Eponine", "Fameuil", "Fantine",
    "Fauchelevent", "Favourite", "Feuilly", "Gavroche",
    "Geborand", "Gervais", "Gillenormand", "Grantaire",
    "Gribier", "Gueulemer", "Isabeau", "Javert",
    "Joly", "Jondrette", "Judge", "Labarre",
    "Listolier", "LtGillenormand", "Mabeuf", "Magnon",
    "Marguerite", "Marius", "MlleBaptistine", "MlleGillenormand",
    "MlleVaubois", "MmeBurgon", "MmeDeR", "MmeHucheloup",
    "MmeMagloire", "MmePontmercy", "MmeThenardier", "Montparnasse",
    "MotherInnocent", "MotherPlutarch", "Myriel", "Napoleon",
    "OldMan", "Perpetue", "Pontmercy", "Prouvaire",
    "Scaufflaire", "Simplice", "Thenardier", "Tholomyes",
    "Toussaint", "Valjean", "Woman1", "Woman2",
    "Zephine",
)

#: (u, v, chapters co-appearing) with u < v, sorted.
LES_MISERABLES_EDGES: Tuple[Tuple[int, int, int], ...] = (
    (0, 25, 2), (0, 58, 1), (0, 70, 2), (1, 9, 3), (1, 15, 4), (1, 25, 1),
    (1, 31, 1), (1, 37, 6), (1, 39, 2), (1, 58, 1), (1, 59, 2), (1, 70, 6),
    (1, 73, 1), (2, 6, 4), (2, 17, 5), (2, 21, 6), (2, 24, 4), (2, 30, 3),
    (2, 31, 5), (2, 35, 1), (2, 40, 5), (2, 46, 2), (2, 49, 1), (2, 55, 1),
    (2, 67, 2), (3, 8, 1), (3, 10, 2), (3, 12, 1), (3, 16, 1), (3, 27, 1),
    (3, 39, 1), (3, 42, 2), (3, 73, 2), (4, 34, 1), (4, 49, 1), (5, 23, 3),
    (5, 26, 4), (5, 27, 3), (5, 29, 4), (5, 44, 4), (5, 71, 4), (5, 76, 3),
    (6, 17, 9), (6, 21, 12), (6, 24, 10), (6, 30, 6), (6, 31, 5), (6, 35, 3),
    (6, 40, 7), (6, 46, 1), (6, 49, 5), (6, 55, 1), (6, 67, 2), (6, 73, 1),
    (7, 70, 1), (8, 10, 2), (8, 12, 2), (8, 16, 2), (8, 42, 2), (8, 73, 2),
    (9, 15, 1), (9, 25, 1), (9, 31, 1), (9, 37, 3), (9, 59, 1), (9, 70, 3),
    (10, 12, 2), (10, 16, 2), (10, 42, 3), (10, 73, 3), (11, 62, 1), (12, 16, 2),
    (12, 42, 2), (12, 73, 2), (13, 14, 3), (13, 31, 2), (14, 31, 2), (15, 24, 1),
    (15, 25, 1), (15, 37, 4), (15, 39, 1), (15, 58, 1), (15, 59, 2), (15, 70, 4),
    (15, 73, 1), (16, 42, 2), (16, 73, 2), (17, 21, 13), (17, 24, 15), (17, 30, 5),
    (17, 31, 6), (17, 35, 1), (17, 40, 5), (17, 46, 2), (17, 49, 5), (17, 67, 2),
    (18, 34, 3), (18, 39, 1), (18, 45, 1), (18, 49, 21), (18, 51, 2), (18, 58, 4),
    (18, 70, 1), (18, 71, 1), (18, 72, 2), (18, 73, 31), (18, 75, 1), (19, 62, 2),
    (20, 62, 1), (21, 24, 17), (21, 25, 1), (21, 30, 6), (21, 31, 7), (21, 35, 2),
    (21, 40, 5), (21, 46, 2), (21, 49, 9), (21, 55, 1), (21, 67, 3), (22, 62, 1),
    (23, 26, 3), (23, 27, 4), (23, 29, 5), (23, 44, 3), (23, 71, 3), (23, 76, 4),
    (24, 30, 6), (24, 31, 7), (24, 35, 3), (24, 39, 6), (24, 40, 5), (24, 46, 1),
    (24, 49, 7), (24, 55, 1), (24, 67, 4), (24, 73, 4), (25, 37, 1), (25, 46, 1),
    (25, 49, 5), (25, 58, 2), (25, 59, 1), (25, 70, 3), (26, 27, 3), (26, 29, 3),
    (26, 44, 4), (26, 71, 4), (26, 76, 3), (27, 29, 4), (27, 39, 5), (27, 44, 3),
    (27, 48, 2), (27, 58, 2), (27, 65, 1), (27, 69, 2), (27, 70, 1), (27, 71, 3),
    (27, 73, 9), (27, 76, 4), (28, 36, 2), (28, 39, 1), (28, 60, 3), (28, 73, 8),
    (29, 44, 3), (29, 71, 3), (29, 76, 4), (30, 31, 2), (30, 35, 1), (30, 40, 5),
    (30, 46, 1), (30, 49, 1), (30, 67, 2), (31, 35, 1), (31, 37, 1), (31, 39, 1),
    (31, 40, 3), (31, 46, 1), (31, 49, 4), (31, 53, 2), (31, 55, 1), (31, 59, 1),
    (31, 67, 1), (31, 70, 1), (31, 73, 1), (32, 62, 1), (33, 73, 1), (34, 45, 1),
    (34, 47, 1), (34, 49, 12), (34, 51, 9), (34, 73, 2), (35, 40, 2), (35, 55, 1),
    (35, 67, 1), (37, 39, 1), (37, 58, 1), (37, 59, 2), (37, 70, 5), (37, 73, 1),
    (38, 73, 1), (39, 58, 1), (39, 59, 1), (39, 69, 1), (39, 70, 5), (39, 72, 1),
    (39, 73, 17), (39, 74, 1), (39, 75, 1), (40, 46, 1), (40, 49, 2), (40, 55, 1),
    (40, 67, 2), (41, 53, 1), (42, 73, 3), (43, 73, 1), (44, 71, 4), (44, 76, 3),
    (45, 49, 1), (45, 51, 2), (46, 49, 1), (46, 61, 3), (47, 58, 1), (48, 73, 1),
    (49, 51, 6), (49, 66, 1), (49, 70, 2), (49, 71, 1), (49, 73, 19), (50, 56, 6),
    (50, 62, 8), (50, 73, 3), (51, 52, 1), (51, 57, 1), (51, 73, 2), (54, 73, 1),
    (56, 62, 10), (56, 73, 3), (57, 66, 1), (58, 70, 13), (58, 73, 7), (59, 70, 1),
    (59, 73, 1), (60, 73, 1), (62, 63, 1), (62, 64, 1), (62, 73, 5), (65, 69, 2),
    (66, 70, 1), (68, 73, 1), (69, 73, 3), (70, 73, 12), (71, 76, 3), (72, 73, 1),
    (73, 74, 2), (73, 75, 3),
)


def les_miserables_graph() -> Tuple[Graph, List[str]]:
    """The unweighted co-appearance network: ``(graph, labels)``."""
    edges = [(u, v) for u, v, _w in LES_MISERABLES_EDGES]
    graph = Graph(
        len(LES_MISERABLES_CHARACTERS), edges, name="les-miserables"
    )
    return graph, list(LES_MISERABLES_CHARACTERS)


def les_miserables_weighted_graph() -> Tuple[WeightedGraph, List[str]]:
    """The weighted variant: weight = chapters co-appearing."""
    graph = WeightedGraph(
        len(LES_MISERABLES_CHARACTERS),
        LES_MISERABLES_EDGES,
        name="les-miserables-weighted",
    )
    return graph, list(LES_MISERABLES_CHARACTERS)
