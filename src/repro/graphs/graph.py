"""Core undirected simple graph type used throughout the library.

The distributed algorithm of the paper operates on undirected, unweighted,
connected graphs whose nodes carry O(log N)-bit identifiers.  We model
nodes as the integers ``0 .. N-1`` (dense identifiers make the simulator's
bit accounting exact: an ID costs ``ceil(log2 N)`` bits) and keep the
structure immutable after construction so that a graph can be shared
freely between the simulator, the baselines, and the analysis code.

Graphs are built either directly from an edge iterable via
:class:`Graph`, or incrementally via :class:`GraphBuilder`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import (
    EmptyGraphError,
    InvalidEdgeError,
    UnknownNodeError,
)

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the edge ``{u, v}`` as an ordered pair ``(min, max)``."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """An immutable undirected simple graph on nodes ``0 .. N-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node identifiers are ``0 .. num_nodes - 1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops and duplicate edges
        (in either orientation) are rejected with
        :class:`~repro.exceptions.InvalidEdgeError`.

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2)])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_num_nodes", "_adjacency", "_edges", "_name")

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Edge] = (),
        name: Optional[str] = None,
    ):
        if num_nodes < 0:
            raise EmptyGraphError("number of nodes must be non-negative")
        self._num_nodes = int(num_nodes)
        adjacency: List[List[int]] = [[] for _ in range(self._num_nodes)]
        seen = set()
        edge_list: List[Edge] = []
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise InvalidEdgeError("self loop at node {}".format(u))
            if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
                raise InvalidEdgeError(
                    "edge ({}, {}) references a node outside 0..{}".format(
                        u, v, self._num_nodes - 1
                    )
                )
            key = canonical_edge(u, v)
            if key in seen:
                raise InvalidEdgeError("duplicate edge ({}, {})".format(u, v))
            seen.add(key)
            edge_list.append(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
        for nbrs in adjacency:
            nbrs.sort()
        self._adjacency: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(nbrs) for nbrs in adjacency
        )
        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_list))
        self._name = name or "graph"

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes N."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges M."""
        return len(self._edges)

    @property
    def name(self) -> str:
        """Human-readable label used in reports and benchmarks."""
        return self._name

    def nodes(self) -> range:
        """All node identifiers, as a ``range``."""
        return range(self._num_nodes)

    def edges(self) -> Tuple[Edge, ...]:
        """All edges as canonical ``(min, max)`` pairs, sorted."""
        return self._edges

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """The sorted neighbor tuple of node ``v``."""
        self._check_node(v)
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        self._check_node(v)
        return len(self._adjacency[v])

    def max_degree(self) -> int:
        """The maximum degree, or 0 for an empty graph."""
        if self._num_nodes == 0:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency)

    def has_node(self, v: int) -> bool:
        """Whether ``v`` is a valid node identifier."""
        return 0 <= v < self._num_nodes

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        if not (self.has_node(u) and self.has_node(v)):
            return False
        # adjacency tuples are sorted, but linear scan is fine for the
        # degrees seen in simulations; avoids importing bisect everywhere.
        return v in self._adjacency[u]

    def _check_node(self, v: int) -> None:
        if not (0 <= v < self._num_nodes):
            raise UnknownNodeError(v)

    # ------------------------------------------------------------------
    # derived constructions
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "Graph":
        """Return the same graph re-labelled as ``name`` (cheap copy)."""
        g = Graph.__new__(Graph)
        g._num_nodes = self._num_nodes
        g._adjacency = self._adjacency
        g._edges = self._edges
        g._name = name
        return g

    def relabel(self, permutation: Sequence[int]) -> "Graph":
        """Return the graph with node i renamed to ``permutation[i]``.

        ``permutation`` must be a permutation of ``0 .. N-1``.  Useful
        for symmetry/metamorphic testing: every centrality commutes
        with relabeling.
        """
        if sorted(permutation) != list(range(self._num_nodes)):
            raise InvalidEdgeError(
                "relabel needs a permutation of 0..{}".format(
                    self._num_nodes - 1
                )
            )
        return Graph(
            self._num_nodes,
            [(permutation[u], permutation[v]) for u, v in self._edges],
            name=self._name + "-relabelled",
        )

    def subgraph(self, keep: Sequence[int]) -> "Graph":
        """Induced subgraph on ``keep``, with nodes relabelled ``0..k-1``.

        The relabelling preserves the relative order of ``keep``.
        """
        keep = list(dict.fromkeys(keep))  # dedupe, preserve order
        for v in keep:
            self._check_node(v)
        index = {v: i for i, v in enumerate(keep)}
        sub_edges = [
            (index[u], index[v])
            for (u, v) in self._edges
            if u in index and v in index
        ]
        return Graph(len(keep), sub_edges, name=self._name + "-sub")

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_nodes

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._num_nodes))

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and self.has_node(v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes and self._edges == other._edges
        )

    def __hash__(self) -> int:
        return hash((self._num_nodes, self._edges))

    def __repr__(self) -> str:
        return "Graph(name={!r}, N={}, M={})".format(
            self._name, self._num_nodes, self.num_edges
        )


class GraphBuilder:
    """Incremental builder producing an immutable :class:`Graph`.

    Unlike :class:`Graph`'s constructor, the builder tolerates duplicate
    ``add_edge`` calls (they are idempotent) and supports arbitrary
    hashable node labels, which are mapped to dense integer identifiers
    on :meth:`build`.  This is the convenient entry point for loading
    real edge lists.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> b.add_edge("a", "b").add_edge("b", "c").add_edge("a", "b")
    GraphBuilder(nodes=3, edges=2)
    >>> g, labels = b.build_with_labels()
    >>> g.num_edges
    2
    """

    def __init__(self, name: Optional[str] = None):
        self._index: Dict[object, int] = {}
        self._labels: List[object] = []
        self._edges: set = set()
        self._name = name

    def add_node(self, label: object) -> int:
        """Register ``label`` (idempotent) and return its dense id."""
        if label not in self._index:
            self._index[label] = len(self._labels)
            self._labels.append(label)
        return self._index[label]

    def add_edge(self, a: object, b: object) -> "GraphBuilder":
        """Add the undirected edge ``{a, b}``; duplicates are ignored."""
        ia, ib = self.add_node(a), self.add_node(b)
        if ia == ib:
            raise InvalidEdgeError("self loop at node {!r}".format(a))
        self._edges.add(canonical_edge(ia, ib))
        return self

    def add_edges(self, edges: Iterable[Tuple[object, object]]) -> "GraphBuilder":
        """Add every edge in ``edges``."""
        for a, b in edges:
            self.add_edge(a, b)
        return self

    @property
    def num_nodes(self) -> int:
        """Nodes registered so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Distinct edges registered so far."""
        return len(self._edges)

    def build(self) -> Graph:
        """Return the immutable graph (labels discarded)."""
        return Graph(len(self._labels), sorted(self._edges), name=self._name)

    def build_with_labels(self) -> Tuple[Graph, List[object]]:
        """Return ``(graph, labels)`` where ``labels[i]`` is node i's label."""
        return self.build(), list(self._labels)

    def __repr__(self) -> str:
        return "GraphBuilder(nodes={}, edges={})".format(
            self.num_nodes, self.num_edges
        )
