"""Sequential graph property computations (BFS, diameter, connectivity).

These are the *centralized* reference routines used to validate the
distributed algorithm's outputs and to parameterize experiments.  They
are deliberately simple: plain BFS over adjacency tuples, O(N + M) per
source.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.exceptions import EmptyGraphError, GraphNotConnectedError
from repro.graphs.graph import Graph

UNREACHED = -1


def bfs_distances(graph: Graph, source: int) -> List[int]:
    """Distances from ``source`` to every node; ``-1`` when unreachable."""
    dist = [UNREACHED] * graph.num_nodes
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if dist[w] == UNREACHED:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist


def bfs_layers(graph: Graph, source: int) -> List[List[int]]:
    """Nodes grouped by distance from ``source`` (unreachable omitted)."""
    dist = bfs_distances(graph, source)
    ecc = max(dist)
    layers: List[List[int]] = [[] for _ in range(ecc + 1)]
    for v, d in enumerate(dist):
        if d != UNREACHED:
            layers[d].append(v)
    return layers


def bfs_parents(graph: Graph, source: int) -> List[Optional[int]]:
    """A BFS spanning-tree parent array (parent of source is ``None``).

    Ties are broken toward the smallest-id parent, matching the
    deterministic tie-breaking the simulator uses, so tests can compare
    tree shapes directly.
    """
    dist = bfs_distances(graph, source)
    parents: List[Optional[int]] = [None] * graph.num_nodes
    for v in graph.nodes():
        if v == source or dist[v] == UNREACHED:
            continue
        for w in graph.neighbors(v):
            if dist[w] == dist[v] - 1:
                parents[v] = w
                break  # neighbors are sorted, so this is the smallest id
    return parents


def shortest_path_counts(graph: Graph, source: int) -> List[int]:
    """The number of shortest paths sigma_sv from ``source`` to each node.

    Unreachable nodes get count 0.  Counts are exact Python integers and
    may be exponential in the diameter — this is precisely the paper's
    "Large Value Challenge".
    """
    dist = bfs_distances(graph, source)
    sigma = [0] * graph.num_nodes
    sigma[source] = 1
    order = sorted(
        (v for v in graph.nodes() if dist[v] != UNREACHED),
        key=lambda v: dist[v],
    )
    for v in order:
        if v == source:
            continue
        sigma[v] = sum(
            sigma[w] for w in graph.neighbors(v) if dist[w] == dist[v] - 1
        )
    return sigma


def predecessor_sets(graph: Graph, source: int) -> List[Tuple[int, ...]]:
    """P_s(v): predecessors of each node on shortest paths from ``source``."""
    dist = bfs_distances(graph, source)
    preds: List[Tuple[int, ...]] = [()] * graph.num_nodes
    for v in graph.nodes():
        if v == source or dist[v] == UNREACHED:
            continue
        preds[v] = tuple(
            w for w in graph.neighbors(v) if dist[w] == dist[v] - 1
        )
    return preds


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_nodes == 0:
        return True
    return UNREACHED not in bfs_distances(graph, 0)


def require_connected(graph: Graph) -> None:
    """Raise :class:`GraphNotConnectedError` unless ``graph`` is connected."""
    if graph.num_nodes == 0:
        raise EmptyGraphError("algorithm requires at least one node")
    if not is_connected(graph):
        raise GraphNotConnectedError(
            "graph {!r} is not connected".format(graph.name)
        )


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components as sorted node lists, ordered by smallest node."""
    seen = [False] * graph.num_nodes
    components: List[List[int]] = []
    for start in graph.nodes():
        if seen[start]:
            continue
        comp = []
        queue = deque([start])
        seen[start] = True
        while queue:
            v = queue.popleft()
            comp.append(v)
            for w in graph.neighbors(v):
                if not seen[w]:
                    seen[w] = True
                    queue.append(w)
        components.append(sorted(comp))
    return components


def eccentricity(graph: Graph, v: int) -> int:
    """Maximum distance from ``v`` to any node (graph must be connected)."""
    dist = bfs_distances(graph, v)
    if UNREACHED in dist:
        raise GraphNotConnectedError("eccentricity undefined: not connected")
    return max(dist)


def eccentricities(graph: Graph) -> List[int]:
    """Eccentricity of every node (one BFS per node)."""
    return [eccentricity(graph, v) for v in graph.nodes()]


def diameter(graph: Graph) -> int:
    """The diameter max_{u,v} d(u, v) of a connected graph."""
    require_connected(graph)
    return max(eccentricities(graph))


def radius(graph: Graph) -> int:
    """The radius min_v ecc(v) of a connected graph."""
    require_connected(graph)
    return min(eccentricities(graph))


def all_pairs_distances(graph: Graph) -> List[List[int]]:
    """Dense N x N distance matrix via one BFS per node."""
    return [bfs_distances(graph, v) for v in graph.nodes()]


def distance_sum(graph: Graph, v: int) -> int:
    """Sum of distances from ``v`` to all nodes (connected graphs)."""
    dist = bfs_distances(graph, v)
    if UNREACHED in dist:
        raise GraphNotConnectedError("distance sum undefined: not connected")
    return sum(dist)


def max_shortest_path_count(graph: Graph) -> int:
    """max_{s,t} sigma_st over all pairs — the paper's "large value".

    On graphs like hypercube-ish grids this grows exponentially with the
    diameter, which is why exact counts cannot ride in O(log N)-bit
    messages (Section V of the paper).
    """
    best = 0
    for s in graph.nodes():
        sigma = shortest_path_counts(graph, s)
        local = max(sigma)
        if local > best:
            best = local
    return best


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of nodes having that degree."""
    hist: Dict[int, int] = {}
    for v in graph.nodes():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist
