"""Graph serialization: edge lists and JSON.

Edge-list format: one ``u v`` pair per line, ``#`` comments and blank
lines ignored, with an optional ``# nodes: N`` header to preserve
isolated nodes.  Node tokens may be arbitrary strings; they are mapped
to dense integer ids in first-seen order unless they already parse as
the dense range.

JSON format: ``{"name": ..., "nodes": N, "edges": [[u, v], ...]}`` for
unweighted graphs and ``"edges": [[u, v, w], ...]`` with
``"weighted": true`` for weighted ones.
"""

from __future__ import annotations

import io
import json
import os
from typing import List, Optional, Tuple, Union

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, GraphBuilder

PathLike = Union[str, "os.PathLike[str]"]


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in edge-list format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_edge_list(graph))


def dumps_edge_list(graph: Graph) -> str:
    """Serialize ``graph`` to an edge-list string."""
    out = io.StringIO()
    out.write("# name: {}\n".format(graph.name))
    out.write("# nodes: {}\n".format(graph.num_nodes))
    for u, v in graph.edges():
        out.write("{} {}\n".format(u, v))
    return out.getvalue()


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph from an edge-list file written by :func:`write_edge_list`.

    Also accepts generic whitespace-separated edge lists produced by
    other tools (e.g. SNAP dumps); unknown node labels are relabelled to
    a dense range in order of first appearance.
    """
    with open(path, "r", encoding="utf-8") as fh:
        return loads_edge_list(fh.read())


def loads_edge_list(text: str) -> Graph:
    """Parse an edge-list string into a :class:`Graph`."""
    name: Optional[str] = None
    declared_nodes: Optional[int] = None
    pairs: List[Tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("name:"):
                name = body[len("name:"):].strip()
            elif body.startswith("nodes:"):
                declared_nodes = int(body[len("nodes:"):].strip())
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(
                "line {}: expected 'u v', got {!r}".format(lineno, raw)
            )
        pairs.append((parts[0], parts[1]))

    dense = _try_dense_ints(pairs, declared_nodes)
    if dense is not None:
        num_nodes, edges = dense
        return Graph(num_nodes, edges, name=name)

    builder = GraphBuilder(name=name)
    if declared_nodes is not None:
        for i in range(declared_nodes):
            builder.add_node(str(i))
    builder.add_edges(pairs)
    return builder.build()


def _try_dense_ints(
    pairs: List[Tuple[str, str]], declared_nodes: Optional[int]
) -> Optional[Tuple[int, List[Tuple[int, int]]]]:
    """Interpret tokens as a dense 0..N-1 integer labelling if possible."""
    try:
        edges = [(int(a), int(b)) for a, b in pairs]
    except ValueError:
        return None
    max_seen = max((max(u, v) for u, v in edges), default=-1)
    if any(min(u, v) < 0 for u, v in edges):
        return None
    num_nodes = max_seen + 1
    if declared_nodes is not None:
        if declared_nodes < num_nodes:
            raise GraphError(
                "declared {} nodes but edges mention node {}".format(
                    declared_nodes, max_seen
                )
            )
        num_nodes = declared_nodes
    return num_nodes, edges


# ----------------------------------------------------------------------
# JSON format (unweighted and weighted graphs)
# ----------------------------------------------------------------------
def dumps_json(graph) -> str:
    """Serialize a :class:`Graph` or :class:`WeightedGraph` to JSON."""
    from repro.graphs.weighted import WeightedGraph

    payload = {
        "name": graph.name,
        "nodes": graph.num_nodes,
    }
    if isinstance(graph, WeightedGraph):
        payload["weighted"] = True
        payload["edges"] = [[u, v, w] for u, v, w in graph.edges()]
    else:
        payload["weighted"] = False
        payload["edges"] = [[u, v] for u, v in graph.edges()]
    return json.dumps(payload, indent=2)


def loads_json(text: str):
    """Parse :func:`dumps_json` output back into a graph.

    Returns a :class:`Graph` or, when ``"weighted": true``, a
    :class:`~repro.graphs.weighted.WeightedGraph`.
    """
    from repro.graphs.weighted import WeightedGraph

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise GraphError("invalid graph JSON: {}".format(err)) from err
    try:
        num_nodes = int(payload["nodes"])
        edges = payload["edges"]
        weighted = bool(payload.get("weighted", False))
        name = payload.get("name")
    except (KeyError, TypeError) as err:
        raise GraphError("graph JSON missing field: {}".format(err)) from err
    if weighted:
        return WeightedGraph(
            num_nodes, [(int(u), int(v), int(w)) for u, v, w in edges], name=name
        )
    return Graph(num_nodes, [(int(u), int(v)) for u, v in edges], name=name)


def write_json(graph, path: PathLike) -> None:
    """Write a graph to ``path`` in JSON format."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_json(graph))


def read_json(path: PathLike):
    """Read a graph written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads_json(fh.read())
