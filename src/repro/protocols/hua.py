"""The stock protocol: Hua et al., registered as ``hua-bc``.

Algorithm 2 (pipelined BFS counting behind a DFS token) plus
Algorithm 3 (the collision-free scheduled dependency aggregation,
line 3's ``T_s(u) = T_s + D − d(s, u)``).  This is the protocol the
whole repository reproduces; registering it — instead of leaving it as
the assumed default — is what lets every runtime layer above
:class:`~repro.congest.node.NodeAlgorithm` stay protocol-agnostic.

It is the only protocol the bulk engine's closed-form array program
reproduces, so it alone carries ``bulk_capable=True``.
"""

from __future__ import annotations

from repro.core.node import BetweennessNode, make_node_factory
from repro.core.schedule import expected_phase_schedule
from repro.protocols.base import Protocol
from repro.wire import PROTOCOL_MESSAGES

HUA_BC = Protocol(
    name="hua-bc",
    title="Hua et al. pipelined-BFS counting + scheduled aggregation",
    paper=(
        "Hua, Fan, Qian, Jin, Huang, Zhou, Xiahou — Nearly Optimal "
        "Distributed Algorithm for Computing Betweenness Centrality "
        "(ICDCS 2016), Algorithms 2–3"
    ),
    node_class=BetweennessNode,
    messages=PROTOCOL_MESSAGES,
    build_factory=make_node_factory,
    bulk_capable=True,
    fault_wrappable=True,
    schedule=expected_phase_schedule,
    notes=(
        "Backward phase sends for source s at base + T_s + D − d(s, u): "
        "early-started sources aggregate first."
    ),
)
