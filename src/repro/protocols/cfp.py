"""The rival protocol: Crescenzi–Fraigniaud–Paz, registered as ``cfp-bc``.

"Simple and Fast Distributed Computation of Betweenness Centrality"
(arXiv 2001.08108) builds, like the stock protocol, on pipelined
BFS explorations over a Holzer–Wattenhofer-style APSP phase, and then
accumulates Brandes dependencies backward over the shortest-path DAGs.
Where the two differ is the *timing discipline* of the backward phase:

* ``hua-bc`` (Algorithm 3, line 3) schedules node u's send for source
  s at ``base + T_s + D − d(s, u)`` — early-started sources aggregate
  first, and collision-freedom is Lemma 4 arithmetic over the DFS
  token's separation invariant.
* ``cfp-bc`` *time-reverses* the forward phase: u sends for s at

      ``base + (T_max + D) − (T_s + d(s, u))``

  i.e. exactly as far from the end of the accumulation window as the
  forward settle round ``T_s + d(s, u)`` was from its start.  The
  last-settled pair accumulates first, mirroring how CFP plays the
  recorded BFS transcript backwards.  Collision-freedom needs no
  schedule arithmetic at all: the counting phase settles at most one
  fresh source per node per round (machine-checked on every run), so
  the reversed rounds are distinct per node by construction.

Both schedules are affine in the settle round with unit slope, so in
either protocol a node's shortest-path descendants send exactly one
round before it and the psi recursion (Eq. 14) telescopes identically;
the same ``AggStart``/``AggValue`` wire messages carry it, the billed
bits go through the same exact codec, and the horizon
``base + T_max + D`` bounds both windows.  The arena benchmark
confirms the consequence empirically: identical rounds, billed bits
and BC output, while the *temporal distribution* of aggregation
traffic is reversed (the trace diff pinpoints the first divergent
round).  The protocol is a rival where it matters for the refactor:
every runtime layer must carry it through factory, dispatch, faults,
telemetry and CLI without special-casing the stock node.

The forward machinery (spanning tree, census, DFS-token-staggered BFS
waves, completion convergecast) is shared with the stock protocol by
subclassing — both papers assume the same APSP substrate, and the
shared code keeps the comparison honest: any observed difference is
the backward schedule, not an incidental reimplementation.
"""

from __future__ import annotations

from repro.arithmetic.context import ArithmeticContext
from repro.core.aggregation import AggregationPhase
from repro.core.config import ProtocolConfig
from repro.core.node import BetweennessNode, make_node_factory
from repro.core.schedule import expected_phase_schedule
from repro.protocols.base import Protocol
from repro.wire import PROTOCOL_MESSAGES


class CfpAccumulationPhase(AggregationPhase):
    """Algorithm 3's state machine with the CFP time-reversed schedule."""

    schedule_invariant = "forward-settle uniqueness"

    def _send_round_for(self, start_time: int, dist: int) -> int:
        """Reverse of the forward settle round within the window.

        ``base + (T_max + D) − (T_s + d(s, u))`` — distinct per node
        because forward settle rounds are (one fresh source per node
        per round), and one larger on the s-ward neighbor, so
        descendants still deliver exactly one round before u sends.
        """
        return (
            self.base
            + self.max_start_time
            + self.diameter
            - start_time
            - dist
        )


class CfpNode(BetweennessNode):
    """A network node running the CFP variant of the protocol.

    Inherits the full dispatch loop, wake registration and output
    surface; only the aggregation phase class differs.
    """

    aggregation_class = CfpAccumulationPhase


def make_cfp_factory(
    root: int,
    arith: ArithmeticContext,
    config: ProtocolConfig = ProtocolConfig(),
    telemetry=None,
):
    """The node factory for ``cfp-bc`` runs."""
    return make_node_factory(
        root, arith, config=config, telemetry=telemetry, node_class=CfpNode
    )


CFP_BC = Protocol(
    name="cfp-bc",
    title="Crescenzi–Fraigniaud–Paz time-reversed accumulation",
    paper=(
        "Crescenzi, Fraigniaud, Paz — Simple and Fast Distributed "
        "Computation of Betweenness Centrality (arXiv 2001.08108)"
    ),
    node_class=CfpNode,
    messages=PROTOCOL_MESSAGES,
    build_factory=make_cfp_factory,
    # The bulk engine's closed-form array program encodes the stock
    # send schedule; cfp-bc runs on the sweep/event engines.
    bulk_capable=False,
    fault_wrappable=True,
    # The phase boundaries (census, result, base, horizon) are shared
    # with the stock protocol — only the traffic inside the aggregation
    # window is re-timed — so the closed-form schedule applies as-is.
    schedule=expected_phase_schedule,
    notes=(
        "Backward phase sends for source s at base + (T_max + D) − "
        "(T_s + d(s, u)): the forward transcript replayed backwards. "
        "Same rounds, bits and BC as hua-bc; reversed traffic timing."
    ),
)
