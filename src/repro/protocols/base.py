"""The protocol layer contract: the :class:`Protocol` descriptor.

Everything above :class:`~repro.congest.node.NodeAlgorithm` used to
hard-code the paper's Algorithm 2 node — the dispatcher probed for
"stock nodes", the telemetry derived phases from ``BetweennessNode``
internals, the pipeline and CLI instantiated it directly.  A
:class:`Protocol` makes that coupling explicit and replaceable: one
frozen descriptor bundles the node factory, the node class the runtime
layers may probe for, the wire-message set, the capability flags the
engine dispatcher and the fault layer consult, the closed-form
round-schedule hook the progress estimator uses, and the result
extractor the pipeline calls after the run.

The contract each layer honors:

* **Simulator / pipeline** build nodes exclusively through
  :meth:`Protocol.build_factory` and read results through
  :meth:`Protocol.extract`.
* **Engine dispatcher** never sends a protocol to the bulk engine
  unless :attr:`Protocol.bulk_capable` says the closed-form array
  program reproduces it; ``engine="auto"`` falls back to the event
  engine with the protocol named in the recorded reason.
* **Fault layer** wraps nodes in the generic transport only when
  :attr:`Protocol.fault_wrappable` is set (the alpha-synchronizer is
  protocol-agnostic, but a protocol that bypasses the inbox contract
  could opt out).
* **Observability** uses :meth:`Protocol.schedule` for percent/ETA
  progress and stamps :attr:`Protocol.name` into telemetry metadata
  and history run keys, so runs of different protocols never collide
  in the regression ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple


@dataclass(frozen=True)
class Protocol:
    """One registered distributed-BC protocol (see module docstring)."""

    #: Registry key, e.g. ``"hua-bc"`` — what ``--protocol`` selects and
    #: what telemetry metadata / history run keys record.
    name: str
    #: One-line human description for ``repro info`` and docs.
    title: str
    #: Provenance of the algorithm (paper reference).
    paper: str
    #: The node class instances of this protocol are built from.  The
    #: runtime layers use it for unwrap checks and capability probes —
    #: an exact-type anchor, not an isinstance hierarchy.
    node_class: type
    #: Wire message classes the protocol puts on edges (all must be
    #: registered with the exact-bit codec in :mod:`repro.wire`).
    messages: Tuple[type, ...]
    #: Factory builder: ``(root, arith, config=, telemetry=) -> NodeFactory``.
    build_factory: Callable
    #: True if the bulk engine's closed-form array program reproduces
    #: this protocol bit-identically (only the stock schedule qualifies).
    bulk_capable: bool = False
    #: True if the generic fault transport may wrap this protocol's
    #: nodes (requires only the standard inbox/round contract).
    fault_wrappable: bool = True
    #: Closed-form phase schedule for progress estimation:
    #: ``(graph, root=, sources=, aggregate=) -> PhaseSchedule``, or
    #: None when no closed form exists (the estimator then runs without
    #: a total).
    schedule: Optional[Callable] = None
    #: Result extractor: ``(simulator, graph, arith, root) -> result``,
    #: or None to use the pipeline's standard collector (which reads
    #: the ``betweenness_raw`` / ``diameter`` / ``ledger`` surface of
    #: :attr:`node_class`).
    extract: Optional[Callable] = None
    #: Free-form notes rendered in docs (arena findings, caveats).
    notes: str = field(default="", compare=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
