"""Protocol registry: named, pluggable distributed-BC protocols.

The registry maps a protocol name to its :class:`Protocol` descriptor
(see :mod:`repro.protocols.base` for the layer contract).  The
runtime — simulator, pipeline, engine dispatcher, fault layer,
telemetry, CLI — resolves protocols exclusively through
:func:`get_protocol`, so registering a descriptor here is the single
step needed to make a new protocol runnable everywhere:

    from repro.protocols import Protocol, register

    register(Protocol(name="my-bc", node_class=MyNode, ...))

Then ``distributed_betweenness(graph, protocol="my-bc")`` or
``repro bc --protocol my-bc`` runs it, the dispatcher routes it to a
capable engine, the chaos harness can wrap it, and history run keys
record which protocol produced each entry.

Two protocols ship built-in: the paper's ``hua-bc`` (the default) and
the Crescenzi–Fraigniaud–Paz rival ``cfp-bc``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.exceptions import ReproError
from repro.protocols.base import Protocol
from repro.protocols.cfp import CFP_BC, CfpAccumulationPhase, CfpNode
from repro.protocols.hua import HUA_BC

#: The protocol assumed when none is named — the paper's own.
DEFAULT_PROTOCOL = "hua-bc"

_REGISTRY: Dict[str, Protocol] = {}


class UnknownProtocolError(ReproError):
    """Raised when a protocol name is not in the registry."""


def register(protocol: Protocol) -> Protocol:
    """Add a protocol to the registry (name must be unused)."""
    if protocol.name in _REGISTRY:
        raise ValueError(
            "protocol {!r} is already registered".format(protocol.name)
        )
    _REGISTRY[protocol.name] = protocol
    return protocol


def get_protocol(protocol: Union[str, Protocol, None]) -> Protocol:
    """Resolve a name (or pass a descriptor through) to a Protocol.

    ``None`` resolves to the default ``hua-bc``; an unregistered name
    raises :class:`UnknownProtocolError` listing what is available.
    """
    if protocol is None:
        return _REGISTRY[DEFAULT_PROTOCOL]
    if isinstance(protocol, Protocol):
        return protocol
    found = _REGISTRY.get(protocol)
    if found is None:
        raise UnknownProtocolError(
            "unknown protocol {!r} (registered: {})".format(
                protocol, ", ".join(sorted(_REGISTRY))
            )
        )
    return found


def protocol_names() -> List[str]:
    """All registered protocol names, sorted."""
    return sorted(_REGISTRY)


def protocol_of_node(node) -> Optional[Protocol]:
    """The registered protocol whose exact node class built ``node``.

    Exact-type match, mirroring the dispatcher's stock-node probe; a
    subclass of a registered node class is a *different* protocol (or
    none) until registered itself.  Transport wrappers are not
    unwrapped here — pass the inner node.
    """
    cls = type(node)
    for protocol in _REGISTRY.values():
        if protocol.node_class is cls:
            return protocol
    return None


register(HUA_BC)
register(CFP_BC)

__all__ = [
    "CFP_BC",
    "CfpAccumulationPhase",
    "CfpNode",
    "DEFAULT_PROTOCOL",
    "HUA_BC",
    "Protocol",
    "UnknownProtocolError",
    "get_protocol",
    "protocol_names",
    "protocol_of_node",
    "register",
]
