"""Theoretical error bounds from Section VI of the paper.

These closed-form bounds are checked against *measured* errors by the
test suite and by ``benchmarks/bench_float_error.py``:

* Lemma 1: a single ceil-rounded store has relative error at most
  ``2**(-L + 1)``.
* Theorem 1: the betweenness value computed with L-bit arithmetic has
  relative error O(eta) with ``eta = O(2**-L)``; because an
  implementation rounds after *every* operation (the paper's analysis
  rounds only the sigma values), the constant grows with the number of
  rounded operations along the computation, giving the compound bound
  ``(1 + 2**(-L+1))**k - 1`` for k operations.
* Corollary 1: with ``L = c * log2 N`` the error is ``O(N**-(c - 2))``
  (two powers of N pay for the up-to-N rounded operations).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Mapping


def lemma1_bound(precision: int) -> float:
    """Per-value relative error bound ``2**(-L+1)`` of Lemma 1."""
    return 2.0 ** (-(precision - 1))


def compound_bound(precision: int, operations: int) -> float:
    """Relative error after ``operations`` rounded steps.

    Each rounded operation multiplies the one-sided error envelope by at
    most ``(1 + 2**(-L+1))``; this returns the envelope's deviation from
    1.  For ``operations * 2**(-L+1) << 1`` this is approximately
    ``operations * 2**(-L+1)``.
    """
    eta = lemma1_bound(precision)
    return (1.0 + eta) ** max(0, operations) - 1.0


def theorem1_bound(precision: int, num_nodes: int, diameter: int) -> float:
    """End-to-end relative error bound on CB(v) for the full pipeline.

    The computation of a single dependency chains at most
    ``N`` sigma additions, ``N`` reciprocals, ``N`` psi additions and a
    final product, and CB sums N dependencies; ``4 * N + 1`` rounded
    operations is a safe over-count.  The ``diameter`` argument is kept
    for callers that want the tighter per-BFS-depth count
    (``4 * diameter`` dominates chains along one shortest path).
    """
    operations = 4 * num_nodes + 1
    return compound_bound(precision, operations)


def corollary1_error(num_nodes: int, c: float) -> float:
    """The ``O(N**-(c-2))`` error scale of Corollary 1 for L = c log2 N."""
    if num_nodes < 2:
        return 0.0
    return float(num_nodes) ** -(c - 2.0)


def relative_error(measured: float, exact: Fraction) -> float:
    """``|measured/exact - 1|``, with 0/0 treated as no error."""
    if exact == 0:
        return 0.0 if measured == 0 else math.inf
    return abs(measured / float(exact) - 1.0)


def max_relative_error(
    measured: Mapping[int, float], exact: Mapping[int, Fraction]
) -> float:
    """Maximum per-node relative error between two BC maps."""
    worst = 0.0
    for node, value in exact.items():
        err = relative_error(measured[node], Fraction(value))
        if err > worst:
            worst = err
    return worst


def error_profile(
    measured: Mapping[int, float], exact: Mapping[int, Fraction]
) -> Dict[str, float]:
    """Summary statistics (max / mean relative error) for reports."""
    errs = [
        relative_error(measured[node], Fraction(value))
        for node, value in exact.items()
        if value != 0
    ]
    if not errs:
        return {"max": 0.0, "mean": 0.0, "count": 0}
    return {
        "max": max(errs),
        "mean": sum(errs) / len(errs),
        "count": len(errs),
    }
