"""L-bit floating point arithmetic (Section VI of the paper).

The number of shortest paths sigma_st can be as large as (N/D)**D —
exponential in the input — so it cannot be shipped in an O(log N)-bit
CONGEST message as a plain integer.  The paper therefore represents each
positive value ``a`` as ``a = y * 2**x`` with a normalized ``y`` in
[1/2, 1) stored as an L-bit mantissa and an exponent ``x`` with
``|x| <= 2**L - 1``, for 2L + 1 = O(log N) bits total.

:class:`LFloat` implements that format exactly, using arbitrary-
precision integers internally, so the *rounding behaviour is bit-true*:
every operation computes the exact dyadic-rational result and rounds the
mantissa to L bits according to a :class:`Rounding` mode.

Rounding conventions used by the distributed algorithm
------------------------------------------------------
* sigma accumulation uses ``CEIL`` so that the estimate satisfies
  ``sigma_hat >= sigma`` (the "ceil estimation value" of Lemma 1).
* reciprocals ``1/sigma_hat`` and psi accumulation use ``FLOOR`` so the
  chain of inequalities (17)-(19) is preserved:
  ``psi / (1 + eta)**k  <  psi_hat  <  psi`` where k is the number of
  rounded operations and ``eta = 2**(1 - L)``.

With L = c * log2(N) the end-to-end relative error of the betweenness
value is O(N ** -(c - 2)) (Theorem 1 / Corollary 1); the test suite and
``benchmarks/bench_float_error.py`` verify the measured error against
these bounds.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Iterable, Tuple, Union

from repro.exceptions import ArithmeticModeError, LFloatRangeError

Number = Union[int, "LFloat", Fraction]


class Rounding(enum.Enum):
    """Mantissa rounding modes for :class:`LFloat` operations."""

    FLOOR = "floor"
    CEIL = "ceil"
    NEAREST = "nearest"


def _normalize_fraction(
    num: int, den: int, precision: int, mode: Rounding
) -> Tuple[int, int]:
    """Round the positive rational ``num / den`` to a normalized float.

    Returns ``(mantissa, exponent)`` with
    ``mantissa * 2**(exponent - precision)`` approximating ``num / den``
    and ``mantissa`` in ``[2**(precision-1), 2**precision - 1]``.
    """
    if num <= 0 or den <= 0:
        raise ArithmeticModeError("LFloat only represents positive values")
    # Locate e with 2**(e-1) <= num/den < 2**e.
    e = num.bit_length() - den.bit_length()
    if e >= 0:
        ge = num >= den << e
    else:
        ge = num << -e >= den
    if ge:
        e += 1
    shift = precision - e
    if shift >= 0:
        scaled_num, scaled_den = num << shift, den
    else:
        scaled_num, scaled_den = num, den << (-shift)
    q, r = divmod(scaled_num, scaled_den)
    if r:
        if mode is Rounding.CEIL:
            q += 1
        elif mode is Rounding.NEAREST and 2 * r >= scaled_den:
            q += 1
    if q == 1 << precision:  # rounding overflowed into the next binade
        q >>= 1
        e += 1
    return q, e


def _normalize_int(num: int, precision: int, mode: Rounding) -> Tuple[int, int]:
    """:func:`_normalize_fraction` specialized to ``den == 1``.

    Bit-for-bit identical results; the quotient/remainder come from
    shifts and masks instead of ``divmod``.  This is the hot path: every
    add and mul normalizes an integer numerator.
    """
    e = num.bit_length()  # 2**(e-1) <= num < 2**e for num >= 1
    shift = precision - e
    if shift >= 0:
        return num << shift, e
    rshift = -shift
    q = num >> rshift
    if num & ((1 << rshift) - 1):
        if mode is Rounding.CEIL:
            q += 1
        elif mode is Rounding.NEAREST and (num >> (rshift - 1)) & 1:
            # remainder >= half of the dropped range: round up (ties up,
            # matching the generic 2*r >= den rule).
            q += 1
        if q == 1 << precision:  # rounding overflowed into the next binade
            q >>= 1
            e += 1
    return q, e


class LFloat:
    """A positive number in the paper's 2L-bit floating point format.

    Instances are immutable.  Arithmetic operators return new
    :class:`LFloat` values rounded with the instance's default mode;
    the explicit :meth:`add`, :meth:`mul`, :meth:`div` and
    :meth:`reciprocal` methods accept a per-operation mode.

    Parameters
    ----------
    mantissa, exponent:
        Internal representation: ``value = mantissa * 2**(exponent - L)``
        with a normalized mantissa.  Use the class methods
        (:meth:`from_int`, :meth:`from_fraction`) instead of the raw
        constructor.
    precision:
        The parameter L (mantissa bits).
    rounding:
        Default rounding mode for operator syntax.
    """

    __slots__ = ("_m", "_e", "_L", "_mode")

    def __init__(
        self,
        mantissa: int,
        exponent: int,
        precision: int,
        rounding: Rounding = Rounding.NEAREST,
    ):
        if precision < 2:
            raise ArithmeticModeError("precision L must be >= 2")
        if mantissa == 0:
            exponent = 0
        elif not (1 << (precision - 1)) <= mantissa < (1 << precision):
            raise ArithmeticModeError(
                "mantissa {} not normalized for L={}".format(mantissa, precision)
            )
        limit = (1 << precision) - 1
        if abs(exponent) > limit:
            raise LFloatRangeError(
                "exponent {} outside [-{}, {}] for L={}".format(
                    exponent, limit, limit, precision
                )
            )
        self._m = mantissa
        self._e = exponent
        self._L = precision
        self._mode = rounding

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, precision: int, rounding: Rounding = Rounding.NEAREST) -> "LFloat":
        """The additive identity (exactly representable)."""
        return cls(0, 0, precision, rounding)

    @classmethod
    def from_int(
        cls, value: int, precision: int, rounding: Rounding = Rounding.NEAREST
    ) -> "LFloat":
        """Round a non-negative integer into the format."""
        if value < 0:
            raise ArithmeticModeError("LFloat only represents positive values")
        if value == 0:
            return cls.zero(precision, rounding)
        m, e = _normalize_fraction(value, 1, precision, rounding)
        return cls(m, e, precision, rounding)

    @classmethod
    def from_fraction(
        cls,
        value: Fraction,
        precision: int,
        rounding: Rounding = Rounding.NEAREST,
    ) -> "LFloat":
        """Round a non-negative :class:`fractions.Fraction` into the format."""
        if value < 0:
            raise ArithmeticModeError("LFloat only represents positive values")
        if value == 0:
            return cls.zero(precision, rounding)
        m, e = _normalize_fraction(
            value.numerator, value.denominator, precision, rounding
        )
        return cls(m, e, precision, rounding)

    # ------------------------------------------------------------------
    # properties and conversions
    # ------------------------------------------------------------------
    @property
    def mantissa(self) -> int:
        """The L-bit mantissa (0 for zero)."""
        return self._m

    @property
    def exponent(self) -> int:
        """The binary exponent x with value = (mantissa / 2**L) * 2**x."""
        return self._e

    @property
    def precision(self) -> int:
        """The parameter L."""
        return self._L

    @property
    def rounding(self) -> Rounding:
        """Default rounding mode used by operator syntax."""
        return self._mode

    @property
    def is_zero(self) -> bool:
        """Whether this is the exact zero value."""
        return self._m == 0

    def to_fraction(self) -> Fraction:
        """The exact rational value represented."""
        shift = self._e - self._L
        if shift >= 0:
            return Fraction(self._m << shift, 1)
        return Fraction(self._m, 1 << -shift)

    def to_float(self) -> float:
        """A ``float`` approximation (may overflow to ``inf`` for huge e)."""
        try:
            return self._m * 2.0 ** (self._e - self._L)
        except OverflowError:
            return float("inf")

    def bit_size(self) -> int:
        """Bits needed on the wire: L mantissa + (L + 1) signed exponent."""
        return 2 * self._L + 1

    def encode(self) -> int:
        """Pack into an unsigned integer of :meth:`bit_size` bits.

        Layout (LSB first): L mantissa bits, then L exponent-magnitude
        bits, then one sign bit.  :meth:`decode` inverts this exactly.
        """
        sign = 1 if self._e < 0 else 0
        return self._m | (abs(self._e) << self._L) | (sign << (2 * self._L))

    @classmethod
    def decode(
        cls,
        word: int,
        precision: int,
        rounding: Rounding = Rounding.NEAREST,
    ) -> "LFloat":
        """Unpack an integer produced by :meth:`encode`."""
        mask = (1 << precision) - 1
        m = word & mask
        mag = (word >> precision) & mask
        sign = (word >> (2 * precision)) & 1
        return cls(m, -mag if sign else mag, precision, rounding)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Number) -> "LFloat":
        if isinstance(other, LFloat):
            if other._L != self._L:
                raise ArithmeticModeError(
                    "mixed precisions: L={} vs L={}".format(self._L, other._L)
                )
            return other
        if isinstance(other, int):
            return LFloat.from_int(other, self._L, self._mode)
        if isinstance(other, Fraction):
            return LFloat.from_fraction(other, self._L, self._mode)
        raise ArithmeticModeError(
            "cannot combine LFloat with {!r}".format(type(other).__name__)
        )

    def _raw(self, mantissa: int, exponent: int) -> "LFloat":
        """Construct without re-validation: for values already known
        normalized and in range (copies and normalizer outputs)."""
        out = object.__new__(LFloat)
        out._m = mantissa
        out._e = exponent
        out._L = self._L
        out._mode = self._mode
        return out

    def _checked(self, mantissa: int, exponent: int) -> "LFloat":
        """Construct from a normalizer's output: the mantissa is
        normalized by construction, only the exponent needs the
        range check of the 2L + 1-bit format."""
        limit = (1 << self._L) - 1
        if exponent > limit or exponent < -limit:
            raise LFloatRangeError(
                "exponent {} outside [-{}, {}] for L={}".format(
                    exponent, limit, limit, self._L
                )
            )
        out = object.__new__(LFloat)
        out._m = mantissa
        out._e = exponent
        out._L = self._L
        out._mode = self._mode
        return out

    def _build(self, num: int, den: int, shift: int, mode: Rounding) -> "LFloat":
        """Normalize ``(num / den) * 2**shift`` into a new LFloat."""
        if den == 1:
            m, e = _normalize_int(num, self._L, mode)
        elif den & (den - 1) == 0:
            # Power-of-two denominator: dividing shifts the exponent
            # without touching the mantissa bits (so the rounding is
            # identical to the generic path).  Reciprocals of unit
            # sigmas land here on every tree-like shortest path.
            m, e = _normalize_int(num, self._L, mode)
            e -= den.bit_length() - 1
        else:
            m, e = _normalize_fraction(num, den, self._L, mode)
        return self._checked(m, e + shift)

    def add(self, other: Number, mode: Rounding = None) -> "LFloat":
        """Rounded addition; exact before the single final rounding."""
        if type(other) is not LFloat:
            other = self._coerce(other)
        elif other._L != self._L:
            raise ArithmeticModeError(
                "mixed precisions: L={} vs L={}".format(self._L, other._L)
            )
        sm = self._m
        om = other._m
        if sm == 0:
            return self._raw(om, other._e)
        if om == 0:
            return self
        se = self._e
        oe = other._e
        if se >= oe:
            num = (sm << (se - oe)) + om
            emin = oe
        else:
            num = sm + (om << (oe - se))
            emin = se
        m, e = _normalize_int(num, self._L, mode or self._mode)
        return self._checked(m, e + emin - self._L)

    def mul(self, other: Number, mode: Rounding = None) -> "LFloat":
        """Rounded multiplication."""
        if type(other) is not LFloat:
            other = self._coerce(other)
        elif other._L != self._L:
            raise ArithmeticModeError(
                "mixed precisions: L={} vs L={}".format(self._L, other._L)
            )
        sm = self._m
        om = other._m
        if sm == 0 or om == 0:
            return self._raw(0, 0)
        if om & (om - 1) == 0:
            # A normalized power-of-two mantissa is exactly 2**(L-1), so
            # the product is ``sm << (L-1)``: normalization drops only
            # zero bits and rounding never fires.  The result is exact —
            # bit-identical to the generic path — for any mode.  The
            # final dependency product delta = psi * sigma lands here
            # whenever sigma is a power of two (always, on trees/paths).
            return self._checked(sm, self._e + other._e - 1)
        if sm & (sm - 1) == 0:
            return self._checked(om, self._e + other._e - 1)
        m, e = _normalize_int(sm * om, self._L, mode or self._mode)
        return self._checked(m, e + self._e + other._e - 2 * self._L)

    def div(self, other: Number, mode: Rounding = None) -> "LFloat":
        """Rounded division."""
        other = self._coerce(other)
        mode = mode or self._mode
        if other.is_zero:
            raise ZeroDivisionError("LFloat division by zero")
        if self.is_zero:
            return self._raw(0, 0)
        return self._build(self._m, other._m, self._e - other._e, mode)

    def reciprocal(self, mode: Rounding = None) -> "LFloat":
        """Rounded multiplicative inverse ``1 / self``."""
        mode = mode or self._mode
        if self.is_zero:
            raise ZeroDivisionError("reciprocal of zero")
        return self._build(1, self._m, self._L - self._e, mode)

    # operator sugar ----------------------------------------------------
    def __add__(self, other: Number) -> "LFloat":
        return self.add(other)

    def __radd__(self, other: Number) -> "LFloat":
        return self.add(other)

    def __mul__(self, other: Number) -> "LFloat":
        return self.mul(other)

    def __rmul__(self, other: Number) -> "LFloat":
        return self.mul(other)

    def __truediv__(self, other: Number) -> "LFloat":
        return self.div(other)

    # comparisons (exact, via the rational values) ----------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, LFloat):
            return self.to_fraction() == other.to_fraction()
        if isinstance(other, (int, Fraction)):
            return self.to_fraction() == other
        return NotImplemented

    def __lt__(self, other: Number) -> bool:
        return self.to_fraction() < _as_fraction(other)

    def __le__(self, other: Number) -> bool:
        return self.to_fraction() <= _as_fraction(other)

    def __gt__(self, other: Number) -> bool:
        return self.to_fraction() > _as_fraction(other)

    def __ge__(self, other: Number) -> bool:
        return self.to_fraction() >= _as_fraction(other)

    def __hash__(self) -> int:
        return hash(self.to_fraction())

    def __reduce__(self):
        # Compact pickling: the default slot-state protocol emits a
        # two-item state tuple per instance, which dominates checkpoint
        # blobs on large graphs.  A constructor call round-trips all
        # four fields (the validation re-runs, but on already-valid
        # values).
        return (type(self), (self._m, self._e, self._L, self._mode))

    def __repr__(self) -> str:
        return "LFloat({} * 2**{}, L={})".format(
            self._m, self._e - self._L, self._L
        )


def _as_fraction(value: Number) -> Fraction:
    if isinstance(value, LFloat):
        return value.to_fraction()
    return Fraction(value)


def lfloat_sum(
    values: Iterable[LFloat],
    precision: int,
    rounding: Rounding = Rounding.FLOOR,
) -> LFloat:
    """Left-to-right rounded summation, as a node's inbox loop performs it."""
    total = LFloat.zero(precision, rounding)
    for value in values:
        total = total.add(value, rounding)
    return total
