"""Arithmetic modes for the distributed algorithm.

The pipeline is generic over *how* shortest-path counts (sigma) and
dependency ratios (psi) are represented:

* :class:`ExactContext` uses Python integers and
  :class:`fractions.Fraction` — a bit-true reference whose messages can
  grow to Theta(N) bits on graphs with exponentially many shortest
  paths, i.e. it *violates* the CONGEST model (the paper's "Large Value
  Challenge", Section V).  Running the simulator in strict mode with
  this context demonstrates the violation.
* :class:`LFloatArithmetic` uses the paper's 2L-bit floating point
  format (Section VI) with the rounding directions chosen so that
  Lemma 1 / Theorem 1 apply; every message stays within O(log N) bits.

Both contexts expose the same small vocabulary of operations used by
Algorithms 2 and 3: sigma initialization/accumulation, reciprocal,
psi accumulation, the final dependency product ``psi * sigma``, and the
wire size of a value in bits.
"""

from __future__ import annotations

import abc
import math
from fractions import Fraction
from typing import Any, Dict, Tuple, Union

from repro.arithmetic.lfloat import LFloat, Rounding

Value = Any  # int | Fraction | LFloat depending on context


class ArithmeticContext(abc.ABC):
    """The arithmetic vocabulary of the distributed BC algorithm."""

    #: short identifier used in reports ("exact" / "lfloat-<L>")
    name: str

    # -- sigma (shortest path counts) ----------------------------------
    @abc.abstractmethod
    def sigma_one(self) -> Value:
        """The count of the trivial path (sigma_ss = 1)."""

    @abc.abstractmethod
    def sigma_add(self, a: Value, b: Value) -> Value:
        """Accumulate predecessor counts: Eq. (6)."""

    # -- psi (dependency ratios, Eq. 14) --------------------------------
    @abc.abstractmethod
    def psi_zero(self) -> Value:
        """The additive identity for psi accumulation."""

    @abc.abstractmethod
    def psi_add(self, a: Value, b: Value) -> Value:
        """Accumulate a received ``1/sigma + psi`` term."""

    @abc.abstractmethod
    def psi_one(self) -> Value:
        """The unit term in the psi domain.

        Betweenness seeds the Eq. (14) recursion with ``1/sigma``;
        the stress variant (footnote 3 of the paper) seeds it with 1 —
        this is that 1.
        """

    @abc.abstractmethod
    def reciprocal(self, sigma: Value) -> Value:
        """``1 / sigma`` in the psi domain."""

    @abc.abstractmethod
    def dependency(self, psi: Value, sigma: Value) -> Value:
        """delta = psi * sigma (line 17 of Algorithm 3)."""

    # -- wire accounting -------------------------------------------------
    @abc.abstractmethod
    def value_bits(self, value: Value) -> int:
        """Bits this value occupies in a CONGEST message.

        Must agree with :func:`repro.wire.values.value_bits` — the codec
        sizes values by type, and the frame audit will catch a context
        that disagrees with the encoder.
        """

    def read_sigma(self, reader) -> Value:
        """Decode a sigma field from a :class:`~repro.wire.bits.BitReader`.

        The wire bits alone don't say whether they carry an exact
        integer or an L-float, nor which directed rounding the receiver
        should attach — that is this context's knowledge.
        """
        raise NotImplementedError(
            "{} cannot decode sigma fields".format(type(self).__name__)
        )

    def read_psi(self, reader) -> Value:
        """Decode a psi field from a :class:`~repro.wire.bits.BitReader`."""
        raise NotImplementedError(
            "{} cannot decode psi fields".format(type(self).__name__)
        )

    # -- output ------------------------------------------------------
    @abc.abstractmethod
    def to_float(self, value: Value) -> float:
        """Render a value for reporting."""

    def to_exact(self, value: Value) -> Fraction:
        """The exact rational behind ``value`` (for error analysis)."""
        if isinstance(value, LFloat):
            return value.to_fraction()
        return Fraction(value)


class ExactContext(ArithmeticContext):
    """Arbitrary-precision reference arithmetic (ints and Fractions).

    Message sizes report the true bit cost of the carried numbers, which
    lets the simulator detect CONGEST violations that the paper's
    Section V predicts for exponential path counts.
    """

    name = "exact"

    def sigma_one(self) -> int:
        return 1

    def sigma_add(self, a: int, b: int) -> int:
        return a + b

    def psi_zero(self) -> Fraction:
        return Fraction(0)

    def psi_one(self) -> Fraction:
        return Fraction(1)

    def psi_add(self, a: Fraction, b: Fraction) -> Fraction:
        return a + b

    def reciprocal(self, sigma: int) -> Fraction:
        return Fraction(1, sigma)

    def dependency(self, psi: Fraction, sigma: int) -> Fraction:
        return psi * sigma

    def value_bits(self, value: Union[int, Fraction]) -> int:
        # Defer to the wire codec: sigma is one varint, psi (a Fraction)
        # is a numerator varint plus a denominator varint.  Imported
        # lazily to keep this module importable without repro.wire.
        from repro.wire.values import value_bits

        return value_bits(value)

    def read_sigma(self, reader) -> int:
        from repro.wire.values import read_int

        return read_int(reader)

    def read_psi(self, reader) -> Fraction:
        from repro.wire.values import read_fraction

        return read_fraction(reader)

    def to_float(self, value: Union[int, Fraction]) -> float:
        return float(value)


class LFloatArithmetic(ArithmeticContext):
    """The paper's Section VI floating point arithmetic.

    Parameters
    ----------
    precision:
        The mantissa width L.  Choose ``L >= ceil(c * log2 N)`` with
        c >= 2 for an O(N**-(c-2)) relative error on the final BC values
        (Corollary 1); :func:`recommended_precision` computes a good
        default.
    """

    def __init__(self, precision: int):
        self.precision = int(precision)
        self.name = "lfloat-{}".format(self.precision)
        #: Memo for :meth:`reciprocal`, keyed by representation.  The
        #: aggregation phase computes 1/sigma_su once per (node, source)
        #: pair, but the sigma values repeat massively (every record on
        #: a tree-like shortest path has sigma == 1); LFloat is
        #: immutable, so sharing the result object is safe.
        self._recip_cache: Dict[Tuple[int, int], LFloat] = {}

    def sigma_one(self) -> LFloat:
        return LFloat.from_int(1, self.precision, Rounding.CEIL)

    def sigma_add(self, a: LFloat, b: LFloat) -> LFloat:
        # Ceil keeps sigma_hat >= sigma (Lemma 1's "ceil estimation").
        return a.add(b, Rounding.CEIL)

    def psi_zero(self) -> LFloat:
        return LFloat.zero(self.precision, Rounding.FLOOR)

    def psi_one(self) -> LFloat:
        return LFloat.from_int(1, self.precision, Rounding.FLOOR)

    def psi_add(self, a: LFloat, b: LFloat) -> LFloat:
        # Floor keeps psi_hat <= psi, preserving inequality (18).
        return a.add(b, Rounding.FLOOR)

    def reciprocal(self, sigma: LFloat) -> LFloat:
        # 1/sigma_hat < 1/sigma already; floor keeps the bound one-sided.
        key = (sigma.mantissa, sigma.exponent)
        cached = self._recip_cache.get(key)
        if cached is None:
            cached = self._recip_cache[key] = sigma.reciprocal(Rounding.FLOOR)
        return cached

    def dependency(self, psi: LFloat, sigma: LFloat) -> LFloat:
        return psi.mul(sigma, Rounding.NEAREST)

    def value_bits(self, value: LFloat) -> int:
        return value.bit_size()

    def read_sigma(self, reader) -> LFloat:
        # Sigmas travel with ceil semantics (Lemma 1's over-estimate).
        return LFloat.decode(
            reader.read(2 * self.precision + 1), self.precision, Rounding.CEIL
        )

    def read_psi(self, reader) -> LFloat:
        # Psi terms travel with floor semantics (inequality (18)).
        return LFloat.decode(
            reader.read(2 * self.precision + 1), self.precision, Rounding.FLOOR
        )

    def to_float(self, value: LFloat) -> float:
        return value.to_float()


def recommended_precision(num_nodes: int, c: float = 3.0) -> int:
    """L = max(8, ceil(c * log2 N)): the Corollary 1 parameter choice.

    ``c = 3`` gives a comfortably small O(1/N) end-to-end error while
    keeping messages at O(log N) bits.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    return max(8, math.ceil(c * math.log2(max(2, num_nodes))))


def make_context(mode: Union[str, ArithmeticContext], num_nodes: int = 0):
    """Resolve a mode spec into a context instance.

    Accepts an existing context, ``"exact"``, ``"lfloat"`` (precision
    chosen by :func:`recommended_precision` from ``num_nodes``), or
    ``"lfloat-<L>"``.
    """
    if isinstance(mode, ArithmeticContext):
        return mode
    if mode == "exact":
        return ExactContext()
    if mode == "lfloat":
        return LFloatArithmetic(recommended_precision(max(1, num_nodes)))
    if isinstance(mode, str) and mode.startswith("lfloat-"):
        return LFloatArithmetic(int(mode.split("-", 1)[1]))
    raise ValueError("unknown arithmetic mode {!r}".format(mode))
