"""L-bit floating point arithmetic and error-bound machinery (Section VI)."""

from repro.arithmetic.context import (
    ArithmeticContext,
    ExactContext,
    LFloatArithmetic,
    make_context,
    recommended_precision,
)
from repro.arithmetic.errors import (
    compound_bound,
    corollary1_error,
    error_profile,
    lemma1_bound,
    max_relative_error,
    relative_error,
    theorem1_bound,
)
from repro.arithmetic.lfloat import LFloat, Rounding, lfloat_sum

__all__ = [
    "ArithmeticContext",
    "ExactContext",
    "LFloat",
    "LFloatArithmetic",
    "Rounding",
    "compound_bound",
    "corollary1_error",
    "error_profile",
    "lemma1_bound",
    "lfloat_sum",
    "make_context",
    "max_relative_error",
    "recommended_precision",
    "relative_error",
    "theorem1_bound",
]
