"""Execution backends for the CONGEST simulator.

The :class:`~repro.congest.simulator.Simulator` owns two pure-Python
engines (``sweep`` and ``event``); this package adds the vectorized
``bulk`` engine plus the capability-probing dispatcher that picks the
fastest engine able to run a given simulation (``engine="auto"``).

Modules
-------
:mod:`repro.engines.dispatcher`
    Probes for numpy and for the bulk engine's protocol envelope;
    resolves ``"auto"`` / validates explicit ``"bulk"`` requests.
:mod:`repro.engines.lfmath`
    Batched L-float arithmetic on int64 mantissa/exponent arrays,
    bit-identical to :class:`repro.arithmetic.lfloat.LFloat`.
:mod:`repro.engines.bulk`
    The structure-of-arrays engine: computes the protocol's closed-form
    schedule (Lemmas 2-5) and executes whole rounds as array ops.
"""

from repro.engines.dispatcher import (
    ENGINE_PREFERENCE,
    EngineDecision,
    bulk_capability,
    decide_engine,
    shard_capability,
    numpy_available,
    reset_probe,
    resolve_engine,
)

__all__ = [
    "ENGINE_PREFERENCE",
    "EngineDecision",
    "bulk_capability",
    "decide_engine",
    "shard_capability",
    "numpy_available",
    "reset_probe",
    "resolve_engine",
]
