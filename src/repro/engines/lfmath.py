"""Batched L-float arithmetic on int64 mantissa/exponent lanes.

The bulk engine carries every sigma/psi value as a pair of parallel
int64 arrays ``(m, e)`` — mantissa and exponent of
:class:`repro.arithmetic.lfloat.LFloat`, with zero encoded as
``(0, 0)`` exactly like the scalar format.  The kernels here reproduce
the scalar normalizer **bit for bit** in every rounding mode, which is
what lets the bulk engine promise byte-identical results to the
``sweep`` and ``event`` engines (verified by the differential suite and
by randomized kernel-vs-scalar tests).

Why int64 is enough — and where the envelope ends:

* A product of two L-bit mantissas needs ``2L`` bits.
* An aligned addition needs ``2L + 2`` bits *after sticky capping*
  (below); the reciprocal numerator ``2**(2L - 1)`` needs ``2L``.
* Hence every intermediate fits a signed 64-bit lane iff ``L <= 30``
  (:data:`repro.engines.dispatcher.MAX_BULK_PRECISION`).

**Sticky capping.**  The scalar adder aligns mantissas with an
arbitrary-precision shift ``m_hi << (e_hi - e_lo)``, which int64 cannot
do once the exponent gap exceeds ~33 bits.  But only the top ``L + 1``
bits of the aligned sum plus one "is anything below nonzero" sticky bit
can influence the rounded result, so for a gap ``diff > L`` the pair
``(diff, m_lo)`` is replaced by ``(L + 1, 1)``: the quotient, the
remainder-nonzero test and the round-to-nearest guard bit (which sits
above the capped region only when ``diff <= L``, and is provably zero
otherwise) all come out identical in all three rounding modes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LFloatRangeError

__all__ = [
    "bit_length",
    "lf_add",
    "lf_mul",
    "lf_reciprocal",
    "uint_bits_arr",
]

_LOW32 = np.int64(0xFFFFFFFF)


def bit_length(x: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 below 2**62.

    ``np.frexp`` on a float64 returns the exponent, which equals the bit
    length for exact integer inputs; splitting into 32-bit halves keeps
    every conversion exact (a direct conversion of a 62-bit value would
    round at 53 bits and misreport lengths near binade boundaries).
    """
    hi = x >> 32
    lo = x & _LOW32
    return np.where(
        hi > 0,
        np.frexp(hi.astype(np.float64))[1] + 32,
        np.frexp(lo.astype(np.float64))[1],
    ).astype(np.int64)


def _round_up_mask(num, rshift, mode: str):
    """Lanes whose quotient must be bumped by one (remainder nonzero)."""
    if mode == "floor":
        return None
    has_rem = (num & ((np.int64(1) << rshift) - 1)) != 0
    if mode == "ceil":
        return has_rem
    if mode == "nearest":
        # Guard bit == top dropped bit; it is inside the remainder mask,
        # so a zero remainder implies a zero guard — no extra gating.
        return ((num >> (rshift - 1)) & 1) != 0
    raise ValueError("unknown rounding mode {!r}".format(mode))


def _normalize(num: np.ndarray, L: int, mode: str):
    """Vectorized ``_normalize_int`` for ``num >= 2**L`` (``rshift >= 1``).

    Both call sites (add, mul) guarantee ``num`` is at least ``2**L``,
    so the left-shift branch of the scalar normalizer never applies.
    Returns ``(q, e)`` exactly as the scalar ``(mantissa, bit length
    incl. overflow bump)`` pair.
    """
    e = bit_length(num)
    rshift = e - L
    q = num >> rshift
    up = _round_up_mask(num, rshift, mode)
    if up is not None:
        q = q + up
        overflow = q == (np.int64(1) << L)
        q = np.where(overflow, q >> 1, q)
        e = e + overflow
    return q, e


def _check_range(e: np.ndarray, L: int) -> None:
    limit = (1 << L) - 1
    if np.any(np.abs(e) > limit):
        bad = int(e[np.argmax(np.abs(e))])
        raise LFloatRangeError(
            "exponent {} outside [-{}, {}] for L={}".format(
                bad, limit, limit, L
            )
        )


def lf_add(ma, ea, mb, eb, L: int, mode: str):
    """Elementwise ``a.add(b, mode)`` on (mantissa, exponent) lanes.

    Operand order matters exactly as in the scalar adder: on an exponent
    tie the **first** operand is treated as the high one (the scalar
    tests ``se >= oe``), and a zero operand returns the other operand's
    lanes verbatim.
    """
    ma = np.asarray(ma, dtype=np.int64)
    ea = np.asarray(ea, dtype=np.int64)
    mb = np.asarray(mb, dtype=np.int64)
    eb = np.asarray(eb, dtype=np.int64)
    a_zero = ma == 0
    b_zero = mb == 0
    # Neutralize zero lanes with a harmless normalized value so the
    # generic path below cannot trip on them; results are overwritten.
    one = np.int64(1) << (L - 1)
    ma_s = np.where(a_zero, one, ma)
    ea_s = np.where(a_zero, 0, ea)
    mb_s = np.where(b_zero, one, mb)
    eb_s = np.where(b_zero, 0, eb)

    a_is_hi = ea_s >= eb_s
    m_hi = np.where(a_is_hi, ma_s, mb_s)
    e_hi = np.where(a_is_hi, ea_s, eb_s)
    m_lo = np.where(a_is_hi, mb_s, ma_s)
    e_lo = np.where(a_is_hi, eb_s, ea_s)

    diff = e_hi - e_lo
    capped = diff > L
    diff_eff = np.where(capped, L + 1, diff)
    m_lo_eff = np.where(capped, 1, m_lo)
    e_lo_eff = e_hi - diff_eff

    num = (m_hi << diff_eff) + m_lo_eff  # < 2**(2L + 2) <= 2**62
    q, e_n = _normalize(num, L, mode)
    res_m = q
    res_e = e_n + e_lo_eff - L

    res_m = np.where(a_zero, mb, np.where(b_zero, ma, res_m))
    res_e = np.where(a_zero, eb, np.where(b_zero, ea, res_e))
    _check_range(res_e, L)
    return res_m, res_e


def lf_mul(ma, ea, mb, eb, L: int, mode: str):
    """Elementwise ``a.mul(b, mode)`` on (mantissa, exponent) lanes.

    The scalar power-of-two shortcuts are exact and bit-identical to
    the generic path (their normalization drops only zero bits), so the
    kernel runs the generic path uniformly.
    """
    ma = np.asarray(ma, dtype=np.int64)
    ea = np.asarray(ea, dtype=np.int64)
    mb = np.asarray(mb, dtype=np.int64)
    eb = np.asarray(eb, dtype=np.int64)
    zero = (ma == 0) | (mb == 0)
    one = np.int64(1) << (L - 1)
    ma_s = np.where(zero, one, ma)
    mb_s = np.where(zero, one, mb)
    num = ma_s * mb_s  # < 2**(2L) <= 2**60
    q, e_n = _normalize(num, L, mode)
    res_m = np.where(zero, 0, q)
    res_e = np.where(zero, 0, e_n + ea + eb - 2 * L)
    _check_range(res_e, L)
    return res_m, res_e


def lf_reciprocal(m, e, L: int):
    """Elementwise floor-rounded ``1 / x`` on nonzero (m, e) lanes.

    Mirrors the scalar ``_build(1, m, L - e, FLOOR)``: a power-of-two
    mantissa (necessarily ``2**(L-1)``) inverts exactly to
    ``(2**(L-1), 2 - e)``; otherwise the floored quotient
    ``2**(2L-1) // m`` is already normalized and the exponent is
    ``1 - e``.
    """
    m = np.asarray(m, dtype=np.int64)
    e = np.asarray(e, dtype=np.int64)
    if np.any(m == 0):
        raise ZeroDivisionError("reciprocal of zero")
    pow2 = m == (np.int64(1) << (L - 1))
    safe_m = np.where(pow2, 1, m)  # avoid the exact-power division lane
    q = (np.int64(1) << (2 * L - 1)) // safe_m
    res_m = np.where(pow2, np.int64(1) << (L - 1), q)
    res_e = np.where(pow2, 2 - e, 1 - e)
    _check_range(res_e, L)
    return res_m, res_e


def uint_bits_arr(value: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.wire.bits.uint_bits` (varint width).

    ``uint_bits(v) = b + 2 * (bit_length(b) - 1)`` with
    ``b = bit_length(v + 1)`` — the Elias-gamma-style self-delimiting
    width the wire layer charges for unbounded counters.
    """
    value = np.asarray(value, dtype=np.int64)
    b = bit_length(value + 1)
    return b + 2 * (bit_length(b) - 1)
