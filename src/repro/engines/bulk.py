"""The bulk engine: whole-protocol execution as closed-form schedule + arrays.

The paper's protocol is *oblivious*: once the graph, the root and the
configuration are fixed, every round of every phase is determined by
closed-form recurrences (Lemmas 2-5) — the spanning-tree flood settles
node v at its BFS depth, the DFS token walk is a fixed Euler tour, BFS(s)
reaches v exactly at round ``T_s + d(s, v)``, and the aggregation send
for (s, v) fires at ``base + T_s + D - d(s, v)``.  This engine therefore
never steps node objects.  It

1. derives the full round schedule in O(N + E) Python (tree depths,
   census/announce rounds, the token walk, the completion convergecast),
2. runs one *batched* multi-source BFS over all sources at once as numpy
   structure-of-arrays ops — per-(source, node) distance/sigma/psi lanes
   with :mod:`repro.engines.lfmath` carrying the L-float mantissa and
   exponent in int64 arrays, bit-identical to the scalar arithmetic the
   other engines run,
3. materializes the complete send inventory (round, sender, target,
   bits, drain rank) and reduces it into :class:`SimulationStats`
   entirely with array ops, and
4. back-fills the node objects (tree / counting / aggregation state and
   lazily-materialized ledgers) so every public observable — results,
   stats, per-node state — is indistinguishable from a ``sweep`` run.

Billed bits are computed from the closed-form wire widths (the codec's
layouts are fixed-width except the census varints, which are computed
per value); a deterministic **sampling audit** encodes a sample of
per-edge round frames through :func:`repro.wire.codec.encode_frame` and
cross-checks the charged totals, failing with the same
:class:`~repro.exceptions.WireCodecError` the sweep engine's frame audit
raises.  When a run needs per-send observability (a tracer, the full
frame audit, telemetry send/round monitors) or ends exceptionally
(strict-mode violation, round-limit overrun), the engine *replays* the
precomputed send inventory through the exact billing sequence of the
sweep engine's ``_step`` — same drain order, same message objects, same
partial state at the point of raise.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.arithmetic.lfloat import LFloat, Rounding
from repro.core.config import UNIT_STRESS
from repro.core.messages import (
    AggStart,
    AggValue,
    Announce,
    BfsWave,
    DfsToken,
    DoneReport,
    SubtreeCount,
    TreeJoin,
    TreeWave,
)
from repro.core.records import NodeLedger
from repro.core.schedule import (
    census_schedule,
    dfs_token_schedule,
    tree_schedule,
)
from repro.engines import lfmath
from repro.exceptions import (
    CongestViolationError,
    SimulationNotTerminatedError,
    WireCodecError,
)
from repro.wire.codec import encode_frame
from repro.wire.format import TYPE_TAG_BITS

__all__ = ["run_bulk", "populate_stats"]

# ---------------------------------------------------------------------------
# Drain-order slots.
#
# The sweep engine steps nodes in id order and drains each node's sends
# in the order the phase handlers enqueue them.  Within one node's round
# that order is fixed by the handler sequence in BetweennessNode.on_round
# (tree -> counting -> aggregation) and by each handler's internal order;
# the slots below encode it, so the global drain order of any send is the
# tuple (round, sender, slot, seq).  Slots 4 and 6 never co-occur (the
# separation invariant), and every (round, sender, slot, seq) is unique.
# ---------------------------------------------------------------------------
_SLOT_TREE_WAVE = 0  # TreePhase._settle: TreeWave broadcast
_SLOT_TREE_JOIN = 1  # TreePhase._settle: TreeJoin to the parent
_SLOT_CENSUS = 2  # _maybe_send_count: SubtreeCount, or the root's Announce
_SLOT_ANNOUNCE_FWD = 3  # _handle_announce: forward Announce to children
_SLOT_WAVE_SETTLE = 4  # CountingPhase._settle_source broadcast
_SLOT_TOKEN_BACK = 5  # _handle_tokens: immediate forward of a backtrack
_SLOT_WAVE_OWN = 6  # _maybe_start_bfs: own-BFS launch broadcast
_SLOT_TOKEN_DELAY = 7  # _maybe_forward_token: the one-slot-delayed forward
_SLOT_REPORT = 8  # _maybe_report_done: DoneReport, or the root's AggStart
_SLOT_AGGSTART_FWD = 9  # AggregationPhase.handle_start forward
_SLOT_AGGVALUE = 10  # AggregationPhase.on_round scheduled send
_SLOT_STRIDE = 16

# Message kinds in the send inventory (column ``kind``); ``aux`` carries
# the kind-specific payload handle (a scalar, or a packed pair index).
_K_TREE_WAVE = 0
_K_TREE_JOIN = 1
_K_COUNT = 2
_K_ANNOUNCE = 3
_K_TOKEN = 4
_K_WAVE = 5
_K_DONE = 6
_K_AGGSTART = 7
_K_AGGVALUE = 8

#: Edge-round frames cross-checked against the exact codec per fast run.
_AUDIT_SAMPLES = 64


def _lf(m: int, e: int, L: int, mode: Rounding) -> LFloat:
    """Rebuild a scalar LFloat from int64 mantissa/exponent lanes."""
    if m == 0:
        return LFloat.zero(L, mode)
    return LFloat(int(m), int(e), L, mode)


def _rebuild_ledger(state: Dict) -> NodeLedger:
    """Pickle helper: a materialized bulk ledger travels as a plain one."""
    ledger = NodeLedger.__new__(NodeLedger)
    ledger.__setstate__(state)
    return ledger


#: NodeLedger state read by every accessor — index, columns and the CSR
#: predecessor buffers.  Reading any of them on a not-yet-filled bulk
#: ledger triggers the one-time materialization.
_LAZY_ATTRS = frozenset(
    (
        "_index",
        "row_of",
        "source_col",
        "start_col",
        "dist_col",
        "sigma_col",
        "psi_col",
        "sent_col",
        "_pred_flat",
        "_pred_off",
    )
)


class _BulkLedger(NodeLedger):
    """A :class:`NodeLedger` whose rows materialize on first access.

    The bulk engine holds every ledger row in shared plan arrays;
    filling Theta(N^2) per-node ledger rows eagerly would cost more
    than the whole vectorized run.  Any read of the index or a column —
    directly or through a base-class accessor — triggers the one-time
    fill, in ascending settle-round order exactly as the sweep engine
    inserted them.
    """

    def __init__(
        self,
        owner: int,
        fill: Callable[["_BulkLedger"], None],
        summary: Optional[Callable[[], Dict[str, int]]] = None,
    ):
        super().__init__(owner)
        self._fill: Optional[Callable[["_BulkLedger"], None]] = fill
        self._summary = summary

    def __getattribute__(self, name):
        if (
            name in _LAZY_ATTRS
            # __dict__ lookup, not attribute lookup: _fill is absent
            # while the base __init__ seeds the empty columns.
            and object.__getattribute__(self, "__dict__").get("_fill")
            is not None
        ):
            object.__getattribute__(self, "_materialize")()
        return object.__getattribute__(self, name)

    def _materialize(self) -> None:
        fill = self._fill
        if fill is not None:
            self._fill = None
            fill(self)

    def storage_summary(self):
        # The telemetry gauges ask every ledger for its footprint; a
        # closed-form answer off the plan arrays keeps instrumented
        # bulk runs from materializing Theta(N^2) rows just to be
        # measured.
        if self.__dict__.get("_fill") is not None and self._summary is not None:
            return self._summary()
        return NodeLedger.storage_summary(self)

    def __reduce__(self):
        # Closures over the plan arrays don't pickle; a materialized
        # ledger is indistinguishable from a plain one, so ship that
        # (run_many's parallel mode pickles result nodes back).
        self._materialize()
        state = self.__getstate__()
        state.pop("_fill", None)
        state.pop("_summary", None)
        return (_rebuild_ledger, (state,))


class _Plan:
    """Everything :func:`run_bulk` derives before touching the stats."""

    __slots__ = (
        "N", "root", "L", "aggregate",
        "depth", "parent", "children", "depth_max",
        "census_send", "r_census", "subtree_size",
        "first_visit", "dfs_complete",
        "src", "s_idx_of", "T",
        "dist_flat", "sig_m", "sig_e", "psi_m", "psi_e", "val_m", "val_e",
        "pred_indptr", "pred_rows", "pair_rows",
        "ecc", "subtree_ecc", "done_send", "r_result",
        "diameter", "t_max", "base", "horizon",
        "rounds", "done_round",
        "bet_m", "bet_e",
        "r_col", "snd_col", "tgt_col", "bits_col", "rank",
        "block_sizes", "py_rows", "deg", "kind_col", "aux_col",
        "violation",
    )


# ---------------------------------------------------------------------------
# schedule derivation
# ---------------------------------------------------------------------------
def _csr(graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency with neighbor lists in ascending-id order."""
    n = graph.num_nodes
    deg = np.empty(n, dtype=np.int64)
    chunks: List[Tuple[int, ...]] = []
    for v in range(n):
        nbrs = graph.neighbors(v)
        deg[v] = len(nbrs)
        chunks.append(nbrs)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    indices = np.fromiter(
        (u for nbrs in chunks for u in nbrs), dtype=np.int64, count=int(indptr[-1])
    )
    return indptr, indices, deg


# The tree / census / DFS-token schedules are shared with the pure-
# Python progress estimator and live in repro.core.schedule; the bulk
# engine wires its drain-order slot constants into the token walk.


# ---------------------------------------------------------------------------
# the batched multi-source BFS and the psi recursion
# ---------------------------------------------------------------------------
def _ordered_fold(acc_m, acc_e, src_m, src_e, first, counts, L, mode):
    """Left-fold ``src`` rows into ``acc`` per group, in row order.

    Groups are contiguous runs ``src[first[g] : first[g] + counts[g]]``;
    the fold applies ``acc = lf_add(acc, row)`` one position at a time
    across all groups simultaneously, reproducing the scalar engines'
    strictly sequential accumulation order (ascending sender) bit for
    bit.  The loop runs ``max(counts)`` times — the max in-degree of the
    level, not the total row count.
    """
    j = 0
    while True:
        live = counts > j
        if not live.any():
            return acc_m, acc_e
        rows = first[live] + j
        nm, ne = lfmath.lf_add(
            acc_m[live], acc_e[live], src_m[rows], src_e[rows], L, mode
        )
        acc_m[live] = nm
        acc_e[live] = ne
        j += 1


def _batched_bfs(plan: _Plan, indptr, indices, deg):
    """All-source level-synchronous BFS with packed (source, node) keys.

    Pair ``p = s_idx * N + v`` settles at level ``d(s, v)``; per level
    the predecessor rows (pair, pred) are kept — sorted by (pair, pred),
    which is both the scalar inbox order (ascending sender) and the
    record's sorted predecessor tuple.  Sigma lanes are folded in that
    order with ceil rounding, exactly like ``CountingPhase._settle_source``.
    """
    N = plan.N
    L = plan.L
    S = len(plan.src)
    pair0 = np.arange(S, dtype=np.int64) * N + plan.src
    dist = np.full(S * N, -1, dtype=np.int64)
    dist[pair0] = 0
    sig_m = np.zeros(S * N, dtype=np.int64)
    sig_e = np.zeros(S * N, dtype=np.int64)
    one = np.int64(1) << (L - 1)
    sig_m[pair0] = one  # sigma_one = from_int(1) = (2**(L-1), 1)
    sig_e[pair0] = 1
    level_rows: List[Tuple[np.ndarray, np.ndarray]] = []
    settled: List[np.ndarray] = [pair0]
    frontier = pair0
    level = 0
    while frontier.size:
        level += 1
        vs = frontier % N
        s_part = frontier - vs
        counts = deg[vs]
        rp = np.repeat(frontier, counts)
        starts = np.repeat(indptr[vs], counts)
        offsets = np.arange(rp.size, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        targets = indices[starts + offsets]
        cand = np.repeat(s_part, counts) + targets
        mask = dist[cand] < 0
        cand = cand[mask]
        senders = rp[mask] % N
        if cand.size == 0:
            break
        order = np.lexsort((senders, cand))
        qs = cand[order]
        ps = senders[order]
        first = np.concatenate(([0], np.flatnonzero(qs[1:] != qs[:-1]) + 1))
        cnts = np.diff(np.concatenate((first, [qs.size])))
        uniq = qs[first]
        dist[uniq] = level
        sender_pairs = (qs - qs % N) + ps
        acc_m = sig_m[sender_pairs[first]].copy()
        acc_e = sig_e[sender_pairs[first]].copy()
        # Remaining predecessors fold in ascending-sender order (ceil).
        _ordered_fold(
            acc_m, acc_e,
            sig_m[sender_pairs], sig_e[sender_pairs],
            first + 1, cnts - 1, L, "ceil",
        )
        sig_m[uniq] = acc_m
        sig_e[uniq] = acc_e
        level_rows.append((qs, ps))
        settled.append(uniq)
        frontier = uniq
    plan.dist_flat = dist
    plan.sig_m = sig_m
    plan.sig_e = sig_e
    return level_rows, settled


def _psi_recursion(plan: _Plan, config, level_rows, settled):
    """Descending-level psi/value computation (Algorithm 3, Eq. 14).

    Values telescope down the BFS DAG: pairs at level l send
    ``unit + psi`` to their predecessors at level l - 1, whose psi is the
    ascending-sender floor-fold of the arriving values — one fold per
    pair, because all of a pair's successors send in the same round.
    """
    N = plan.N
    L = plan.L
    size = plan.sig_m.size
    psi_m = np.zeros(size, dtype=np.int64)
    psi_e = np.zeros(size, dtype=np.int64)
    val_m = np.zeros(size, dtype=np.int64)
    val_e = np.zeros(size, dtype=np.int64)
    one = np.int64(1) << (L - 1)
    # The unit term, masked to target pairs (non-targets relay psi only).
    target_mask = np.fromiter(
        (config.is_target(v) for v in range(N)), dtype=bool, count=N
    )
    tpair = np.tile(target_mask, size // N)
    if config.unit == UNIT_STRESS:
        unit_m = np.where(tpair, one, np.int64(0))
        unit_e = np.where(tpair, np.int64(1), np.int64(0))
    else:
        rm, re = lfmath.lf_reciprocal(
            np.where(tpair, plan.sig_m, one),
            np.where(tpair, plan.sig_e, np.int64(0)),
            L,
        )
        unit_m = np.where(tpair, rm, np.int64(0))
        unit_e = np.where(tpair, re, np.int64(0))
    for lev in range(len(level_rows), 0, -1):
        pairs = settled[lev]
        vm, ve = lfmath.lf_add(
            unit_m[pairs], unit_e[pairs], psi_m[pairs], psi_e[pairs], L, "floor"
        )
        val_m[pairs] = vm
        val_e[pairs] = ve
        qs, ps = level_rows[lev - 1]
        recv = (qs - qs % N) + ps
        order = np.lexsort((qs, recv))
        recv_s = recv[order]
        send_s = qs[order]
        first = np.concatenate(
            ([0], np.flatnonzero(recv_s[1:] != recv_s[:-1]) + 1)
        )
        cnts = np.diff(np.concatenate((first, [recv_s.size])))
        uniq = recv_s[first]
        acc_m = np.zeros(uniq.size, dtype=np.int64)
        acc_e = np.zeros(uniq.size, dtype=np.int64)
        _ordered_fold(
            acc_m, acc_e,
            val_m[send_s], val_e[send_s],
            first, cnts, L, "floor",
        )
        psi_m[uniq] = acc_m
        psi_e[uniq] = acc_e
    plan.psi_m = psi_m
    plan.psi_e = psi_e
    plan.val_m = val_m
    plan.val_e = val_e


def _betweenness_fold(plan: _Plan):
    """Per-node ledger fold of line 17-18, in settle-round order."""
    N = plan.N
    L = plan.L
    S = len(plan.src)
    dep_m, dep_e = lfmath.lf_mul(
        plan.psi_m, plan.psi_e, plan.sig_m, plan.sig_e, L, "nearest"
    )
    own = np.arange(S, dtype=np.int64) * N + plan.src
    # The node's own source contributes nothing; a zero lane is the
    # exact skip (psi_add(total, zero) returns total verbatim).
    dep_m[own] = 0
    dep_e[own] = 0
    settle = np.repeat(plan.T, N) + plan.dist_flat
    dm = dep_m.reshape(S, N).T
    de = dep_e.reshape(S, N).T
    order = np.argsort(settle.reshape(S, N).T, axis=1)
    dm = np.take_along_axis(dm, order, axis=1)
    de = np.take_along_axis(de, order, axis=1)
    acc_m = np.zeros(N, dtype=np.int64)
    acc_e = np.zeros(N, dtype=np.int64)
    for j in range(S):
        acc_m, acc_e = lfmath.lf_add(
            acc_m, acc_e, dm[:, j], de[:, j], L, "floor"
        )
    plan.bet_m = acc_m
    plan.bet_e = acc_e


# ---------------------------------------------------------------------------
# send inventory
# ---------------------------------------------------------------------------
def _send_inventory(plan: _Plan, sim, indptr, indices, deg, token_sends):
    """Materialize every send as parallel (round, sender, target, ...) columns.

    Tree/census/token/report traffic is O(N + E) and assembled in
    Python; the BFS-wave broadcasts (S * 2E rows) and the aggregation
    values (the predecessor rows) are assembled as array ops.
    """
    N = plan.N
    wire = sim.wire
    L = plan.L
    tag = TYPE_TAG_BITS
    from repro.wire.bits import uint_bits

    tw_bits = tag + wire.distance_bits
    tj_bits = tag
    an_bits = tag + uint_bits(N)
    tk_bits = tag + 1
    bw_bits = tag + wire.id_bits + wire.round_bits + wire.distance_bits + (
        2 * L + 1
    )
    dr_bits = tag + wire.distance_bits
    as_bits = tag + wire.distance_bits + 2 * wire.round_bits
    av_bits = tag + wire.id_bits + (2 * L + 1)

    rows: List[Tuple[int, int, int, int, int, int, int, int]] = []
    depth = plan.depth
    children = plan.children
    parent = plan.parent
    root = plan.root
    r_census = plan.r_census
    for v in range(N):
        dv = depth[v]
        if v != root:
            rows.append((dv, v, parent[v], tj_bits, _SLOT_TREE_JOIN, 0,
                         _K_TREE_JOIN, 0))
            rows.append((plan.census_send[v], v, parent[v],
                         tag + uint_bits(plan.subtree_size[v]), _SLOT_CENSUS,
                         0, _K_COUNT, plan.subtree_size[v]))
            rows.append((plan.done_send[v], v, parent[v], dr_bits,
                         _SLOT_REPORT, 0, _K_DONE, plan.subtree_ecc[v]))
        ch = children[v]
        if ch:
            if v == root:
                ann_round, ann_slot = r_census, _SLOT_CENSUS
                agg_round, agg_slot = plan.r_result, _SLOT_REPORT
            else:
                ann_round, ann_slot = r_census + dv, _SLOT_ANNOUNCE_FWD
                agg_round, agg_slot = plan.r_result + dv, _SLOT_AGGSTART_FWD
            for i, c in enumerate(ch):
                rows.append((ann_round, v, c, an_bits, ann_slot, i,
                             _K_ANNOUNCE, N))
                rows.append((agg_round, v, c, as_bits, agg_slot, i,
                             _K_AGGSTART, 0))
    for t, snd, tgt, returning, slot in token_sends:
        rows.append((t, snd, tgt, tk_bits, slot, 0, _K_TOKEN, returning))

    py = np.array(rows, dtype=np.int64)
    py_rank = (
        (py[:, 0] * N + py[:, 1]) * _SLOT_STRIDE + py[:, 4]
    ) * N + py[:, 5]

    # Only the five columns the stats reduction consumes are built
    # eagerly; slot/seq fold into the drain rank per block and the
    # replay/audit metadata (kind, aux) is reconstructed on demand by
    # _materialize_meta — the metadata columns would double the memory
    # traffic of the fast path for nothing.
    r_parts = [py[:, 0]]
    snd_parts = [py[:, 1]]
    tgt_parts = [py[:, 2]]
    bits_parts = [py[:, 3]]
    rank_parts = [py_rank]

    def _rank(r, snd, slot, seq):
        out = r * N
        out += snd
        out *= _SLOT_STRIDE
        out += slot
        out *= N
        out += seq
        return out

    # TreeWave broadcasts: every node, at its settle round, to every
    # neighbor.
    depth_arr = np.asarray(depth, dtype=np.int64)
    seq_base = np.arange(indices.size, dtype=np.int64) - np.repeat(
        indptr[:-1], deg
    )
    tw_snd = np.repeat(np.arange(N, dtype=np.int64), deg)
    r_parts.append(np.repeat(depth_arr, deg))
    snd_parts.append(tw_snd)
    tgt_parts.append(indices)
    bits_parts.append(np.full(indices.size, tw_bits, dtype=np.int64))
    rank_parts.append(
        _rank(r_parts[-1], tw_snd, np.int64(_SLOT_TREE_WAVE), seq_base)
    )

    # BfsWave broadcasts: every settled pair re-broadcasts once (own
    # launches use the later slot).
    S = len(plan.src)
    bc_round = np.repeat(plan.T, N) + plan.dist_flat
    slot_pair = np.where(
        plan.dist_flat == 0, np.int64(_SLOT_WAVE_OWN), np.int64(_SLOT_WAVE_SETTLE)
    )
    deg_t = np.tile(deg, S)
    bw_r = np.repeat(bc_round, deg_t)
    bw_snd = np.tile(tw_snd, S)
    r_parts.append(bw_r)
    snd_parts.append(bw_snd)
    tgt_parts.append(np.tile(indices, S))
    bits_parts.append(np.full(bw_r.size, bw_bits, dtype=np.int64))
    rank_parts.append(
        _rank(bw_r, bw_snd, np.repeat(slot_pair, deg_t), np.tile(seq_base, S))
    )

    # AggValue sends: pair (s, v) to each predecessor, at
    # base + T_s + D - d(s, v), in sorted-predecessor order.
    if plan.aggregate and plan.pred_rows.size:
        pair_rows, pred_rows = plan.pair_rows, plan.pred_rows
        send_round = (
            plan.base
            + np.repeat(plan.T, N)
            + plan.diameter
            - plan.dist_flat
        )
        counts = np.diff(plan.pred_indptr)
        seq = np.arange(pred_rows.size, dtype=np.int64) - np.repeat(
            plan.pred_indptr[:-1], counts
        )
        av_r = send_round[pair_rows]
        av_snd = pair_rows % N
        r_parts.append(av_r)
        snd_parts.append(av_snd)
        tgt_parts.append(pred_rows)
        bits_parts.append(np.full(av_r.size, av_bits, dtype=np.int64))
        rank_parts.append(
            _rank(av_r, av_snd, np.int64(_SLOT_AGGVALUE), seq)
        )

    plan.r_col = np.concatenate(r_parts)
    plan.snd_col = np.concatenate(snd_parts)
    plan.tgt_col = np.concatenate(tgt_parts)
    plan.bits_col = np.concatenate(bits_parts)
    plan.rank = np.concatenate(rank_parts)
    plan.block_sizes = tuple(part.size for part in r_parts)
    plan.py_rows = py
    plan.deg = deg
    plan.kind_col = None
    plan.aux_col = None


def _materialize_meta(plan: _Plan) -> None:
    """Build the (kind, aux) metadata columns for replay / frame audits.

    Deferred from :func:`_send_inventory`: the fast path never touches
    them.  Block order mirrors the inventory concatenation exactly —
    Python rows, TreeWave, BfsWave, then AggValue.
    """
    if plan.kind_col is not None:
        return
    sizes = plan.block_sizes
    py = plan.py_rows
    deg = plan.deg
    N = plan.N
    S = len(plan.src)
    depth_arr = np.asarray(plan.depth, dtype=np.int64)
    kind_parts = [py[:, 6]]
    aux_parts = [py[:, 7]]
    kind_parts.append(np.full(sizes[1], _K_TREE_WAVE, dtype=np.int64))
    aux_parts.append(np.repeat(depth_arr, deg))
    kind_parts.append(np.full(sizes[2], _K_WAVE, dtype=np.int64))
    aux_parts.append(np.repeat(np.arange(S * N, dtype=np.int64), np.tile(deg, S)))
    if len(sizes) > 3:
        kind_parts.append(np.full(sizes[3], _K_AGGVALUE, dtype=np.int64))
        aux_parts.append(plan.pair_rows)
    plan.kind_col = np.concatenate(kind_parts)
    plan.aux_col = np.concatenate(aux_parts)

# ---------------------------------------------------------------------------
# stats assembly (the fast path)
# ---------------------------------------------------------------------------
def _group_sends(n_nodes, r, snd, tgt, bits, rank):
    """Sort sends into (round, edge) groups, rank-ordered within a group.

    Returns ``(order, first, counts, group_keys, group_bits)``: the
    permutation, the per-group start offsets into it, group sizes, the
    packed ``(round * N + sender) * N + target`` group keys, and each
    group's total bits.  Computed once and shared by the stats
    reduction, the strict-mode violation scan and the sampling audit —
    the sort is the fast path's dominant cost.
    """
    key = (r * n_nodes + snd) * n_nodes + tgt
    order = np.lexsort((rank, key))
    ks = key[order]
    first = np.concatenate(
        ([0], np.flatnonzero(ks[1:] != ks[:-1]) + 1)
    )
    counts = np.diff(np.concatenate((first, [ks.size])))
    group_bits = np.add.reduceat(bits[order], first)
    return order, first, counts, ks[first], group_bits


def populate_stats(stats, rounds, n_nodes, r, snd, tgt, bits, rank,
                   grouping=None):
    """Reduce a send inventory into ``stats`` with array ops.

    Work is O(sends log sends) — per-round cost scales with the *active*
    edges of that round, never with N (the bench suite gates this with a
    scaling microbenchmark).  Reproduces ``observe_round`` exactly:

    * ``worst_edge`` is the first edge-round group, scanning rounds in
      order and groups in first-send order within a round, to reach the
      global per-edge bit maximum — i.e. the minimum first-send drain
      rank among the groups achieving the maximum;
    * the cut tracker (if armed) sees per-round crossing totals keyed in
      ascending round order, exactly as the scan inserts them.

    Returns the per-group arrays ``(order, first, counts, group_bits,
    round, sender, target)`` of the (round, sender, target) grouping for
    reuse by the sampling audit.
    """
    if grouping is None:
        grouping = _group_sends(n_nodes, r, snd, tgt, bits, rank)
    order, first, counts, uniq, group_bits = grouping
    g_round = uniq // (n_nodes * n_nodes)
    g_snd = (uniq // n_nodes) % n_nodes
    g_tgt = uniq % n_nodes

    stats.message_count += int(r.size)
    stats.bit_count += int(bits.sum())
    msgs_pr = np.bincount(r, minlength=rounds)
    bits_pr = np.bincount(r, weights=bits, minlength=rounds).astype(np.int64)
    stats.round_series.extend(
        zip(msgs_pr.tolist(), bits_pr.tolist())
    )
    max_bits = int(group_bits.max())
    stats.max_edge_bits_per_round = max_bits
    stats.max_edge_messages_per_round = int(counts.max())
    at_max = group_bits == max_bits
    first_rank = rank[order][first]
    winner = np.flatnonzero(at_max)[np.argmin(first_rank[at_max])]
    stats.worst_edge = (
        int(g_round[winner]), int(g_snd[winner]), int(g_tgt[winner])
    )
    cut = stats.cut
    if cut is not None:
        # CutTracker.observe runs once per (round, edge) accounting
        # group, so ``messages`` counts crossing *groups* (matching the
        # batched sweep semantics), while ``bits`` sums their loads.
        left = np.zeros(n_nodes, dtype=bool)
        left[list(cut.left)] = True
        crossing = left[g_snd] != left[g_tgt]
        cut.messages += int(crossing.sum())
        cbits = group_bits[crossing]
        cut.bits += int(cbits.sum())
        per_round = np.bincount(
            g_round[crossing], weights=cbits, minlength=rounds
        )
        for rr in np.flatnonzero(per_round):
            cut.bits_per_round[int(rr)] = (
                cut.bits_per_round.get(int(rr), 0) + int(per_round[rr])
            )
    return order, first, counts, group_bits, g_round, g_snd, g_tgt


def _first_violation(plan: _Plan, grouping, budget: int):
    """The earliest strict-mode violation in drain order, if any.

    Mirrors the sweep engine: per directed edge per round, the running
    bit total is checked after each send; the violating send is the one
    with the minimum drain rank whose cumulative edge-round total
    exceeds the budget.  Returns (round, sender, target, bits_used) or
    None.
    """
    order, first, _counts, _keys, group_bits = grouping
    if int(group_bits.max()) <= budget:
        # Bits are positive, so every running prefix is bounded by its
        # group total — no group over budget means no violating send.
        return None
    bs = plan.bits_col[order]
    cum = np.cumsum(bs)
    base = np.zeros(bs.size, dtype=np.int64)
    base[first[1:]] = cum[first[1:] - 1]
    cum = cum - np.maximum.accumulate(base)
    bad = np.flatnonzero(cum > budget)
    if bad.size == 0:
        return None
    ranks = plan.rank[order][bad]
    pick = bad[np.argmin(ranks)]
    row = order[pick]
    return (
        int(plan.r_col[row]),
        int(plan.snd_col[row]),
        int(plan.tgt_col[row]),
        int(cum[pick]),
    )


# ---------------------------------------------------------------------------
# message materialization (replay + sampling audit)
# ---------------------------------------------------------------------------
class _Materializer:
    """Rebuilds the concrete :mod:`repro.wire` message for a send row."""

    def __init__(self, plan: _Plan):
        self.plan = plan
        self._lf_cache: Dict[Tuple[int, int], Any] = {}
        self._agg_start = AggStart(plan.diameter, plan.t_max, plan.base)
        n = plan.N
        self._announce = Announce(n)
        self._token = DfsToken()
        self._token_back = DfsToken(returning=True)
        self._join = TreeJoin()

    def message(self, kind: int, aux: int):
        plan = self.plan
        if kind == _K_WAVE:
            cached = self._lf_cache.get((kind, aux))
            if cached is None:
                p = aux
                sigma = _lf(
                    plan.sig_m[p], plan.sig_e[p], plan.L, Rounding.CEIL
                )
                cached = BfsWave(
                    int(plan.src[p // plan.N]),
                    int(plan.T[p // plan.N]),
                    int(plan.dist_flat[p]),
                    sigma,
                )
                self._lf_cache[(kind, aux)] = cached
            return cached
        if kind == _K_AGGVALUE:
            cached = self._lf_cache.get((kind, aux))
            if cached is None:
                p = aux
                value = _lf(
                    plan.val_m[p], plan.val_e[p], plan.L, Rounding.FLOOR
                )
                cached = AggValue(int(plan.src[p // plan.N]), value)
                self._lf_cache[(kind, aux)] = cached
            return cached
        if kind == _K_TREE_WAVE:
            return TreeWave(aux)
        if kind == _K_TREE_JOIN:
            return self._join
        if kind == _K_COUNT:
            return SubtreeCount(aux)
        if kind == _K_ANNOUNCE:
            return self._announce
        if kind == _K_TOKEN:
            return self._token_back if aux else self._token
        if kind == _K_DONE:
            return DoneReport(aux)
        return self._agg_start  # _K_AGGSTART


def _sampling_audit(sim, plan: _Plan, grouping) -> None:
    """Spot-check billed totals against the exact codec.

    A deterministic sample of edge-round groups (the worst edge plus an
    even stride across all groups) is re-encoded through
    :func:`encode_frame`; any disagreement with the vectorized billing
    raises the same :class:`WireCodecError` as the sweep engine's frame
    audit.
    """
    order, first, counts, group_bits, g_round, g_snd, g_tgt = grouping
    n_groups = first.size
    if n_groups <= _AUDIT_SAMPLES:
        sample = np.arange(n_groups)
    else:
        sample = np.unique(
            np.concatenate((
                np.linspace(0, n_groups - 1, _AUDIT_SAMPLES).astype(np.int64),
                [int(np.argmax(group_bits))],
            ))
        )
    mat = _Materializer(plan)
    wire = sim.wire
    _materialize_meta(plan)
    kind = plan.kind_col
    aux = plan.aux_col
    rank = plan.rank
    for g in sample:
        rows = order[first[g]: first[g] + counts[g]]
        rows = rows[np.argsort(rank[rows])]
        messages = [mat.message(int(kind[i]), int(aux[i])) for i in rows]
        _word, frame_bits = encode_frame(messages, wire)
        if frame_bits != int(group_bits[g]):
            raise WireCodecError(
                "round {}: edge {}->{} charged {} bits but its "
                "encoded frame is {} bits".format(
                    int(g_round[g]), int(g_snd[g]), int(g_tgt[g]),
                    int(group_bits[g]), frame_bits,
                )
            )


# ---------------------------------------------------------------------------
# replay (exact per-send observability)
# ---------------------------------------------------------------------------
def _replay(sim, plan: _Plan) -> None:
    """Drive the precomputed send inventory through sweep-exact billing.

    Used whenever a run needs per-send hooks (tracer, telemetry send or
    round monitors, the full frame audit) or ends exceptionally; follows
    ``Simulator._step`` line for line — same drain order, same per-edge
    totals, same raise points, same partial tracer/stats state.
    """
    stats = sim.stats
    wire = sim.wire
    tracer = sim.tracer
    telemetry = sim.telemetry
    on_send = None
    on_round_end = None
    if telemetry is not None:
        if telemetry.wants_sends:
            on_send = telemetry.on_send
        on_round_end = telemetry.on_round_end
    budget = sim.bit_budget if sim.strict else None
    audit = sim.frame_audit
    max_rounds = sim.max_rounds
    _materialize_meta(plan)
    order = np.argsort(plan.rank)
    r_l = plan.r_col[order].tolist()
    snd_l = plan.snd_col[order].tolist()
    tgt_l = plan.tgt_col[order].tolist()
    kind_l = plan.kind_col[order].tolist()
    aux_l = plan.aux_col[order].tolist()
    mat = _Materializer(plan)
    message_of = mat.message
    total_sends = len(r_l)
    i = 0
    edge_load: Dict[Tuple[int, int], List[int]] = {}
    frames: Dict[Tuple[int, int], List[Any]] = {}
    for round_number in range(plan.rounds):
        if round_number > max_rounds:
            raise SimulationNotTerminatedError(
                round_number,
                max_rounds,
                tuple(
                    v for v in range(plan.N)
                    if plan.done_round[v] > max_rounds
                ),
                sim.graph.name,
            )
        stats.start_round()
        while i < total_sends and r_l[i] == round_number:
            sender = snd_l[i]
            target = tgt_l[i]
            message = message_of(kind_l[i], aux_l[i])
            bits = message.bit_size(wire)
            if tracer is not None:
                tracer.record(round_number, sender, target, message, bits)
            if on_send is not None:
                on_send(round_number, sender, target, message, bits)
            key = (sender, target)
            load = edge_load.get(key)
            if load is None:
                edge_load[key] = [1, bits]
                total = bits
            else:
                load[0] += 1
                total = load[1] = load[1] + bits
            if budget is not None and total > budget:
                raise CongestViolationError(
                    round_number, sender, target, total, budget
                )
            if audit:
                frame = frames.get(key)
                if frame is None:
                    frames[key] = [message]
                else:
                    frame.append(message)
            i += 1
        if edge_load:
            if audit:
                sim._audit_frames(round_number, edge_load, frames)
                frames.clear()
            stats.observe_round(round_number, edge_load)
            if on_round_end is not None:
                on_round_end(round_number, edge_load)
            edge_load.clear()


# ---------------------------------------------------------------------------
# node back-fill
# ---------------------------------------------------------------------------
def _plan_storage_summary(plan: _Plan, v: int) -> Dict[str, int]:
    """One node's NodeLedger.storage_summary(), straight off the plan."""
    S = len(plan.src)
    pairs = np.arange(S, dtype=np.int64) * plan.N + v
    links = int(
        (plan.pred_indptr[pairs + 1] - plan.pred_indptr[pairs]).sum()
    )
    return {
        "records": S,
        "pred_links": links,
        "fields": 4 * S,
        "words": 4 * S + links,
    }


def _fill_ledger(plan: _Plan, ledger: NodeLedger) -> None:
    """Materialize one node's rows, in ascending settle-round order."""
    v = ledger.owner
    N = plan.N
    L = plan.L
    S = len(plan.src)
    pairs = np.arange(S, dtype=np.int64) * N + v
    dists = plan.dist_flat[pairs]
    order = np.argsort(plan.T + dists)
    src = plan.src
    aggregate = plan.aggregate
    psi_col = ledger.psi_col
    sent_col = ledger.sent_col
    for s_i in order.tolist():
        p = s_i * N + v
        source = int(src[s_i])
        sigma = _lf(plan.sig_m[p], plan.sig_e[p], L, Rounding.CEIL)
        lo, hi = plan.pred_indptr[p], plan.pred_indptr[p + 1]
        preds = tuple(int(x) for x in plan.pred_rows[lo:hi])
        row = ledger.add_row(
            source, int(plan.T[s_i]), int(dists[s_i]), sigma, preds
        )
        if aggregate:
            psi_col[row] = _lf(plan.psi_m[p], plan.psi_e[p], L, Rounding.FLOOR)
            sent_col[row] = 1 if source != v else 0


def _populate_nodes(sim, plan: _Plan) -> None:
    """Back-fill node/phase state to match a completed sweep run."""
    N = plan.N
    L = plan.L
    root = plan.root
    aggregate = plan.aggregate
    horizon = plan.horizon
    # Per-node sorted aggregation send rounds (ascending), vectorized:
    # own pairs park at int64 max so a column sort pushes them last.
    send_rounds_sorted = None
    if aggregate:
        send_round = (
            plan.base
            + np.repeat(plan.T, N)
            + plan.diameter
            - plan.dist_flat
        ).reshape(len(plan.src), N)
        own_rows = np.arange(len(plan.src))
        send_round = send_round.copy()
        send_round[own_rows, plan.src] = np.iinfo(np.int64).max
        send_rounds_sorted = np.sort(send_round, axis=0)
    s_idx_of = plan.s_idx_of
    for v in range(N):
        node = sim.nodes[v]
        tree = node.tree
        counting = node.counting
        agg = node.aggregation
        dv = plan.depth[v]
        ch = plan.children[v]
        tree.dist = dv
        tree.parent = plan.parent[v]
        tree.settle_round = dv
        tree.children = set(ch)
        tree.children_final = True
        tree._count_sent = True
        tree._child_counts = {c: plan.subtree_size[c] for c in ch}
        tree.num_nodes = N
        if v == root:
            tree.census_round = plan.r_census
        counting.visited = True
        counting._bfs_start_round = None
        counting._token_forward_round = None
        counting._next_child_index = len(ch)
        s_i = s_idx_of[v]
        counting.own_start_time = int(plan.T[s_i]) if s_i >= 0 else None
        counting._done_reported = True
        counting._child_done = {c: plan.subtree_ecc[c] for c in ch}
        if v == root:
            counting.dfs_complete_round = plan.dfs_complete
            counting.counting_result = (plan.diameter, plan.t_max, plan.base)
            counting.result_round = plan.r_result
            node._dfs_started = True
        agg.armed = True
        agg.diameter = plan.diameter
        agg.max_start_time = plan.t_max
        agg.base = plan.base
        agg._horizon = horizon
        agg._schedule = {}
        if aggregate:
            # A source column carries its own pair parked at the int64
            # sentinel (sorted last); every other column is all real.
            n_real = len(plan.src) - (1 if s_i >= 0 else 0)
            agg._send_rounds = [
                int(x) for x in send_rounds_sorted[:n_real, v]
            ]
            agg._send_cursor = n_real  # every scheduled send fired
            agg.betweenness_raw = _lf(
                plan.bet_m[v], plan.bet_e[v], L, Rounding.FLOOR
            )
            agg.finished_round = horizon + 1
        else:
            agg._send_rounds = []
            agg._send_cursor = 0
            agg.betweenness_raw = node.arith.psi_zero()
            agg.finished_round = None
        agg.finished = True
        node.done = True
        if node.telemetry is not None:
            node._phase_cursor = 4 if aggregate else 3
        ledger = _BulkLedger(
            v,
            lambda led, _plan=plan: _fill_ledger(_plan, led),
            lambda _plan=plan, _v=v: _plan_storage_summary(_plan, _v),
        )
        node.ledger = ledger
        counting.ledger = ledger
        agg.ledger = ledger


def _emit_phase_marks(sim, plan: _Plan) -> None:
    """Emit the root's telemetry phase marks, sweep-identically."""
    telemetry = sim.nodes[plan.root].telemetry
    if telemetry is None:
        return
    telemetry.phase_begin("tree_build", 0)
    telemetry.phase_begin("counting", plan.r_census)
    telemetry.phase_begin("diameter_broadcast", plan.r_result)
    telemetry.phase_begin("aggregation", plan.base)
    if plan.aggregate:
        telemetry.phase_end(plan.horizon + 1)


# ---------------------------------------------------------------------------
# orchestration
# ---------------------------------------------------------------------------
def _compute(sim) -> _Plan:
    """Derive the complete plan: schedule, arrays, sends, results."""
    graph = sim.graph
    N = graph.num_nodes
    node0 = sim.nodes[0]
    config = node0.config
    arith = node0.arith
    plan = _Plan()
    plan.N = N
    plan.L = arith.precision
    plan.aggregate = config.aggregate
    plan.root = next(
        v for v in range(N) if sim.nodes[v].tree.is_root
    )
    indptr, indices, deg = _csr(graph)
    depth, parent, children = tree_schedule(graph, plan.root)
    plan.depth = depth
    plan.parent = parent
    plan.children = children
    plan.depth_max = max(depth)
    plan.census_send, plan.r_census, plan.subtree_size = census_schedule(
        depth, children, plan.root
    )
    plan.first_visit, token_sends, plan.dfs_complete = dfs_token_schedule(
        children, parent, plan.root, plan.r_census,
        _SLOT_TOKEN_DELAY, _SLOT_TOKEN_BACK,
    )
    if config.sources is None:
        src_list = list(range(N))
    else:
        src_list = sorted(config.sources)
    S = len(src_list)
    plan.src = np.asarray(src_list, dtype=np.int64)
    plan.s_idx_of = np.full(N, -1, dtype=np.int64)
    plan.s_idx_of[plan.src] = np.arange(S, dtype=np.int64)
    plan.T = np.asarray(
        [plan.first_visit[s] + 1 for s in src_list], dtype=np.int64
    )

    level_rows, settled = _batched_bfs(plan, indptr, indices, deg)
    if level_rows:
        qs_all = np.concatenate([q for q, _ in level_rows])
        ps_all = np.concatenate([p for _, p in level_rows])
    else:  # pragma: no cover - N >= 2 and connected always yields levels
        qs_all = np.empty(0, dtype=np.int64)
        ps_all = np.empty(0, dtype=np.int64)
    row_order = np.lexsort((ps_all, qs_all))
    plan.pair_rows = qs_all[row_order]
    plan.pred_rows = ps_all[row_order]
    plan.pred_indptr = np.zeros(S * N + 1, dtype=np.int64)
    plan.pred_indptr[1:] = np.cumsum(
        np.bincount(plan.pair_rows, minlength=S * N)
    )

    # Completion convergecast: eccentricities, done-report rounds, and
    # the root's counting result.
    dist2d = plan.dist_flat.reshape(S, N)
    ecc = dist2d.max(axis=0)
    plan.ecc = [int(x) for x in ecc]
    bottom_up = sorted(range(N), key=depth.__getitem__, reverse=True)
    subtree_ecc = [0] * N
    for v in bottom_up:
        e = int(ecc[v])
        for c in children[v]:
            if subtree_ecc[c] > e:
                e = subtree_ecc[c]
        subtree_ecc[v] = e
    plan.subtree_ecc = subtree_ecc
    last_settle = (plan.T[:, None] + dist2d).max(axis=0)
    all_sources = config.sources is None
    done_send = [0] * N
    for v in bottom_up:
        r = depth[v] + 2  # children_final
        if all_sources:
            # num_nodes (hence the expected ledger size) is known to the
            # root at the census and to others when the announce arrives.
            known = plan.r_census if v == plan.root else (
                plan.r_census + depth[v]
            )
            if known > r:
                r = known
        ls = int(last_settle[v])
        if ls > r:
            r = ls
        for c in children[v]:
            if done_send[c] + 1 > r:
                r = done_send[c] + 1
        done_send[v] = r
    plan.done_send = done_send
    plan.r_result = done_send[plan.root]
    plan.diameter = subtree_ecc[plan.root]
    plan.t_max = int(plan.T.max())
    plan.base = plan.r_result + plan.diameter + 1
    plan.horizon = plan.base + plan.t_max + plan.diameter
    if plan.aggregate:
        plan.rounds = plan.horizon + 2
        plan.done_round = [plan.horizon + 1] * N
        _psi_recursion(plan, config, level_rows, settled)
        _betweenness_fold(plan)
    else:
        # Counting-only runs (distributed APSP): every node halts the
        # round its AggStart arrives; the last delivery reaches the
        # deepest leaves at r_result + depth_max.
        plan.rounds = plan.r_result + plan.depth_max + 1
        plan.done_round = [plan.r_result + depth[v] for v in range(N)]
        plan.psi_m = plan.psi_e = None
        plan.val_m = plan.val_e = None
        plan.bet_m = plan.bet_e = None

    _send_inventory(plan, sim, indptr, indices, deg, token_sends)
    return plan


def run_bulk(sim):
    """Execute ``sim`` with the bulk engine; returns the populated stats.

    The caller (:meth:`Simulator.run`) has already resolved capability
    via the dispatcher; this function assumes the protocol envelope
    (stock nodes, one root, shared L-float arithmetic, no faults, a
    connected graph).
    """
    telemetry = sim.telemetry
    profiler = telemetry.profiler if telemetry is not None else None
    started = perf_counter()
    plan = _compute(sim)
    grouping = None
    plan.violation = None
    if sim.strict:
        grouping = _group_sends(
            plan.N, plan.r_col, plan.snd_col, plan.tgt_col,
            plan.bits_col, plan.rank,
        )
        plan.violation = _first_violation(plan, grouping, sim.bit_budget)
    if profiler is not None:
        profiler.add("engine.bulk.plan", perf_counter() - started)
        profiler.bump("engine.bulk.sends", int(plan.r_col.size))
    needs_replay = (
        sim.tracer is not None
        or sim.frame_audit
        or (
            telemetry is not None
            and (
                telemetry.wants_sends
                or getattr(telemetry, "wants_rounds", True)
            )
        )
        or plan.violation is not None
        or plan.rounds > sim.max_rounds
    )
    started = perf_counter()
    if needs_replay:
        _replay(sim, plan)  # raises on violation / round-limit overrun
        if profiler is not None:
            profiler.add("engine.bulk.replay", perf_counter() - started)
    else:
        grouping = populate_stats(
            sim.stats, plan.rounds, plan.N,
            plan.r_col, plan.snd_col, plan.tgt_col, plan.bits_col, plan.rank,
            grouping=grouping,
        )
        _sampling_audit(sim, plan, grouping)
        if profiler is not None:
            profiler.add("engine.bulk.stats", perf_counter() - started)
    _emit_phase_marks(sim, plan)
    _populate_nodes(sim, plan)
    sim.stats.rounds = plan.rounds
    return sim.stats
