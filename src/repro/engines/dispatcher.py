"""Capability-probing backend dispatcher for ``engine="auto"``.

The dispatcher answers one question: *which engine should run this
simulation?*  Engines are ordered fastest-first in
:data:`ENGINE_PREFERENCE`; each has a capability probe, and ``"auto"``
resolves to the first engine whose probe passes.

* ``bulk`` — the vectorized structure-of-arrays engine.  Requires numpy
  and a run inside its protocol envelope: every node is the stock
  :class:`~repro.core.node.BetweennessNode`, the arithmetic is an
  L-float context with ``L <= 30`` (so batched mantissa products fit in
  int64 lanes), no fault injection, and at least two nodes.
* ``event`` — pure Python, active-set scheduling; runs any protocol
  honoring the wake contract.  The fallback when bulk is not capable.
* ``sweep`` — pure Python, lockstep reference; runs anything.  Kept
  last in the chain for completeness (``event`` never refuses a run,
  so auto-resolution stops there in practice).

Explicitly requesting ``engine="bulk"`` for a run outside the envelope
raises :class:`~repro.exceptions.EngineCapabilityError`; ``"auto"``
logs a one-line note (logger ``repro.engines``) and falls back.

The numpy probe result is cached process-wide; tests that fake numpy's
absence (e.g. ``monkeypatch.setitem(sys.modules, "numpy", None)``) must
call :func:`reset_probe` around the patch.
"""

from __future__ import annotations

import importlib
import logging
from typing import NamedTuple, Optional, Tuple

from repro.exceptions import EngineCapabilityError

logger = logging.getLogger("repro.engines")


class EngineDecision(NamedTuple):
    """Why the dispatcher picked ``resolved`` for a ``requested`` engine.

    ``reason`` is human-readable: the bulk probe's first failed check
    when the run fell back, or a short confirmation when bulk was
    chosen.  Threaded into telemetry meta rows and ``repro report`` so
    history records explain the choice.
    """

    requested: str
    resolved: str
    reason: str

    def as_dict(self):
        return {
            "engine_requested": self.requested,
            "engine": self.resolved,
            "engine_reason": self.reason,
        }

#: Auto-resolution order, fastest first.
ENGINE_PREFERENCE = ("bulk", "event", "sweep")

#: Largest L-float precision the int64 kernels support: mantissa
#: products need 2L bits and sticky-capped additions 2L + 2, so L = 30
#: keeps every intermediate below 2**62.
MAX_BULK_PRECISION = 30

_numpy_probe: Optional[bool] = None


def numpy_available() -> bool:
    """True if numpy can be imported (result cached process-wide)."""
    global _numpy_probe
    if _numpy_probe is None:
        try:
            importlib.import_module("numpy")
        except ImportError:
            _numpy_probe = False
        else:
            _numpy_probe = True
    return _numpy_probe


def reset_probe() -> None:
    """Forget the cached numpy probe (for tests that fake its absence)."""
    global _numpy_probe
    _numpy_probe = None


def _connected(graph) -> bool:
    """BFS reachability check from node 0 (O(N + E), run once per probe)."""
    n = graph.num_nodes
    seen = bytearray(n)
    seen[0] = 1
    frontier = [0]
    count = 1
    while frontier:
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if not seen[u]:
                    seen[u] = 1
                    count += 1
                    nxt.append(u)
        frontier = nxt
    return count == n


def bulk_capability(simulator) -> Tuple[bool, str]:
    """Probe whether the bulk engine can run ``simulator``.

    Returns ``(True, "")`` when capable, else ``(False, reason)`` with a
    human-readable reason for the first failed check.
    """
    # The protocol registry is the first gate: the bulk engine encodes
    # one specific send schedule, so only protocols that declare
    # themselves bulk-capable (the stock hua-bc) may pass.  A rival
    # protocol (e.g. cfp-bc) falls back by name; an unregistered custom
    # node algorithm falls back via the node-class check below.
    protocol = getattr(simulator, "protocol", None)
    if protocol is not None and not protocol.bulk_capable:
        return False, (
            "protocol {!r} is not bulk-capable (the closed-form array "
            "program encodes the stock schedule only)".format(protocol.name)
        )
    if not numpy_available():
        return False, "numpy is not installed (pip install 'repro[fast]')"
    if simulator.faults is not None:
        return False, "fault injection requires per-message delivery"
    if simulator.graph.num_nodes < 2:
        return False, "bulk vectorization needs at least two nodes"
    # Deferred import: repro.core pulls in the whole protocol stack and
    # repro.congest.simulator imports this module lazily.
    from repro.arithmetic.context import LFloatArithmetic
    from repro.core.node import BetweennessNode

    expected_class = (
        protocol.node_class if protocol is not None else BetweennessNode
    )
    roots = 0
    arith = None
    config = None
    for node in simulator.nodes:
        if type(node) is not expected_class:
            return False, (
                "node {} is a {}, not the stock BetweennessNode".format(
                    node.node_id, type(node).__name__
                )
            )
        if arith is None:
            arith = node.arith
        elif node.arith is not arith:
            return False, "nodes disagree on the arithmetic context"
        if config is None:
            config = node.config
        elif node.config is not config:
            return False, "nodes disagree on the protocol configuration"
        if node.tree.is_root:
            roots += 1
    if arith is None or not isinstance(arith, LFloatArithmetic):
        return False, (
            "arithmetic {!r} is not an L-float context (exact-mode values "
            "have data-dependent widths the array lanes cannot carry)".format(
                getattr(arith, "name", arith)
            )
        )
    if not 2 <= arith.precision <= MAX_BULK_PRECISION:
        return False, (
            "L-float precision {} outside the int64 kernel range "
            "[2, {}]".format(arith.precision, MAX_BULK_PRECISION)
        )
    if roots != 1:
        return False, "expected exactly one tree root, found {}".format(roots)
    if config is not None and config.sources is not None:
        n = simulator.graph.num_nodes
        if any(not 0 <= s < n for s in config.sources):
            return False, "config.sources references nodes outside the graph"
    if not _connected(simulator.graph):
        return False, (
            "graph is not connected (the closed-form schedule assumes "
            "every node is reachable from the root)"
        )
    return True, ""


def shard_capability(simulator) -> Tuple[bool, str]:
    """Probe whether the sharded multi-process runtime can run ``simulator``.

    The shard runtime forks workers (node factories are closures, so
    the pre-built nodes must be inherited copy-on-write), collects
    results over pipes, and reconciles node state back into this
    process at run end.  That reconciliation is defined for the
    :class:`~repro.core.node.BetweennessNode` surface (ledger, sent
    sources, aggregation/counting outputs) — which both registered
    protocols share — and cannot replay per-send hooks (tracers, send
    monitors) that fire inside child processes.
    """
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return False, (
            "the 'fork' start method is unavailable on this platform "
            "(workers must inherit the pre-built nodes)"
        )
    if simulator.graph.num_nodes < 1:
        return False, "sharding needs at least one node"
    if simulator.tracer is not None:
        return False, (
            "a tracer records per-delivery events inside worker "
            "processes, where they would be lost"
        )
    telemetry = simulator.telemetry
    if telemetry is not None and getattr(telemetry, "wants_sends", False):
        return False, (
            "a send-level monitor observes messages inside worker "
            "processes, where its state would be lost"
        )
    faults = simulator.faults
    if faults is not None and getattr(faults, "tracer", None) is not None:
        return False, (
            "the fault injector carries a tracer; its per-fault records "
            "would be lost inside worker processes"
        )
    from repro.core.node import BetweennessNode

    config = None
    for node in simulator.nodes:
        inner = getattr(node, "inner", node)
        if not isinstance(inner, BetweennessNode):
            return False, (
                "node {} is a {}; run-end state reconciliation is "
                "defined for the BetweennessNode surface only".format(
                    node.node_id, type(inner).__name__
                )
            )
        if config is None:
            config = inner.config
    if config is not None and not config.aggregate:
        return False, (
            "counting-only runs (distributed APSP) keep their distance "
            "ledgers sharded across workers; the single-process result "
            "surface cannot be reassembled"
        )
    return True, ""


def decide_engine(requested: str, simulator) -> EngineDecision:
    """Resolve ``"auto"`` (or validate ``"bulk"``) against the probes.

    Called by :class:`~repro.congest.simulator.Simulator` after its
    nodes are built.  Returns the concrete engine name plus the reason
    for the choice; explicit ``sweep``/``event`` requests pass through
    without probing.
    """
    if requested in ("sweep", "event"):
        return EngineDecision(requested, requested, "explicitly requested")
    if requested == "shard":
        # Never auto-selected: multi-process execution is an explicit
        # opt-in (it forks the interpreter), so "shard" only validates.
        capable, reason = shard_capability(simulator)
        if not capable:
            raise EngineCapabilityError("shard", reason)
        return EngineDecision(
            "shard",
            "shard",
            "explicitly requested ({} workers)".format(simulator.workers),
        )
    capable, reason = bulk_capability(simulator)
    if requested == "bulk":
        if not capable:
            raise EngineCapabilityError("bulk", reason)
        return EngineDecision("bulk", "bulk", "explicitly requested")
    # requested == "auto": walk the preference chain.
    if capable:
        logger.info("engine=auto resolved to 'bulk' (numpy batch backend)")
        return EngineDecision(
            "auto", "bulk", "capability probe passed (numpy batch backend)"
        )
    for fallback in ENGINE_PREFERENCE[1:]:
        logger.info(
            "engine=auto resolved to %r (bulk unavailable: %s)",
            fallback,
            reason,
        )
        return EngineDecision(
            "auto", fallback, "bulk unavailable: {}".format(reason)
        )
    raise EngineCapabilityError(requested, "no capable engine")  # pragma: no cover


def resolve_engine(requested: str, simulator) -> str:
    """Backward-compatible shim: the resolved name of :func:`decide_engine`."""
    return decide_engine(requested, simulator).resolved
