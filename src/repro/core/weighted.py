"""Distributed weighted betweenness via virtual-node subdivision.

The paper's conclusion: "for weighted graphs, there are no efficient
distributed algorithms for computing betweenness centralities.  But the
idea in [16] which adds virtual nodes in the weighted edges might also
work".  This module realizes that idea:

1. subdivide each weight-w edge into w unit edges
   (:func:`repro.graphs.weighted.subdivide`);
2. run the unweighted protocol on the subdivision with the virtual
   nodes excluded from both the **source set** (they root no BFS — only
   real-source dependencies exist in the weighted problem) and the
   **target set** (they contribute no ``1/sigma`` unit term — a pair
   with a virtual endpoint is not a pair of the weighted graph);
3. read the betweenness of the real nodes directly off the run.

Correctness: the subdivision preserves distances, path counts, and
real-node path membership between real pairs, so the masked recursion
computes exactly ``sum over real s != t != v of sigma_st(v)/sigma_st``
— the weighted CB.  The round cost is O(N') where N' = N + sum(w - 1),
the price the conclusion anticipates for the virtual-node trick.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.congest.simulator import DEFAULT_CONGEST_FACTOR
from repro.congest.stats import SimulationStats
from repro.core.config import ProtocolConfig
from repro.core.pipeline import ModeSpec, distributed_betweenness
from repro.exceptions import GraphNotConnectedError
from repro.graphs.weighted import (
    Subdivision,
    WeightedGraph,
    is_weighted_connected,
    subdivide,
)


@dataclass
class WeightedBCResult:
    """Output of :func:`distributed_weighted_betweenness`."""

    weighted_graph: WeightedGraph
    subdivision: Subdivision
    #: real node -> weighted CB (floats; exact rationals in
    #: ``betweenness_exact`` under exact arithmetic).
    betweenness: Dict[int, float]
    betweenness_exact: Optional[Dict[int, Fraction]]
    #: weighted diameter, as discovered by the protocol on the
    #: subdivision (= max weighted distance between real nodes is
    #: bounded by this; equals the weighted diameter when the deepest
    #: point of every chain is shallower — for unit accuracy compare
    #: with graphs.weighted.weighted_diameter).
    subdivision_diameter: int
    rounds: int
    stats: SimulationStats
    arithmetic: str


def distributed_weighted_betweenness(
    graph: WeightedGraph,
    arithmetic: ModeSpec = "exact",
    root: int = 0,
    strict: bool = True,
    congest_factor: int = DEFAULT_CONGEST_FACTOR,
    engine: str = "auto",
    telemetry=None,
    frame_audit: bool = False,
    workers: int = 1,
    partitioner: str = "greedy",
) -> WeightedBCResult:
    """Betweenness of every node of a weighted graph, distributively.

    Parameters mirror :func:`repro.core.distributed_betweenness`; the
    graph must be connected and carry positive integer weights.
    ``telemetry`` observes the run on the *subdivision* (virtual nodes
    included), and its ``finalize_run`` sees the inner unweighted
    result.

    Examples
    --------
    >>> from repro.graphs.weighted import WeightedGraph
    >>> wg = WeightedGraph(3, [(0, 1, 2), (1, 2, 1), (0, 2, 5)])
    >>> result = distributed_weighted_betweenness(wg)
    >>> result.betweenness_exact[1]
    Fraction(1, 1)
    """
    if not is_weighted_connected(graph):
        raise GraphNotConnectedError(
            "weighted graph {!r} is not connected".format(graph.name)
        )
    subdivision = subdivide(graph)
    config = ProtocolConfig(
        sources=subdivision.real_nodes,
        targets=subdivision.real_nodes,
    )
    run = distributed_betweenness(
        subdivision.graph,
        arithmetic=arithmetic,
        root=root,
        strict=strict,
        congest_factor=congest_factor,
        config=config,
        engine=engine,
        telemetry=telemetry,
        frame_audit=frame_audit,
        workers=workers,
        partitioner=partitioner,
    )
    real = sorted(subdivision.real_nodes)
    betweenness = {v: run.betweenness[v] for v in real}
    exact = None
    if run.betweenness_exact is not None:
        exact = {v: run.betweenness_exact[v] for v in real}
    return WeightedBCResult(
        weighted_graph=graph,
        subdivision=subdivision,
        betweenness=betweenness,
        betweenness_exact=exact,
        subdivision_diameter=run.diameter,
        rounds=run.rounds,
        stats=run.stats,
        arithmetic=run.arithmetic,
    )
