"""The paper's contribution: the O(N)-round distributed BC algorithm."""

from repro.core.aggregation import AggregationPhase
from repro.core.config import UNIT_BETWEENNESS, UNIT_STRESS, ProtocolConfig
from repro.core.counting import CountingPhase
from repro.core.messages import (
    AggStart,
    AggValue,
    Announce,
    BfsWave,
    DfsToken,
    DoneReport,
    SubtreeCount,
    TreeJoin,
    TreeWave,
)
from repro.core.node import BetweennessNode, make_node_factory
from repro.core.pipeline import (
    CompletenessReport,
    DistributedAPSPResult,
    DistributedBCResult,
    DistributedStressResult,
    SampledBCResult,
    distributed_apsp,
    distributed_betweenness,
    distributed_closeness,
    distributed_graph_centrality,
    distributed_sampled_betweenness,
    distributed_stress,
)
from repro.core.weighted import (
    WeightedBCResult,
    distributed_weighted_betweenness,
)
from repro.core.records import NodeLedger, SourceRecord
from repro.core.roundmodel import RoundModel, predict_rounds, rounds_upper_bound
from repro.core.schedule import (
    PhaseSchedule,
    bfs_start_times,
    bfs_tree_children,
    count_collisions,
    dfs_preorder,
    expected_phase_schedule,
    figure1_tables,
    naive_start_times,
    sending_times,
    tree_walk_lengths,
    verify_separation,
)
from repro.core.tree import TreePhase

__all__ = [
    "AggStart",
    "AggValue",
    "AggregationPhase",
    "Announce",
    "BetweennessNode",
    "BfsWave",
    "CompletenessReport",
    "CountingPhase",
    "DfsToken",
    "DistributedAPSPResult",
    "DistributedBCResult",
    "DistributedStressResult",
    "PhaseSchedule",
    "ProtocolConfig",
    "SampledBCResult",
    "UNIT_BETWEENNESS",
    "UNIT_STRESS",
    "WeightedBCResult",
    "DoneReport",
    "NodeLedger",
    "RoundModel",
    "predict_rounds",
    "rounds_upper_bound",
    "SourceRecord",
    "SubtreeCount",
    "TreeJoin",
    "TreePhase",
    "TreeWave",
    "bfs_start_times",
    "bfs_tree_children",
    "count_collisions",
    "dfs_preorder",
    "distributed_apsp",
    "distributed_betweenness",
    "distributed_closeness",
    "distributed_graph_centrality",
    "distributed_sampled_betweenness",
    "distributed_stress",
    "distributed_weighted_betweenness",
    "expected_phase_schedule",
    "figure1_tables",
    "make_node_factory",
    "naive_start_times",
    "sending_times",
    "tree_walk_lengths",
    "verify_separation",
]
