"""The aggregation phase: Algorithm 3 of the paper.

Every node u holds, for each source s, the record
``(s, T_s, d(s,u), sigma_su, P_s(u))`` from the counting phase.  The
phase opens when the root's :class:`AggStart` broadcast fixes the
diameter D, the latest start time T_max, and a global round ``base``.
Node u then sends, at round

    ``base + T_s + D - d(s, u)``        (line 3: T_s(u) = T_s + D - d(s,u))

the value ``1/sigma_su + psi_s(u)`` to every predecessor in P_s(u)
(line 12), where psi_s(u) has accumulated the same-shaped values
received from u's shortest-path descendants (lines 8–9, Eq. 14).
Because descendants of u in BFS(s) sit one unit of distance further,
they send exactly one round before u — their values arrive precisely
when u is about to send, and the recursion telescopes without any
waiting logic.

Lemma 4 guarantees the schedule never asks a node to send values for
two different sources in the same round; this implementation *checks*
that claim when building the schedule and raises
:class:`~repro.exceptions.ProtocolError` on violation.

After round ``base + T_max + D`` no message can be in flight; each node
then locally computes delta_s·(u) = psi_s(u) * sigma_su (line 17) and
sums over sources into its raw betweenness (line 18).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.arithmetic.context import ArithmeticContext
from repro.congest.node import RoundContext
from repro.core.config import UNIT_STRESS, ProtocolConfig
from repro.core.messages import AggStart, AggValue
from repro.core.records import NodeLedger
from repro.core.tree import TreePhase
from repro.exceptions import ProtocolError


class AggregationPhase:
    """Per-node state machine for Algorithm 3.

    The recursion is parameterized by the protocol configuration (see
    :mod:`repro.core.config`): the default unit term ``1/sigma_su``
    computes betweenness; ``unit = "stress"`` seeds with 1 instead and
    the same telescoping computes stress centrality; a restricted
    target set masks the unit term of excluded nodes (used by the
    weighted-graph subdivision, whose virtual nodes must not count as
    pair endpoints).
    """

    def __init__(
        self,
        node_id: int,
        tree: TreePhase,
        ledger: NodeLedger,
        ctx_arith: ArithmeticContext,
        config: ProtocolConfig = ProtocolConfig(),
    ):
        self.node_id = node_id
        self.tree = tree
        self.ledger = ledger
        self.arith = ctx_arith
        self.config = config
        self.armed = False
        self.diameter: Optional[int] = None
        self.max_start_time: Optional[int] = None
        self.base: Optional[int] = None
        #: last round with in-flight aggregation traffic (set by arm()):
        #: ``base + T_max + D``.  The final local computation fires in
        #: the first round past it.
        self._horizon: Optional[int] = None
        #: send schedule: absolute round -> ledger row (unique by Lemma 4).
        self._schedule: Dict[int, int] = {}
        #: ascending send rounds with a cursor, for O(1) next-wake lookup.
        self._send_rounds: List[int] = []
        self._send_cursor = 0
        #: raw output: sum over sources s != u of delta_s·(u), in the
        #: pipeline's arithmetic (Fraction or LFloat).  The pipeline
        #: halves it for the undirected convention.
        self.betweenness_raw: Optional[Any] = None
        self.finished = False
        #: round in which the final local computation ran — the
        #: protocol-exact end of the aggregation phase, consumed by the
        #: telemetry phase spans (None if aggregation was disabled).
        self.finished_round: Optional[int] = None

    #: human name of the collision-freedom invariant the schedule rests
    #: on — interpolated into the ProtocolError when arm() catches two
    #: sources claiming the same send round.  Rival protocols override
    #: this together with :meth:`_send_round_for`.
    schedule_invariant = "Lemma 4"

    def _send_round_for(self, start_time: int, dist: int) -> int:
        """Line 3: the absolute send round for a (T_s, d(s,u)) record.

        ``base + T_s + D − d(s, u)`` — deeper nodes send earlier, so a
        node's shortest-path descendants deliver exactly one round
        before its own send.  The schedule hook is the single point a
        rival protocol overrides to re-time the backward phase (see
        :mod:`repro.protocols.cfp`).
        """
        return self.base + start_time + self.diameter - dist

    # ------------------------------------------------------------------
    def arm(self, start: AggStart) -> None:
        """Open the phase: fix (D, T_max, base) and build the schedule."""
        if self.armed:
            raise ProtocolError(
                "node {} received AggStart twice".format(self.node_id)
            )
        self.armed = True
        self.diameter = start.diameter
        self.max_start_time = start.max_start_time
        self.base = start.base
        self._horizon = start.base + start.max_start_time + start.diameter
        if not self.config.aggregate:
            self.betweenness_raw = self.arith.psi_zero()
            self.finished = True
            return
        ledger = self.ledger
        psi_zero = self.arith.psi_zero
        psi_col = ledger.psi_col
        source_col = ledger.source_col
        start_col = ledger.start_col
        dist_col = ledger.dist_col
        schedule = self._schedule
        send_round_for = self._send_round_for
        node_id = self.node_id
        for row in range(len(ledger)):
            psi_col[row] = psi_zero()
            source = source_col[row]
            if source == node_id:
                continue  # the source itself never sends (P_s(s) is empty)
            send_round = send_round_for(start_col[row], dist_col[row])
            other = schedule.get(send_round)
            if other is not None:
                raise ProtocolError(
                    "node {}: sources {} and {} share send round {} — "
                    "{} violated".format(
                        node_id,
                        source_col[other],
                        source,
                        send_round,
                        self.schedule_invariant,
                    )
                )
            schedule[send_round] = row
        self._send_rounds = sorted(schedule)

    def handle_start(
        self, ctx: RoundContext, starts: List[Tuple[int, AggStart]]
    ) -> None:
        """Process and forward the root's AggStart broadcast."""
        if not starts:
            return
        start = starts[0][1]
        self.arm(start)
        for child in self.tree.sorted_children():
            ctx.send(child, AggStart(start.diameter, start.max_start_time, start.base))

    # ------------------------------------------------------------------
    def on_round(
        self,
        ctx: RoundContext,
        values: List[Tuple[int, AggValue]],
    ) -> None:
        """One aggregation round: receive (lines 8–9), send (lines 11–12)."""
        if not self.armed:
            if values:
                raise ProtocolError(
                    "node {} received values before AggStart".format(
                        self.node_id
                    )
                )
            return
        ledger = self.ledger
        if values:
            row_of = ledger.row_of
            psi_col = ledger.psi_col
            psi_add = self.arith.psi_add
            for sender, message in values:
                row = row_of(message.source)
                if row is None or psi_col[row] is None:
                    raise ProtocolError(
                        "node {} got an aggregation value for unknown "
                        "source {}".format(self.node_id, message.source)
                    )
                psi_col[row] = psi_add(psi_col[row], message.value)
        if self._schedule:
            row = self._schedule.pop(ctx.round_number, None)
            if row is not None:
                source = ledger.source_col[row]
                value = self.arith.psi_add(
                    self._unit_term(ledger.sigma_col[row]), ledger.psi_col[row]
                )
                ledger.sent_col[row] = 1
                message = AggValue(source, value)
                for pred in ledger.preds_at(row):
                    ctx.send(pred, message)
        if not self.finished and ctx.round_number > self._horizon:
            self._finish()
            self.finished_round = ctx.round_number

    def next_event(self, round_number: int) -> Optional[int]:
        """Next round at which this phase acts without receiving a message.

        Either the next scheduled value send (a node that is a leaf of
        BFS(s) receives nothing before its send round for s) or the
        first round past the aggregation horizon, where the final local
        betweenness computation fires.  Used by the event engine's wake
        registration.
        """
        if not self.armed or self.finished:
            return None
        rounds = self._send_rounds
        cursor = self._send_cursor
        length = len(rounds)
        while cursor < length and rounds[cursor] <= round_number:
            cursor += 1
        self._send_cursor = cursor
        finish_round = self._horizon + 1
        if cursor < length and rounds[cursor] < finish_round:
            return rounds[cursor]
        return max(finish_round, round_number + 1)

    def _unit_term(self, sigma):
        """The seed of Eq. (14) this node adds when it sends.

        Betweenness: 1/sigma_su.  Stress: 1 (a path continuation).
        Non-target nodes (e.g. subdivision virtual nodes) contribute
        nothing and merely relay the accumulated psi.
        """
        if not self.config.is_target(self.node_id):
            return self.arith.psi_zero()
        if self.config.unit == UNIT_STRESS:
            return self.arith.psi_one()
        return self.arith.reciprocal(sigma)

    # ------------------------------------------------------------------
    def _finish(self) -> None:
        """Line 17–18: the final local betweenness computation, run in
        the first round past the aggregation horizon."""
        arith = self.arith
        dependency = arith.dependency
        psi_add = arith.psi_add
        total = arith.psi_zero()
        node_id = self.node_id
        ledger = self.ledger
        source_col = ledger.source_col
        sigma_col = ledger.sigma_col
        psi_col = ledger.psi_col
        for row in range(len(ledger)):
            if source_col[row] == node_id:
                continue
            total = psi_add(total, dependency(psi_col[row], sigma_col[row]))
        self.betweenness_raw = total
        self.finished = True

    def dependencies(self) -> Dict[int, Any]:
        """Per-source dependencies delta_s·(u) after the phase finished.

        Useful for tests reproducing the paper's Figure 1 walkthrough
        (e.g. delta_{v1·}(v2) = 3).
        """
        out: Dict[int, Any] = {}
        ledger = self.ledger
        source_col = ledger.source_col
        sigma_col = ledger.sigma_col
        psi_col = ledger.psi_col
        for row in range(len(ledger)):
            if source_col[row] == self.node_id or psi_col[row] is None:
                continue
            out[source_col[row]] = self.arith.dependency(
                psi_col[row], sigma_col[row]
            )
        return out
