"""Per-node state records for the distributed algorithm.

Algorithm 2 has every node v accumulate, for each source s, the tuple
``L_v ∋ (s, T_s, d(s, v), sigma_sv, P_s(v))`` — the BFS start time, the
distance, the shortest-path count and the predecessor set.  That tuple
is :class:`SourceRecord`; the per-node collection is the
:class:`NodeLedger`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple


class SourceRecord:
    """One node's knowledge about one BFS source (a row of L_v)."""

    __slots__ = ("source", "start_time", "dist", "sigma", "preds", "psi", "sent")

    def __init__(
        self,
        source: int,
        start_time: int,
        dist: int,
        sigma: Any,
        preds: Tuple[int, ...],
    ):
        self.source = source
        #: T_s — the global round at which s launched its BFS.
        self.start_time = start_time
        #: d(s, v).
        self.dist = dist
        #: sigma_sv in the pipeline's arithmetic (int or LFloat).
        self.sigma = sigma
        #: P_s(v) — the shortest-path predecessors of v w.r.t. s.
        self.preds = tuple(preds)
        #: psi_s(v) accumulator for the aggregation phase (Eq. 14);
        #: initialized lazily by the aggregation handler.
        self.psi: Any = None
        #: True once this node's scheduled Algorithm 3 send for s ran.
        #: By the schedule, every BFS(s) descendant sends strictly
        #: earlier and deliveries precede sends within a round — so a
        #: sent record's psi (and hence delta_s·(v)) is final.  This is
        #: what the fault pipeline's per-source completeness report is
        #: computed from.
        self.sent = False

    def sending_time(self, diameter: int) -> int:
        """T_s(v) = T_s + D − d(s, v), the Algorithm 3 schedule offset."""
        return self.start_time + diameter - self.dist

    def __repr__(self) -> str:
        return (
            "SourceRecord(s={}, Ts={}, d={}, sigma={!r}, preds={})".format(
                self.source, self.start_time, self.dist, self.sigma, self.preds
            )
        )


class NodeLedger:
    """The collection L_v of source records held by one node."""

    def __init__(self, owner: int):
        self.owner = owner
        self._records: Dict[int, SourceRecord] = {}
        #: The record for ``source``, or None if not yet settled.  Bound
        #: directly to ``dict.get``: this is the hottest lookup in the
        #: protocol (every BFS-wave delivery consults it), and the bound
        #: C method skips a Python-level frame per call.
        self.get = self._records.get

    def add(self, record: SourceRecord) -> None:
        """Insert a newly settled source row (must be new)."""
        if record.source in self._records:
            raise KeyError(
                "node {} already has a record for source {}".format(
                    self.owner, record.source
                )
            )
        self._records[record.source] = record

    def __contains__(self, source: int) -> bool:
        return source in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SourceRecord]:
        return iter(self._records.values())

    def sources(self) -> List[int]:
        """All settled sources, sorted."""
        return sorted(self._records)

    def eccentricity(self) -> int:
        """max_s d(s, v) over settled sources (v's eccentricity once full)."""
        return max((r.dist for r in self._records.values()), default=0)

    def max_start_time(self) -> int:
        """max_s T_s over settled sources."""
        return max((r.start_time for r in self._records.values()), default=0)

    def distances(self) -> Dict[int, int]:
        """Map source -> d(s, v): this node's row of the APSP matrix."""
        return {s: r.dist for s, r in self._records.items()}

    def predecessor_links(self) -> int:
        """Total predecessor pointers stored (Σ_s |P_s(v)|).

        Bounded by N * deg(v): the dominant term of the node's local
        space, the distributed analogue of Brandes' O(N + M) footprint
        (here the *per-node* state is O(N * deg), i.e. O(M) amortized
        per source across the network).
        """
        return sum(len(r.preds) for r in self._records.values())

    def storage_summary(self) -> Dict[str, int]:
        """Per-node space profile: records, predecessor links, fields.

        ``fields`` counts the scalar slots (source, T_s, d, sigma) —
        4 per record — so total words ≈ fields + predecessor links.
        """
        records = len(self._records)
        links = self.predecessor_links()
        return {
            "records": records,
            "pred_links": links,
            "fields": 4 * records,
            "words": 4 * records + links,
        }

    def __repr__(self) -> str:
        return "NodeLedger(owner={}, sources={})".format(
            self.owner, len(self._records)
        )
