"""Per-node state records for the distributed algorithm.

Algorithm 2 has every node v accumulate, for each source s, the tuple
``L_v ∋ (s, T_s, d(s, v), sigma_sv, P_s(v))`` — the BFS start time, the
distance, the shortest-path count and the predecessor set.  The
per-node collection is the :class:`NodeLedger`.

The ledger is **array-backed**: one machine-int column per scalar field
(source, T_s, d), object columns for sigma/psi, a byte column for the
sent flag, and the predecessor sets packed CSR-style into a single flat
int array with an offsets column.  A full ledger on an N-node graph is
a dict plus a handful of flat buffers instead of N tracked Python
objects holding N tuples — the buffers are invisible to the cyclic
garbage collector, so full-graph runs no longer drown in GC scans of
Θ(N²) ledger objects (the reason PR 1 had to pause the collector).

Two access levels coexist:

* **Row level** (hot paths): :meth:`NodeLedger.row_of` maps a source to
  its row index (bound directly to ``dict.get`` — the hottest lookup in
  the protocol, consulted on every BFS-wave delivery), and the public
  column attributes (``dist_col``, ``sigma_col``, ``psi_col``, …) are
  indexed by that row.
* **Record level** (tests, analysis, compatibility):
  :meth:`NodeLedger.get` and iteration yield :class:`LedgerRow` views —
  lightweight two-slot proxies with the same attributes the old
  per-record objects had (``source``, ``start_time``, ``dist``,
  ``sigma``, ``preds``, ``psi``, ``sent``, ``sending_time``).
  :class:`SourceRecord` remains as the detached value type accepted by
  :meth:`NodeLedger.add`.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Tuple


_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _pack_object_column(col: List[Any]) -> Any:
    """Flatten a sigma/psi column into machine arrays, if its elements
    allow it — all-int (64-bit) or all-LFloat with one shared precision
    and rounding mode, with ``None`` holes tracked in a bitmap.
    Returns ``None`` when the column is heterogeneous (exact-arithmetic
    big integers, Fractions, ...) and must pickle element by element.
    """
    if not col:
        return None
    from repro.arithmetic.lfloat import LFloat

    length = len(col)
    sample = None
    for sample in col:
        if sample is not None:
            break
    if sample is None:
        return ("none", length, b"", None, None, None, None)
    # Hot path: these columns are packed on every checkpoint, so each
    # extra pass over 10^5 rows per snapshot shows up in the overhead
    # gate.  Dense columns (no ``None`` holes) go straight into the
    # value arrays via list comprehensions — a hole raises
    # AttributeError (``None._m``) and falls back to the bitmap walk.
    # Validation stays per-element (a stray precision or rounding mode
    # would round-trip wrong) but avoids hashing: Enum.__hash__ is
    # Python-level and was once the hottest line of a checkpoint.
    if type(sample) is LFloat:
        precision = sample._L
        mode = sample._mode
        if precision > 62:
            return None
        try:
            first = array("q", [x._m for x in col])
            second = array("q", [x._e for x in col])
            if not all([
                type(x) is LFloat and x._L == precision
                and x._mode is mode
                for x in col
            ]):
                return None
            return ("lfloat", length, b"", first, second, precision, mode)
        except AttributeError:
            pass
        holes = bytearray((length + 7) // 8)
        for i, x in enumerate(col):
            if x is None:
                holes[i >> 3] |= 1 << (i & 7)
        try:
            first = array("q", [0 if x is None else x._m for x in col])
            second = array("q", [0 if x is None else x._e for x in col])
        except AttributeError:
            return None
        if not all([
            x is None or (
                type(x) is LFloat and x._L == precision
                and x._mode is mode
            )
            for x in col
        ]):
            return None
        return (
            "lfloat", length, bytes(holes), first, second, precision, mode
        )
    if type(sample) is int:
        if not all([
            x is None or (
                type(x) is int and _I64_MIN <= x <= _I64_MAX
            )
            for x in col
        ]):
            return None
        try:
            first = array("q", [x for x in col])
            return ("int", length, b"", first, None, None, None)
        except TypeError:
            pass
        holes = bytearray((length + 7) // 8)
        for i, x in enumerate(col):
            if x is None:
                holes[i >> 3] |= 1 << (i & 7)
        first = array("q", [0 if x is None else x for x in col])
        return ("int", length, bytes(holes), first, None, None, None)
    return None


def _unpack_object_column(packed: Any) -> List[Any]:
    kind, length, bitmap, first, second, precision, mode = packed
    if kind == "none":
        return [None] * length
    if kind == "int":
        col: List[Any] = list(first)
    else:
        from repro.arithmetic.lfloat import LFloat

        col = [
            LFloat(m, e, precision, mode) for m, e in zip(first, second)
        ]
    if bitmap:
        for i in range(length):
            if bitmap[i >> 3] & (1 << (i & 7)):
                col[i] = None
    return col


class SourceRecord:
    """One node's knowledge about one BFS source (a detached row of L_v).

    The ledger stores rows in columns, not as these objects; this class
    survives as the value type for :meth:`NodeLedger.add` and for tests
    or callers that want a free-standing record.
    """

    __slots__ = ("source", "start_time", "dist", "sigma", "preds", "psi", "sent")

    def __init__(
        self,
        source: int,
        start_time: int,
        dist: int,
        sigma: Any,
        preds: Tuple[int, ...],
    ):
        self.source = source
        #: T_s — the global round at which s launched its BFS.
        self.start_time = start_time
        #: d(s, v).
        self.dist = dist
        #: sigma_sv in the pipeline's arithmetic (int or LFloat).
        self.sigma = sigma
        #: P_s(v) — the shortest-path predecessors of v w.r.t. s.
        self.preds = tuple(preds)
        #: psi_s(v) accumulator for the aggregation phase (Eq. 14);
        #: initialized lazily by the aggregation handler.
        self.psi: Any = None
        #: True once this node's scheduled Algorithm 3 send for s ran.
        self.sent = False

    def sending_time(self, diameter: int) -> int:
        """T_s(v) = T_s + D − d(s, v), the Algorithm 3 schedule offset."""
        return self.start_time + diameter - self.dist

    def __repr__(self) -> str:
        return (
            "SourceRecord(s={}, Ts={}, d={}, sigma={!r}, preds={})".format(
                self.source, self.start_time, self.dist, self.sigma, self.preds
            )
        )


class LedgerRow:
    """A live view of one ledger row, API-compatible with SourceRecord.

    Two slots, allocated on demand by :meth:`NodeLedger.get` and
    iteration; reads and writes go straight through to the columns, so
    a view is never stale.
    """

    __slots__ = ("_ledger", "_row")

    def __init__(self, ledger: "NodeLedger", row: int):
        self._ledger = ledger
        self._row = row

    @property
    def source(self) -> int:
        return self._ledger.source_col[self._row]

    @property
    def start_time(self) -> int:
        return self._ledger.start_col[self._row]

    @property
    def dist(self) -> int:
        return self._ledger.dist_col[self._row]

    @property
    def sigma(self) -> Any:
        return self._ledger.sigma_col[self._row]

    @sigma.setter
    def sigma(self, value: Any) -> None:
        self._ledger.sigma_col[self._row] = value

    @property
    def preds(self) -> Tuple[int, ...]:
        return self._ledger.preds_at(self._row)

    @property
    def psi(self) -> Any:
        return self._ledger.psi_col[self._row]

    @psi.setter
    def psi(self, value: Any) -> None:
        self._ledger.psi_col[self._row] = value

    @property
    def sent(self) -> bool:
        return bool(self._ledger.sent_col[self._row])

    @sent.setter
    def sent(self, value: bool) -> None:
        self._ledger.sent_col[self._row] = 1 if value else 0

    def sending_time(self, diameter: int) -> int:
        """T_s(v) = T_s + D − d(s, v), the Algorithm 3 schedule offset."""
        return self.start_time + diameter - self.dist

    def detach(self) -> SourceRecord:
        """A free-standing SourceRecord copy of this row."""
        record = SourceRecord(
            self.source, self.start_time, self.dist, self.sigma, self.preds
        )
        record.psi = self.psi
        record.sent = self.sent
        return record

    def __repr__(self) -> str:
        return (
            "SourceRecord(s={}, Ts={}, d={}, sigma={!r}, preds={})".format(
                self.source, self.start_time, self.dist, self.sigma, self.preds
            )
        )


class NodeLedger:
    """The collection L_v of source records held by one node.

    Array-backed: parallel columns indexed by insertion order (row 0 is
    the first source settled).  ``source_col``/``start_col``/``dist_col``
    are machine-int arrays, ``sigma_col``/``psi_col`` are object lists
    (LFloat or int), ``sent_col`` is a byte array, and the predecessor
    sets live CSR-packed in a private flat buffer read back through
    :meth:`preds_at`.
    """

    def __init__(self, owner: int):
        self.owner = owner
        self._index: Dict[int, int] = {}
        self.source_col = array("q")
        self.start_col = array("q")
        self.dist_col = array("q")
        self.sigma_col: List[Any] = []
        self.psi_col: List[Any] = []
        self.sent_col = bytearray()
        self._pred_flat = array("q")
        self._pred_off = array("q", [0])
        #: The row index for ``source``, or None if not yet settled.
        #: Bound directly to ``dict.get``: this is the hottest lookup in
        #: the protocol (every BFS-wave delivery consults it), and the
        #: bound C method skips a Python-level frame per call.
        self.row_of = self._index.get

    # ------------------------------------------------------------------
    # pickling: the bound dict.get cannot be serialized; rebind on load.
    # The source->row index is likewise dropped (it is a function of
    # source_col), and the object columns are packed into flat machine
    # arrays when their elements allow it — a full ledger then pickles
    # as a handful of C-speed buffers instead of Θ(N) Python objects,
    # which is what keeps round-boundary checkpoints cheap.
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("row_of", None)
        state.pop("_index", None)
        for col in ("sigma_col", "psi_col"):
            packed = _pack_object_column(state[col])
            if packed is not None:
                del state[col]
                state["_packed_" + col] = packed
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for col in ("sigma_col", "psi_col"):
            packed = state.pop("_packed_" + col, None)
            if packed is not None:
                state[col] = _unpack_object_column(packed)
        self.__dict__.update(state)
        self._index = {s: row for row, s in enumerate(self.source_col)}
        self.row_of = self._index.get

    # ------------------------------------------------------------------
    def add_row(
        self,
        source: int,
        start_time: int,
        dist: int,
        sigma: Any,
        preds: Tuple[int, ...],
    ) -> int:
        """Append a newly settled source row (must be new); returns it."""
        index = self._index
        if source in index:
            raise KeyError(
                "node {} already has a record for source {}".format(
                    self.owner, source
                )
            )
        row = len(index)
        index[source] = row
        self.source_col.append(source)
        self.start_col.append(start_time)
        self.dist_col.append(dist)
        self.sigma_col.append(sigma)
        self.psi_col.append(None)
        self.sent_col.append(0)
        self._pred_flat.extend(preds)
        self._pred_off.append(len(self._pred_flat))
        return row

    def add(self, record: SourceRecord) -> None:
        """Insert a newly settled source row (must be new)."""
        row = self.add_row(
            record.source,
            record.start_time,
            record.dist,
            record.sigma,
            record.preds,
        )
        if record.psi is not None:
            self.psi_col[row] = record.psi
        if record.sent:
            self.sent_col[row] = 1

    def get(self, source: int, default=None):
        """The :class:`LedgerRow` view for ``source``, or ``default``."""
        row = self._index.get(source)
        if row is None:
            return default
        return LedgerRow(self, row)

    def preds_at(self, row: int) -> Tuple[int, ...]:
        """P_s(v) for the source at ``row``, unpacked from the CSR buffer."""
        offsets = self._pred_off
        return tuple(self._pred_flat[offsets[row] : offsets[row + 1]])

    def __contains__(self, source: int) -> bool:
        return source in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[LedgerRow]:
        for row in range(len(self._index)):
            yield LedgerRow(self, row)

    def sources(self) -> List[int]:
        """All settled sources, sorted."""
        return sorted(self._index)

    def eccentricity(self) -> int:
        """max_s d(s, v) over settled sources (v's eccentricity once full)."""
        dist_col = self.dist_col
        return max(dist_col) if len(dist_col) else 0

    def max_start_time(self) -> int:
        """max_s T_s over settled sources."""
        start_col = self.start_col
        return max(start_col) if len(start_col) else 0

    def distances(self) -> Dict[int, int]:
        """Map source -> d(s, v): this node's row of the APSP matrix."""
        dist_col = self.dist_col
        return {s: dist_col[row] for s, row in self._index.items()}

    def predecessor_links(self) -> int:
        """Total predecessor pointers stored (Σ_s |P_s(v)|).

        Bounded by N * deg(v): the dominant term of the node's local
        space, the distributed analogue of Brandes' O(N + M) footprint
        (here the *per-node* state is O(N * deg), i.e. O(M) amortized
        per source across the network).  O(1) off the CSR buffer.
        """
        return len(self._pred_flat)

    def storage_summary(self) -> Dict[str, int]:
        """Per-node space profile: records, predecessor links, fields.

        ``fields`` counts the scalar slots (source, T_s, d, sigma) —
        4 per record — so total words ≈ fields + predecessor links.
        """
        records = len(self._index)
        links = len(self._pred_flat)
        return {
            "records": records,
            "pred_links": links,
            "fields": 4 * records,
            "words": 4 * records + links,
        }

    def __repr__(self) -> str:
        return "NodeLedger(owner={}, sources={})".format(
            self.owner, len(self._index)
        )


def ledger_storage_totals(ledgers) -> Dict[str, int]:
    """Aggregate :meth:`NodeLedger.storage_summary` over many ledgers.

    The network-wide space profile — what the telemetry gauges and the
    ``repro report`` memory line show, and what the engine benchmark
    records as peak ledger words.
    """
    totals = {"records": 0, "pred_links": 0, "fields": 0, "words": 0}
    for ledger in ledgers:
        for key, value in ledger.storage_summary().items():
            totals[key] += value
    return totals
