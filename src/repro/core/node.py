"""The composite per-node state machine of the distributed BC algorithm.

:class:`BetweennessNode` wires the three phase handlers together and
routes each round's inbox by message type:

1. :class:`~repro.core.tree.TreePhase` — spanning tree + census
   (phase 0, an implementation necessity the paper folds into its
   "build a BFS tree rooted in a randomly selected vertex" premise).
2. :class:`~repro.core.counting.CountingPhase` — Algorithm 2: the DFS
   token, the pipelined BFS waves and the completion convergecast.
3. :class:`~repro.core.aggregation.AggregationPhase` — Algorithm 3: the
   collision-free scheduled dependency aggregation and the final local
   betweenness computation.

The node's :attr:`done` flag rises only when the aggregation phase has
produced the local betweenness value, so the simulator's termination
round is the full protocol's round complexity.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.arithmetic.context import ArithmeticContext
from repro.congest.node import Inbox, NodeAlgorithm, RoundContext
from repro.core.aggregation import AggregationPhase
from repro.core.config import ProtocolConfig
from repro.core.counting import CountingPhase
from repro.core.messages import (
    AggStart,
    AggValue,
    Announce,
    BfsWave,
    DfsToken,
    DoneReport,
    SubtreeCount,
    TreeJoin,
    TreeWave,
)
from repro.core.records import NodeLedger
from repro.core.tree import TreePhase
from repro.exceptions import ProtocolError


class BetweennessNode(NodeAlgorithm):
    """One network node running the full distributed BC protocol.

    Parameters
    ----------
    node_id, neighbors:
        Supplied by the simulator's node factory.
    root:
        The id of the node u0 hosting the BFS(u0) tree and the DFS.
    arith:
        The arithmetic context (exact or L-bit float, Section VI).
    """

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        root: int,
        arith: ArithmeticContext,
        config: ProtocolConfig = ProtocolConfig(),
    ):
        super().__init__(node_id, neighbors)
        self.arith = arith
        self.config = config
        self.ledger = NodeLedger(node_id)
        self.tree = TreePhase(node_id, is_root=(node_id == root))
        self.counting = CountingPhase(
            node_id, self.tree, self.ledger, arith, config=config
        )
        self.aggregation = AggregationPhase(
            node_id, self.tree, self.ledger, arith, config=config
        )
        self._dfs_started = False

    # ------------------------------------------------------------------
    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        box = _split_inbox(inbox)
        self.tree.on_round(
            ctx,
            box.tree_waves,
            box.tree_joins,
            box.subtree_counts,
            box.announces,
        )
        if (
            self.tree.is_root
            and not self._dfs_started
            and self.tree.census_round is not None
        ):
            # Census done: the root is the DFS's first "visit".
            self._dfs_started = True
            self.counting.begin_dfs(ctx)
        self.counting.on_round(ctx, box.bfs_waves, box.tokens, box.done_reports)
        if (
            self.tree.is_root
            and self.counting.counting_result is not None
            and not self.aggregation.armed
        ):
            diameter, t_max, base = self.counting.counting_result
            self.aggregation.arm(AggStart(diameter, t_max, base))
        self.aggregation.handle_start(ctx, box.agg_starts)
        self.aggregation.on_round(ctx, box.agg_values)
        if self.aggregation.finished:
            self.done = True

    # ------------------------------------------------------------------
    # outputs (read by the pipeline after the run)
    # ------------------------------------------------------------------
    @property
    def betweenness_raw(self) -> Any:
        """Sum of dependencies (before the undirected halving)."""
        if self.aggregation.betweenness_raw is None:
            raise ProtocolError(
                "node {} has not finished the protocol".format(self.node_id)
            )
        return self.aggregation.betweenness_raw

    @property
    def diameter(self) -> Optional[int]:
        """The network diameter as learned from the AggStart broadcast."""
        return self.aggregation.diameter


def make_node_factory(
    root: int,
    arith: ArithmeticContext,
    config: ProtocolConfig = ProtocolConfig(),
):
    """The factory the simulator calls for every node."""

    def factory(node_id: int, neighbors: Tuple[int, ...]) -> BetweennessNode:
        return BetweennessNode(node_id, neighbors, root, arith, config=config)

    return factory


class _SplitInbox:
    """Inbox messages partitioned by protocol message type."""

    __slots__ = (
        "tree_waves",
        "tree_joins",
        "subtree_counts",
        "announces",
        "tokens",
        "bfs_waves",
        "done_reports",
        "agg_starts",
        "agg_values",
    )

    def __init__(self):
        self.tree_waves: List[Tuple[int, TreeWave]] = []
        self.tree_joins: List[Tuple[int, TreeJoin]] = []
        self.subtree_counts: List[Tuple[int, SubtreeCount]] = []
        self.announces: List[Tuple[int, Announce]] = []
        self.tokens: List[Tuple[int, DfsToken]] = []
        self.bfs_waves: List[Tuple[int, BfsWave]] = []
        self.done_reports: List[Tuple[int, DoneReport]] = []
        self.agg_starts: List[Tuple[int, AggStart]] = []
        self.agg_values: List[Tuple[int, AggValue]] = []


_DISPATCH = {
    TreeWave: "tree_waves",
    TreeJoin: "tree_joins",
    SubtreeCount: "subtree_counts",
    Announce: "announces",
    DfsToken: "tokens",
    BfsWave: "bfs_waves",
    DoneReport: "done_reports",
    AggStart: "agg_starts",
    AggValue: "agg_values",
}


def _split_inbox(inbox: Inbox) -> _SplitInbox:
    box = _SplitInbox()
    for sender, message in inbox:
        slot = _DISPATCH.get(type(message))
        if slot is None:
            raise ProtocolError(
                "unexpected message type {!r}".format(type(message).__name__)
            )
        getattr(box, slot).append((sender, message))
    return box
