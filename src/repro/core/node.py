"""The composite per-node state machine of the distributed BC algorithm.

:class:`BetweennessNode` wires the three phase handlers together and
routes each round's inbox by message type:

1. :class:`~repro.core.tree.TreePhase` — spanning tree + census
   (phase 0, an implementation necessity the paper folds into its
   "build a BFS tree rooted in a randomly selected vertex" premise).
2. :class:`~repro.core.counting.CountingPhase` — Algorithm 2: the DFS
   token, the pipelined BFS waves and the completion convergecast.
3. :class:`~repro.core.aggregation.AggregationPhase` — Algorithm 3: the
   collision-free scheduled dependency aggregation and the final local
   betweenness computation.

The node's :attr:`done` flag rises only when the aggregation phase has
produced the local betweenness value, so the simulator's termination
round is the full protocol's round complexity.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.arithmetic.context import ArithmeticContext
from repro.congest.node import Inbox, NodeAlgorithm, RoundContext
from repro.core.aggregation import AggregationPhase
from repro.core.config import ProtocolConfig
from repro.core.counting import CountingPhase
from repro.core.messages import PROTOCOL_MESSAGES, AggStart, BfsWave
from repro.core.records import NodeLedger
from repro.core.tree import TreePhase
from repro.exceptions import ProtocolError


class BetweennessNode(NodeAlgorithm):
    """One network node running the full distributed BC protocol.

    Parameters
    ----------
    node_id, neighbors:
        Supplied by the simulator's node factory.
    root:
        The id of the node u0 hosting the BFS(u0) tree and the DFS.
    arith:
        The arithmetic context (exact or L-bit float, Section VI).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` (duck-typed;
        this module does not import ``repro.obs``).  Give it to the
        *root* node only: the root's phase handlers hold the global
        phase boundaries as protocol state (``census_round``,
        ``result_round``, the AggStart ``base``, ``finished_round``),
        so it emits each phase mark exactly once, with the
        protocol-exact round number rather than a guess from traffic.
    """

    #: Phase-class hooks: a protocol variant (see :mod:`repro.protocols`)
    #: subclasses the node and swaps one of these to re-time or replace
    #: a phase while inheriting the dispatch loop, the wake
    #: registration and the output surface unchanged.
    counting_class = CountingPhase
    aggregation_class = AggregationPhase

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        root: int,
        arith: ArithmeticContext,
        config: ProtocolConfig = ProtocolConfig(),
        telemetry=None,
    ):
        super().__init__(node_id, neighbors)
        self.arith = arith
        self.config = config
        self.telemetry = telemetry
        self.ledger = NodeLedger(node_id)
        self.tree = TreePhase(node_id, is_root=(node_id == root))
        self.counting = self.counting_class(
            node_id, self.tree, self.ledger, arith, config=config
        )
        self.aggregation = self.aggregation_class(
            node_id, self.tree, self.ledger, arith, config=config
        )
        self._dfs_started = False
        # Phase-mark cursor: index into _PHASE_MARKS of the next
        # boundary to emit (marks are strictly ordered, so a single
        # integer suffices).  Stays 0 forever when telemetry is None.
        self._phase_cursor = 0

    # ------------------------------------------------------------------
    def on_start(self, ctx: RoundContext) -> None:
        if self.telemetry is not None:
            self.telemetry.phase_begin("tree_build", ctx.round_number)

    def on_round(self, ctx: RoundContext, inbox: Inbox) -> None:
        # Single code path for every round: split the inbox into typed
        # buckets (lists only materialize for the types actually
        # present — almost every step carries one or two), then step the
        # phases in order, skipping handlers that provably have nothing
        # to do.
        (
            tree_waves,
            tree_joins,
            subtree_counts,
            announces,
            tokens,
            bfs_waves,
            done_reports,
            agg_starts,
            agg_values,
        ) = _split_inbox(inbox)
        no = _NO_MESSAGES
        tree = self.tree
        if (
            tree.num_nodes is None
            or tree_waves is not no
            or tree_joins is not no
            or subtree_counts is not no
            or announces is not no
        ):
            # Once the census announce has arrived the tree phase is
            # fully message-driven and inert (its only timer,
            # ``children_final``, precedes the announce), so it only
            # needs stepping while building or on tree traffic.
            tree.on_round(
                ctx, tree_waves, tree_joins, subtree_counts, announces
            )
        if (
            tree.is_root
            and not self._dfs_started
            and tree.census_round is not None
        ):
            # Census done: the root is the DFS's first "visit".
            self._dfs_started = True
            self.counting.begin_dfs(ctx)
        self.counting.on_round(ctx, bfs_waves, tokens, done_reports)
        if (
            tree.is_root
            and self.counting.counting_result is not None
            and not self.aggregation.armed
        ):
            diameter, t_max, base = self.counting.counting_result
            self.aggregation.arm(AggStart(diameter, t_max, base))
        aggregation = self.aggregation
        if agg_starts is not no:
            aggregation.handle_start(ctx, agg_starts)
        aggregation.on_round(ctx, agg_values)
        if aggregation.finished:
            self.done = True
        if self.telemetry is not None:
            self._phase_transitions()
        self._register_wakes(ctx)

    def _phase_transitions(self) -> None:
        """Emit any phase marks whose protocol evidence just appeared.

        Each entry of :data:`_PHASE_MARKS` names a phase and the piece
        of root state holding its protocol-exact start round; the marks
        are strictly ordered, so a cursor walks them at most once per
        run.  The final aggregation ``finished_round`` closes the last
        span.  Only called on the telemetry-carrying (root) node.
        """
        telemetry = self.telemetry
        cursor = self._phase_cursor
        marks = _PHASE_MARKS
        while cursor < len(marks):
            name, owner, attribute = marks[cursor]
            boundary = getattr(getattr(self, owner), attribute)
            if boundary is None:
                break
            if name is None:
                telemetry.phase_end(boundary)
            else:
                telemetry.phase_begin(name, boundary)
            cursor += 1
        self._phase_cursor = cursor

    def message_wakes(self, sender: int, message: Any) -> bool:
        """Delivery-time wake filter (see :class:`NodeAlgorithm`).

        A BFS wave for a source this node has already settled at a
        nearer or equal distance is a broadcast echo: the counting
        phase validates and discards it without changing state or
        sending, so it need not trigger a step of its own.  On
        high-diameter graphs these echoes are roughly half of all
        deliveries, so deferring them halves the event engine's work.
        A wave that would fail the late-arrival check
        (``dist + 1 <= record.dist``) still wakes the node, so the
        :class:`~repro.exceptions.ProtocolError` fires in the same
        round as under the sweep engine.
        """
        if type(message) is BfsWave:
            row = self.ledger.row_of(message.source)
            if row is not None and message.dist + 1 > self.ledger.dist_col[row]:
                return False
        return True

    def _register_wakes(self, ctx: RoundContext) -> None:
        """Register the node's next round-triggered action with the engine.

        The phases expose their pending timers (``children_final``, the
        delayed BFS launch / token forward, the aggregation send
        schedule and the post-horizon finish); the earliest one is
        registered via :meth:`RoundContext.wake_at` so the event engine
        steps this node exactly when needed.  Re-registration on every
        step keeps the invariant simple: the node is always stepped at
        its earliest pending timer, at which point it registers the
        next one.
        """
        wake = self.tree.next_event()
        candidate = self.counting.next_event()
        if candidate is not None and (wake is None or candidate < wake):
            wake = candidate
        candidate = self.aggregation.next_event(ctx.round_number)
        if candidate is not None and (wake is None or candidate < wake):
            wake = candidate
        if wake is not None and wake > ctx.round_number:
            ctx.wake_at(wake)

    # ------------------------------------------------------------------
    # outputs (read by the pipeline after the run)
    # ------------------------------------------------------------------
    @property
    def betweenness_raw(self) -> Any:
        """Sum of dependencies (before the undirected halving)."""
        if self.aggregation.betweenness_raw is None:
            raise ProtocolError(
                "node {} has not finished the protocol".format(self.node_id)
            )
        return self.aggregation.betweenness_raw

    @property
    def diameter(self) -> Optional[int]:
        """The network diameter as learned from the AggStart broadcast."""
        return self.aggregation.diameter

    def sent_sources(self) -> frozenset:
        """Sources whose scheduled aggregation send this node executed.

        A sent record's psi is final (every BFS(s) descendant sent
        strictly earlier), so these are the sources for which this
        node's dependency delta_s·(v) is trustworthy even in a run that
        was cut short.
        """
        ledger = self.ledger
        source_col = ledger.source_col
        sent_col = ledger.sent_col
        return frozenset(
            source_col[row] for row in range(len(ledger)) if sent_col[row]
        )

    def partial_betweenness_raw(self, complete_sources) -> Any:
        """Raw betweenness restricted to ``complete_sources``.

        The per-source telescoping (Eq. 14) is independent across
        sources, so summing dependencies over any source subset is
        exact for that subset — this is the bounded-partial output a
        faulted run degrades to instead of returning wrong totals.
        """
        arith = self.arith
        total = arith.psi_zero()
        node_id = self.node_id
        ledger = self.ledger
        source_col = ledger.source_col
        sigma_col = ledger.sigma_col
        psi_col = ledger.psi_col
        for row in range(len(ledger)):
            source = source_col[row]
            if source == node_id or psi_col[row] is None:
                continue
            if source in complete_sources:
                total = arith.psi_add(
                    total, arith.dependency(psi_col[row], sigma_col[row])
                )
        return total


def make_node_factory(
    root: int,
    arith: ArithmeticContext,
    config: ProtocolConfig = ProtocolConfig(),
    telemetry=None,
    node_class=None,
):
    """The factory the simulator calls for every node.

    ``telemetry`` is handed to the root node only (see
    :class:`BetweennessNode`); every other node keeps the zero-cost
    ``None`` default.  ``node_class`` lets a protocol variant (see
    :mod:`repro.protocols`) substitute its node subclass.
    """
    cls = BetweennessNode if node_class is None else node_class

    def factory(node_id: int, neighbors: Tuple[int, ...]) -> BetweennessNode:
        return cls(
            node_id,
            neighbors,
            root,
            arith,
            config=config,
            telemetry=telemetry if node_id == root else None,
        )

    return factory


#: Shared empty-inbox-slot sentinel for the typed dispatch above: phase
#: handlers only iterate / truth-test their message lists, so an empty
#: tuple is a safe stand-in that costs no allocation.
_NO_MESSAGES: Tuple = ()


#: Ordered phase boundaries for telemetry, each as (phase name to open,
#: attribute owner on the node, attribute holding the start round); a
#: ``None`` name closes the final span instead.  The boundaries are the
#: protocol state the root sets as the run progresses: the census
#: completes the tree build, ``result_round`` ends the pipelined
#: counting, the AggStart ``base`` ends the D-round diameter broadcast,
#: and ``finished_round`` is the final local computation.
_PHASE_MARKS: Tuple[Tuple[Optional[str], str, str], ...] = (
    ("counting", "tree", "census_round"),
    ("diameter_broadcast", "counting", "result_round"),
    ("aggregation", "aggregation", "base"),
    (None, "aggregation", "finished_round"),
)


#: The single routing table: message class -> bucket index, derived
#: from the codec registry's canonical protocol-message order.  This
#: replaces the per-type ``isinstance`` / elif chains that used to be
#: duplicated across the dispatch paths.
_BUCKET_OF = {cls: index for index, cls in enumerate(PROTOCOL_MESSAGES)}


def _split_inbox(inbox: Inbox) -> List[Any]:
    """Partition an inbox into per-type buckets in one pass.

    Returns one bucket per :data:`PROTOCOL_MESSAGES` entry, in that
    order; absent types get the shared :data:`_NO_MESSAGES` sentinel
    (phase handlers only iterate / truth-test their lists).  Any other
    message type on a protocol edge is a :class:`ProtocolError`.
    """
    buckets: List[Any] = [_NO_MESSAGES] * len(PROTOCOL_MESSAGES)
    for pair in inbox:
        index = _BUCKET_OF.get(type(pair[1]))
        if index is None:
            raise ProtocolError(
                "unexpected message type {!r}".format(type(pair[1]).__name__)
            )
        bucket = buckets[index]
        if bucket is _NO_MESSAGES:
            buckets[index] = [pair]
        else:
            bucket.append(pair)
    return buckets
