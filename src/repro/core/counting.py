"""The counting phase: Algorithm 2 of the paper.

Two interleaved mechanisms run on every node:

* **The DFS token** walks the BFS(u0) tree.  When it first reaches a
  node s, the paper's line 3 inserts a one-slot pause; concretely, s
  launches its own BFS *and* forwards the token one round after the
  token's arrival, while backtracking hops forward immediately.  This
  yields start times satisfying the separation invariant
  ``T_t >= T_s + d(s, t) + 1`` for any later-started t (the token needs
  at least d(s, t) hops to travel from s to t plus the pause), which is
  exactly what Lemma 4's collision-freedom proof consumes.

* **BFS waves.**  When s starts its BFS at round T_s it broadcasts
  ``BfsWave(s, T_s, 0, 1)``.  A node v first reached by waves for s
  settles: all copies arriving that round come from the full predecessor
  set P_s(v) (synchrony delivers every distance-(d-1) sender in the same
  round), so v computes sigma_sv = sum of predecessor sigmas in one
  step, appends ``(s, T_s, d(s,v), sigma_sv, P_s(v))`` to its ledger
  L_v, and re-broadcasts.  The separation invariant guarantees at most
  one *fresh* source settles per node per round — at most one wave per
  edge per round, keeping every round within the CONGEST budget
  (Lemma 3).  Violations raise :class:`ProtocolError` rather than being
  silently tolerated, making the lemma machine-checked on every run.

The phase ends with a **completion convergecast**: a node whose ledger
holds N records and whose subtree is complete reports its subtree's
maximum eccentricity up the tree; the root then knows the diameter D
(line 22's broadcast is folded into the :class:`AggStart` message that
opens the aggregation phase).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arithmetic.context import ArithmeticContext
from repro.congest.node import RoundContext
from repro.core.config import ProtocolConfig
from repro.core.messages import AggStart, BfsWave, DfsToken, DoneReport
from repro.core.records import NodeLedger
from repro.core.tree import TreePhase
from repro.exceptions import ProtocolError


class CountingPhase:
    """Per-node state machine for Algorithm 2."""

    def __init__(
        self,
        node_id: int,
        tree: TreePhase,
        ledger: NodeLedger,
        ctx_arith: ArithmeticContext,
        config: ProtocolConfig = ProtocolConfig(),
    ):
        self.node_id = node_id
        self.tree = tree
        self.ledger = ledger
        self.arith = ctx_arith
        self.config = config
        # --- DFS token state ---
        self.visited = False
        self._bfs_start_round: Optional[int] = None
        self._token_forward_round: Optional[int] = None
        self._next_child_index = 0
        #: round at which the root observed DFS completion (root only).
        self.dfs_complete_round: Optional[int] = None
        #: T_s of this node's own BFS (set when the wave launches).
        self.own_start_time: Optional[int] = None
        # --- completion convergecast state ---
        self._done_reported = False
        self._child_done: Dict[int, int] = {}
        #: set on the root when the convergecast completes:
        #: (D, T_max, aggregation base round).
        self.counting_result: Optional[Tuple[int, int, int]] = None
        #: round in which ``counting_result`` was set (root only) — the
        #: protocol-exact end of the counting phase, consumed by the
        #: telemetry phase spans.
        self.result_round: Optional[int] = None

    # ------------------------------------------------------------------
    def progress(self) -> Dict[str, object]:
        """Partial-state snapshot for fault post-mortems.

        How far this node got through Algorithm 2, readable at any
        point — including after a stalled run, where the completeness
        report uses it to say *what* was lost, not just that something
        was.
        """
        return {
            "visited": self.visited,
            "own_start_time": self.own_start_time,
            "settled_sources": len(self.ledger),
            "done_reported": self._done_reported,
        }

    # ------------------------------------------------------------------
    def on_round(
        self,
        ctx: RoundContext,
        waves: List[Tuple[int, BfsWave]],
        tokens: List[Tuple[int, DfsToken]],
        done_reports: List[Tuple[int, DoneReport]],
    ) -> None:
        """Advance the counting phase by one round."""
        self._handle_waves(ctx, waves)
        self._handle_tokens(ctx, tokens)
        self._maybe_start_bfs(ctx)
        self._maybe_forward_token(ctx)
        for sender, report in done_reports:
            self._child_done[sender] = report.max_ecc
        self._maybe_report_done(ctx)

    def next_event(self) -> Optional[int]:
        """Next round at which this phase acts without receiving a message.

        Two timers exist, both armed by the DFS token's first visit: the
        one-slot-delayed BFS launch and the token forward (line 3 of
        Algorithm 2).  The completion convergecast is message-driven
        (modulo the tree phase's ``children_final`` timer, which the
        tree phase reports itself).  Used by the event engine's wake
        registration.
        """
        bfs = self._bfs_start_round
        token = self._token_forward_round
        if bfs is None:
            return token
        if token is None or bfs < token:
            return bfs
        return token

    # ------------------------------------------------------------------
    # BFS waves
    # ------------------------------------------------------------------
    def _handle_waves(
        self, ctx: RoundContext, waves: List[Tuple[int, BfsWave]]
    ) -> None:
        row_of = self.ledger.row_of
        dist_col = self.ledger.dist_col
        fresh_source: Optional[int] = None
        fresh: List[Tuple[int, BfsWave]] = []
        for sender, wave in waves:
            row = row_of(wave.source)
            if row is None:
                if fresh_source is None:
                    fresh_source = wave.source
                elif fresh_source != wave.source:
                    raise ProtocolError(
                        "node {} settled sources {} in the same round — "
                        "the pipelining invariant (Lemma 4) is "
                        "broken".format(
                            self.node_id,
                            sorted((fresh_source, wave.source)),
                        )
                    )
                fresh.append((sender, wave))
            elif wave.dist + 1 <= dist_col[row]:
                # A predecessor-looking wave arriving after we settled
                # would mean the synchrony argument failed.
                raise ProtocolError(
                    "node {} got a late wave for source {} (settled at "
                    "d={}, wave d={})".format(
                        self.node_id, wave.source, dist_col[row], wave.dist
                    )
                )
            # Waves from same-level or downstream neighbors are the
            # expected broadcast echoes; they carry no new information.
        if fresh_source is not None:
            self._settle_source(ctx, fresh_source, fresh)

    def _settle_source(
        self,
        ctx: RoundContext,
        source: int,
        arrivals: List[Tuple[int, BfsWave]],
    ) -> None:
        first = arrivals[0][1]
        if len(arrivals) == 1:
            # Single predecessor (the common case off dense cores):
            # nothing to cross-check or accumulate.
            sigma = first.sigma
            preds = (arrivals[0][0],)
        else:
            dists = {wave.dist for _, wave in arrivals}
            starts = {wave.start_time for _, wave in arrivals}
            if len(dists) != 1 or len(starts) != 1:
                raise ProtocolError(
                    "node {} saw inconsistent waves for source {}: "
                    "dists={} starts={}".format(
                        self.node_id, source, dists, starts
                    )
                )
            sigma = first.sigma
            for _, wave in arrivals[1:]:
                sigma = self.arith.sigma_add(sigma, wave.sigma)
            preds = tuple(sorted(sender for sender, _ in arrivals))
        dist = first.dist + 1
        start_time = first.start_time
        self.ledger.add_row(source, start_time, dist, sigma, preds)
        ctx.broadcast(BfsWave(source, start_time, dist, sigma))

    # ------------------------------------------------------------------
    # DFS token
    # ------------------------------------------------------------------
    def begin_dfs(self, ctx: RoundContext) -> None:
        """Root bootstrap: treat the census completion as the first visit."""
        self._first_visit(ctx.round_number)

    def _first_visit(self, round_number: int) -> None:
        self.visited = True
        # Line 3 of Algorithm 2: the DFS waits one time slot; the BFS
        # launches (and the token moves on) in the next round.  Nodes
        # outside the configured source set skip the BFS launch but keep
        # the token cadence, so the separation invariant for the actual
        # sources is untouched.
        if self.config.is_source(self.node_id):
            self._bfs_start_round = round_number + 1
        self._token_forward_round = round_number + 1

    def _handle_tokens(
        self, ctx: RoundContext, tokens: List[Tuple[int, DfsToken]]
    ) -> None:
        if not tokens:
            return
        if len(tokens) > 1:
            raise ProtocolError(
                "node {} received two DFS tokens at once".format(self.node_id)
            )
        sender, token = tokens[0]
        if not self.visited:
            if sender != self.tree.parent:
                raise ProtocolError(
                    "node {} got its first token from {} but its tree "
                    "parent is {}".format(
                        self.node_id, sender, self.tree.parent
                    )
                )
            self._first_visit(ctx.round_number)
        else:
            # Backtrack hop: forward immediately (this very round).
            self._forward_token(ctx)

    def _maybe_forward_token(self, ctx: RoundContext) -> None:
        if (
            self._token_forward_round is not None
            and ctx.round_number == self._token_forward_round
        ):
            self._token_forward_round = None
            self._forward_token(ctx)

    def _forward_token(self, ctx: RoundContext) -> None:
        children = self.tree.sorted_children()
        if self._next_child_index < len(children):
            child = children[self._next_child_index]
            self._next_child_index += 1
            ctx.send(child, DfsToken())
        elif self.tree.is_root:
            self.dfs_complete_round = ctx.round_number
        else:
            ctx.send(self.tree.parent, DfsToken(returning=True))

    def _maybe_start_bfs(self, ctx: RoundContext) -> None:
        if (
            self._bfs_start_round is None
            or ctx.round_number != self._bfs_start_round
        ):
            return
        self._bfs_start_round = None
        self.own_start_time = ctx.round_number
        sigma_one = self.arith.sigma_one()
        self.ledger.add_row(self.node_id, self.own_start_time, 0, sigma_one, ())
        ctx.broadcast(
            BfsWave(self.node_id, self.own_start_time, 0, sigma_one)
        )

    # ------------------------------------------------------------------
    # completion convergecast
    # ------------------------------------------------------------------
    def _maybe_report_done(self, ctx: RoundContext) -> None:
        if self._done_reported or not self.tree.children_final:
            return
        expected = self.config.expected_sources(self.tree.num_nodes)
        if expected is None or len(self.ledger) != expected:
            return
        if any(c not in self._child_done for c in self.tree.children):
            return
        subtree_ecc = max(
            [self.ledger.eccentricity()] + list(self._child_done.values())
        )
        self._done_reported = True
        if self.tree.is_root:
            diameter = subtree_ecc
            t_max = self.ledger.max_start_time()
            base = ctx.round_number + diameter + 1
            self.counting_result = (diameter, t_max, base)
            self.result_round = ctx.round_number
            for child in self.tree.sorted_children():
                ctx.send(child, AggStart(diameter, t_max, base))
        else:
            ctx.send(self.tree.parent, DoneReport(subtree_ecc))
