"""Closed-form round model of the full protocol.

Every phase of the implementation has deterministic timing, so the
*exact* number of synchronous rounds a run takes is computable without
simulating a single message.  This module derives it:

========================  =============================================
census round  r_N         post-order recursion over BFS(u0):
                           ``S(v) = max(depth(v) + 2, max_c S(c) + 1)``
BFS start times T_s       tree-walk DFS offsets anchored at r_N + 1
last settle  L(v)         ``max_s (T_s + d(s, v))``
announce     A(v)         ``r_N + depth(v)``
done reports R(v)         ``max(L(v), A(v), max_c R(c) + 1)``
aggregation base          ``R(u0) + D + 1``
horizon                   ``base + T_max + D``
total rounds              ``horizon + 2``
========================  =============================================

(The +2: nodes finalize their betweenness while processing round
``horizon + 1``, and the simulator detects global quiescence at the top
of round ``horizon + 2``.)

The model doubles as documentation of the protocol's timing and as a
*strong* regression oracle: ``tests/test_roundmodel.py`` asserts the
predictions equal the simulator's measurements **exactly** across graph
families — any timing drift in a future change breaks the test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.schedule import bfs_start_times, bfs_tree_children
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    all_pairs_distances,
    bfs_distances,
    require_connected,
)


@dataclass
class RoundModel:
    """Predicted timing of one protocol run (all values exact)."""

    graph: Graph
    root: int
    #: round in which the root computes N (end of the census).
    census_round: int
    #: T_s for every source, in absolute simulator rounds.
    start_times: Dict[int, int]
    #: max_s T_s.
    t_max: int
    #: per node: the round its ledger becomes complete.
    last_settle: Dict[int, int]
    #: round the root completes the done-convergecast (fixes D).
    completion_round: int
    #: the AggStart anchor ``base``.
    agg_base: int
    #: diameter.
    diameter: int
    #: last round with any aggregation traffic in flight.
    horizon: int
    #: total rounds the simulator reports for the full BC run.
    total_rounds: int


def predict_rounds(graph: Graph, root: int = 0) -> RoundModel:
    """Compute the closed-form timing of a full protocol run.

    Costs one BFS per node (O(N·M) — it needs all-pairs distances for
    the last-settle terms), which is orders of magnitude cheaper than
    simulating the Θ(M·N) message deliveries but still quadratic;
    comfortable up to a few thousand nodes.
    """
    require_connected(graph)
    depth = bfs_distances(graph, root)
    children = bfs_tree_children(graph, root)
    order = _post_order(children, root)

    # census convergecast: S(v) = max(depth + 2, max_c S(c) + 1)
    census: Dict[int, int] = {}
    for v in order:  # children before parents
        base = depth[v] + 2
        for c in children[v]:
            base = max(base, census[c] + 1)
        census[v] = base
    census_round = census[root]

    # BFS start times: tree-walk DFS anchored one round after the census
    start_times = bfs_start_times(
        graph, root, mode="tree_walk", t0=census_round + 1
    )
    t_max = max(start_times.values())

    # last settle per node and the diameter
    dist = all_pairs_distances(graph)
    last_settle = {
        v: max(start_times[s] + dist[s][v] for s in graph.nodes())
        for v in graph.nodes()
    }
    diameter = max(max(row) for row in dist)

    # done convergecast: R(v) = max(L(v), A(v), max_c R(c) + 1)
    reports: Dict[int, int] = {}
    for v in order:
        announce = census_round + depth[v]
        ready = max(last_settle[v], announce)
        for c in children[v]:
            ready = max(ready, reports[c] + 1)
        reports[v] = ready
    completion_round = reports[root]

    agg_base = completion_round + diameter + 1
    horizon = agg_base + t_max + diameter
    total_rounds = horizon + 2
    return RoundModel(
        graph=graph,
        root=root,
        census_round=census_round,
        start_times=start_times,
        t_max=t_max,
        last_settle=last_settle,
        completion_round=completion_round,
        agg_base=agg_base,
        diameter=diameter,
        horizon=horizon,
        total_rounds=total_rounds,
    )


def _post_order(children: Dict[int, List[int]], root: int) -> List[int]:
    """Children-before-parent ordering of the tree."""
    out: List[int] = []
    stack: List[tuple] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            out.append(node)
        else:
            stack.append((node, True))
            for c in children[node]:
                stack.append((c, False))
    return out


def rounds_upper_bound(num_nodes: int, diameter: int) -> int:
    """A closed-form worst-case bound: ``rounds <= 6N + 8D + 3``.

    With the tree walk, ``T_max <= census + 1 + 3(N - 1)`` and
    ``census <= 2D + 2``; completion adds at most ``2D``, the anchor
    ``D + 1``, the aggregation another ``T_max + D``, and quiescence
    detection ``2`` — linear in N, Theorem 3's claim with an explicit
    constant for this implementation.
    """
    t_max = (2 * diameter + 2) + 1 + 3 * max(0, num_nodes - 1)
    completion = t_max + diameter + diameter  # last settle + convergecast
    return completion + diameter + 1 + t_max + diameter + 2
