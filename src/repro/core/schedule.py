"""Analytic schedule computations (Figure 1 and Lemma 4).

The correctness of Algorithm 3 rests on one invariant over the BFS
start times produced by the DFS of Algorithm 2:

    **separation:**  for any two sources s, t with T_t > T_s,
    ``T_t >= T_s + d(s, t) + 1``.

Given start times satisfying separation, every node's aggregation sends
``T_s(u) = T_s + D - d(s, u)`` are pairwise distinct per node (Lemma 4),
so no two aggregation messages ever share an edge-direction in a round.

This module computes start times *analytically* (without running the
simulator) under two DFS-token models, both satisfying separation:

* ``"shortcut"`` — the token hops from each newly visited node to the
  next preorder node along a shortest graph path:
  ``T_next = T_prev + d(prev, next) + 1``.  This reproduces the paper's
  Figure 1 numbers exactly (T_{v1..v5} = 0, 2, 4, 6, 8).
* ``"tree_walk"`` — the token physically backtracks along tree edges,
  as the message-passing implementation does:
  ``T_next = T_prev + walk_length + 1``.

It also provides the collision detector used by the scheduling ablation
(benchmark E12): hand it *any* assignment of start times and it counts
how many (node, round) pairs would have to send values for two
different sources simultaneously — zero for separated schedules,
positive for naive ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    all_pairs_distances,
    bfs_parents,
    diameter as graph_diameter,
    require_connected,
)


def bfs_tree_children(graph: Graph, root: int) -> Dict[int, List[int]]:
    """Children lists of the BFS(root) tree with min-id parent choice."""
    parents = bfs_parents(graph, root)
    children: Dict[int, List[int]] = {v: [] for v in graph.nodes()}
    for v, parent in enumerate(parents):
        if parent is not None:
            children[parent].append(v)
    for v in children:
        children[v].sort()
    return children


def dfs_preorder(graph: Graph, root: int) -> List[int]:
    """DFS preorder of the BFS(root) tree, children visited in id order."""
    children = bfs_tree_children(graph, root)
    order: List[int] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(reversed(children[v]))
    return order


def tree_walk_lengths(graph: Graph, root: int) -> List[Tuple[int, int]]:
    """(node, hops-from-previous-preorder-node) along the Euler tour.

    The hop count is the number of tree edges the DFS token traverses
    between consecutive first-visits (1 for a child descent, more when
    backtracking), which is what the message-passing token pays.
    """
    children = bfs_tree_children(graph, root)
    parents = {root: None}
    for parent, kids in children.items():
        for kid in kids:
            parents[kid] = parent
    order = dfs_preorder(graph, root)
    depths: Dict[int, int] = {root: 0}
    for v in order[1:]:
        depths[v] = depths[parents[v]] + 1
    result: List[Tuple[int, int]] = [(root, 0)]
    for prev, nxt in zip(order, order[1:]):
        # tree walk distance = depth(prev) + depth(nxt) - 2 * depth(lca)
        a, b = prev, nxt
        da, db = depths[a], depths[b]
        while da > db:
            a = parents[a]
            da -= 1
        while db > da:
            b = parents[b]
            db -= 1
        while a != b:
            a, b = parents[a], parents[b]
        lca_depth = depths[a] if a is not None else 0
        hops = depths[prev] + depths[nxt] - 2 * lca_depth
        result.append((nxt, hops))
    return result


def bfs_start_times(
    graph: Graph,
    root: int = 0,
    mode: str = "shortcut",
    t0: int = 0,
) -> Dict[int, int]:
    """Start time T_s for every source under the chosen token model.

    ``t0`` is the root's start time (the paper's Figure 1 uses 0).
    """
    require_connected(graph)
    if mode == "shortcut":
        dist = all_pairs_distances(graph)
        order = dfs_preorder(graph, root)
        times: Dict[int, int] = {root: t0}
        for prev, nxt in zip(order, order[1:]):
            times[nxt] = times[prev] + dist[prev][nxt] + 1
        return times
    if mode == "tree_walk":
        times = {}
        clock = t0
        for index, (node, hops) in enumerate(tree_walk_lengths(graph, root)):
            if index == 0:
                times[node] = clock
            else:
                clock = clock + hops + 1
                times[node] = clock
        return times
    raise GraphError("unknown DFS token mode {!r}".format(mode))


def sending_times(
    graph: Graph,
    start_times: Dict[int, int],
    diameter: Optional[int] = None,
) -> Dict[int, Dict[int, int]]:
    """The Algorithm 3 schedule: ``source -> {node: T_s + D - d(s, node)}``.

    This is exactly the table Figure 1 prints for each BFS tree of the
    5-node example.
    """
    if diameter is None:
        diameter = graph_diameter(graph)
    dist = all_pairs_distances(graph)
    return {
        s: {
            v: start_times[s] + diameter - dist[s][v]
            for v in graph.nodes()
        }
        for s in start_times
    }


def verify_separation(graph: Graph, start_times: Dict[int, int]) -> bool:
    """Check the Lemma 4 invariant T_t >= T_s + d(s, t) + 1 for all pairs."""
    dist = all_pairs_distances(graph)
    ordered = sorted(start_times.items(), key=lambda kv: kv[1])
    for i, (s, ts) in enumerate(ordered):
        for t, tt in ordered[i + 1:]:
            if tt < ts + dist[s][t] + 1:
                return False
    return True


def count_collisions(
    graph: Graph,
    start_times: Dict[int, int],
    diameter: Optional[int] = None,
) -> int:
    """Number of simultaneous multi-source sends the schedule forces.

    For each node u, sources s != u are bucketed by their send round
    ``T_s + D - d(s, u)``; every round asking u to emit values for k > 1
    distinct sources contributes k - 1 collisions (k - 1 extra messages
    that would have to share u's per-round budget).  Lemma 4 says this
    is 0 whenever the start times are separated; naive schedules (all
    sources starting together) produce Theta(N) collisions, which the
    ablation benchmark demonstrates.
    """
    if diameter is None:
        diameter = graph_diameter(graph)
    dist = all_pairs_distances(graph)
    collisions = 0
    for u in graph.nodes():
        buckets: Dict[int, int] = {}
        for s in start_times:
            if s == u:
                continue
            send_round = start_times[s] + diameter - dist[s][u]
            buckets[send_round] = buckets.get(send_round, 0) + 1
        collisions += sum(count - 1 for count in buckets.values() if count > 1)
    return collisions


def naive_start_times(graph: Graph, offset: int = 0) -> Dict[int, int]:
    """The ablation schedule: every source starts at the same round."""
    return {v: offset for v in graph.nodes()}


def figure1_tables(graph: Graph = None) -> Dict[int, Dict[int, int]]:
    """The exact sending-time tables of Figure 1 (a)–(e).

    Returns ``source -> {node: sending time}`` computed with the
    shortcut token model on the paper's 5-node graph; the values match
    the figure: e.g. in BFS(v1) node v4 sends at 0, and in BFS(v5) node
    v4 sends at 10.
    """
    from repro.graphs.generators import figure1_graph

    graph = graph or figure1_graph()
    times = bfs_start_times(graph, root=0, mode="shortcut", t0=0)
    return sending_times(graph, times)


# ----------------------------------------------------------------------
# Closed-form round schedule of the message-passing protocol.
#
# These helpers replay the protocol's control flow *analytically*: the
# BFS(u0) tree build, the subtree census convergecast, the DFS token
# walk, and the completion convergecast whose arrival at the root
# triggers the diameter broadcast.  The vectorized bulk engine derives
# its whole execution plan from them, and the progress estimator
# (:class:`repro.obs.stream.ProgressEstimator`) uses the same numbers to
# predict phase boundaries for *any* engine — the round schedule depends
# only on the topology and the source set, never on the arithmetic.
# ----------------------------------------------------------------------
def tree_schedule(
    graph: Graph, root: int
) -> Tuple[List[int], List[Optional[int]], List[List[int]]]:
    """BFS depths, min-id parents and children of the BFS(u0) tree."""
    n = graph.num_nodes
    depth = [-1] * n
    parent: List[Optional[int]] = [None] * n
    children: List[List[int]] = [[] for _ in range(n)]
    depth[root] = 0
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            dv = depth[v] + 1
            for u in graph.neighbors(v):
                if depth[u] < 0:
                    depth[u] = dv
                    # min-id parent: the settling node picks the least
                    # sender id; all depth-(d-1) neighbors send, so that
                    # is simply the least such neighbor.
                    parent[u] = min(
                        w for w in graph.neighbors(u) if depth[w] == dv - 1
                    )
                    nxt.append(u)
        frontier = nxt
    for u in range(n):
        if parent[u] is not None:
            children[parent[u]].append(u)
    for ch in children:
        ch.sort()
    return depth, parent, children


def census_schedule(
    depth: List[int], children: List[List[int]], root: int
) -> Tuple[List[int], int, List[int]]:
    """SubtreeCount send rounds S(v) and the census round at the root.

    ``S(v) = max(depth(v) + 2, max_c S(c) + 1)``: a node's children are
    final two rounds after it settles, and every child's count must have
    arrived (sent at S(c), received at S(c) + 1).
    """
    n = len(depth)
    order = sorted(range(n), key=depth.__getitem__, reverse=True)
    send = [0] * n
    size = [1] * n
    for v in order:
        s = depth[v] + 2
        for c in children[v]:
            size[v] += size[c]
            if send[c] + 1 > s:
                s = send[c] + 1
        send[v] = s
    return send, send[root], size


def dfs_token_schedule(
    children: List[List[int]],
    parent: List[Optional[int]],
    root: int,
    r_census: int,
    slot_forward: int = 0,
    slot_back: int = 0,
) -> Tuple[List[int], List[Tuple[int, int, int, int, int]], int]:
    """Replay the DFS token walk analytically.

    The root treats census completion as its first visit and forwards
    one round later; a newly visited node forwards one round after
    arrival (the paper's line-3 pause); a backtrack hop is forwarded in
    the round it arrives.  Returns per-node first-visit rounds, the full
    list of token sends ``(round, sender, target, returning, slot)``,
    and the round the root observed DFS completion.  ``slot_forward`` /
    ``slot_back`` tag each send with the caller's drain-order slot (the
    bulk engine's global ordering key; estimators pass the defaults).
    """
    n = len(children)
    first_visit = [0] * n
    first_visit[root] = r_census
    next_child = [0] * n
    sends: List[Tuple[int, int, int, int, int]] = []
    v, t, slot = root, r_census + 1, slot_forward
    while True:
        ch = children[v]
        i = next_child[v]
        if i < len(ch):
            next_child[v] = i + 1
            c = ch[i]
            sends.append((t, v, c, 0, slot))
            first_visit[c] = t + 1
            v, t, slot = c, t + 2, slot_forward
        elif v == root:
            return first_visit, sends, t
        else:
            p = parent[v]
            sends.append((t, v, p, 1, slot))
            v, t, slot = p, t + 1, slot_back


#: Protocol phases in execution order, paired with the schedule
#: attribute holding each phase's start round.
PHASE_ORDER = (
    ("tree_build", "start_round"),
    ("counting", "r_census"),
    ("diameter_broadcast", "r_result"),
    ("aggregation", "base"),
)


@dataclass(frozen=True)
class PhaseSchedule:
    """The protocol's closed-form round plan for one configuration.

    All boundaries are *exact*: the synchronous protocol is round-
    deterministic, so a run on the same (graph, root, sources,
    aggregate) configuration terminates at exactly ``total_rounds`` on
    every engine.  ``aggregate=False`` runs (distributed APSP) stop
    after the diameter broadcast; their aggregation boundaries are the
    termination round.
    """

    num_nodes: int
    root: int
    num_sources: int
    aggregate: bool
    r_census: int  #: tree_build -> counting boundary
    r_result: int  #: counting -> diameter_broadcast boundary
    base: int  #: diameter_broadcast -> aggregation boundary
    diameter: int  #: max distance from any source to any node
    t_max: int  #: largest BFS start time T_s
    total_rounds: int  #: exact stats.rounds of the finished run

    start_round = 0

    def boundaries(self) -> List[Tuple[str, int]]:
        """(phase name, start round) pairs in execution order."""
        out = [("tree_build", 0), ("counting", self.r_census)]
        if self.aggregate:
            out.append(("diameter_broadcast", self.r_result))
            out.append(("aggregation", self.base))
        else:
            out.append(("diameter_broadcast", self.r_result))
        return [(name, r) for name, r in out if r <= self.total_rounds]

    def phase_at(self, round_number: int) -> str:
        """Name of the phase a round falls in."""
        current = "tree_build"
        for name, start in self.boundaries():
            if round_number >= start:
                current = name
        return current

    def fraction(self, round_number: int) -> float:
        """Completed fraction of the run at ``round_number`` (clamped)."""
        if self.total_rounds <= 0:
            return 1.0
        return max(0.0, min(1.0, round_number / self.total_rounds))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "num_nodes": self.num_nodes,
            "root": self.root,
            "num_sources": self.num_sources,
            "aggregate": self.aggregate,
            "r_census": self.r_census,
            "r_result": self.r_result,
            "base": self.base,
            "diameter": self.diameter,
            "t_max": self.t_max,
            "total_rounds": self.total_rounds,
        }


def expected_phase_schedule(
    graph: Graph,
    root: int = 0,
    sources: Optional[Iterable[int]] = None,
    aggregate: bool = True,
) -> PhaseSchedule:
    """Predict the protocol's phase boundaries without running it.

    Mirrors the bulk engine's plan derivation in pure Python: the census
    round, the completion convergecast (``done_send`` recursion over the
    tree, driven by the last BFS wave settling at each node), the
    diameter broadcast window and the aggregation horizon.  Cost is one
    BFS per source — O(S * (N + E)) — far below the run itself.
    """
    require_connected(graph)
    n = graph.num_nodes
    depth, parent, children = tree_schedule(graph, root)
    census_send, r_census, _size = census_schedule(depth, children, root)
    first_visit, _token_sends, _dfs_complete = dfs_token_schedule(
        children, parent, root, r_census
    )
    src_list = sorted(sources) if sources is not None else list(range(n))
    all_sources = sources is None
    # Per-source BFS, folded into the two per-node aggregates the
    # completion recursion needs: the eccentricity over sources and the
    # settle round of the last wave, T_s + d(s, v).
    ecc = [0] * n
    last_settle = [0] * n
    t_max = 0
    for s in src_list:
        t_s = first_visit[s] + 1
        if t_s > t_max:
            t_max = t_s
        dist = [-1] * n
        dist[s] = 0
        frontier = [s]
        while frontier:
            nxt = []
            for v in frontier:
                dv = dist[v] + 1
                for u in graph.neighbors(v):
                    if dist[u] < 0:
                        dist[u] = dv
                        nxt.append(u)
            frontier = nxt
        for v in range(n):
            d = dist[v]
            if d > ecc[v]:
                ecc[v] = d
            settle = t_s + d
            if settle > last_settle[v]:
                last_settle[v] = settle
    bottom_up = sorted(range(n), key=depth.__getitem__, reverse=True)
    done_send = [0] * n
    for v in bottom_up:
        r = depth[v] + 2  # children_final
        if all_sources:
            # num_nodes (hence the expected ledger size) is known to the
            # root at the census and to others when the announce arrives.
            known = r_census if v == root else r_census + depth[v]
            if known > r:
                r = known
        if last_settle[v] > r:
            r = last_settle[v]
        for c in children[v]:
            if done_send[c] + 1 > r:
                r = done_send[c] + 1
        done_send[v] = r
    r_result = done_send[root]
    diameter = max(ecc)
    base = r_result + diameter + 1
    if aggregate:
        total_rounds = base + t_max + diameter + 2
    else:
        # Counting-only runs (distributed APSP) halt when the AggStart
        # broadcast reaches the deepest leaves.
        total_rounds = r_result + max(depth) + 1
    return PhaseSchedule(
        num_nodes=n,
        root=root,
        num_sources=len(src_list),
        aggregate=aggregate,
        r_census=r_census,
        r_result=r_result,
        base=base,
        diameter=diameter,
        t_max=t_max,
        total_rounds=total_rounds,
    )
