"""Analytic schedule computations (Figure 1 and Lemma 4).

The correctness of Algorithm 3 rests on one invariant over the BFS
start times produced by the DFS of Algorithm 2:

    **separation:**  for any two sources s, t with T_t > T_s,
    ``T_t >= T_s + d(s, t) + 1``.

Given start times satisfying separation, every node's aggregation sends
``T_s(u) = T_s + D - d(s, u)`` are pairwise distinct per node (Lemma 4),
so no two aggregation messages ever share an edge-direction in a round.

This module computes start times *analytically* (without running the
simulator) under two DFS-token models, both satisfying separation:

* ``"shortcut"`` — the token hops from each newly visited node to the
  next preorder node along a shortest graph path:
  ``T_next = T_prev + d(prev, next) + 1``.  This reproduces the paper's
  Figure 1 numbers exactly (T_{v1..v5} = 0, 2, 4, 6, 8).
* ``"tree_walk"`` — the token physically backtracks along tree edges,
  as the message-passing implementation does:
  ``T_next = T_prev + walk_length + 1``.

It also provides the collision detector used by the scheduling ablation
(benchmark E12): hand it *any* assignment of start times and it counts
how many (node, round) pairs would have to send values for two
different sources simultaneously — zero for separated schedules,
positive for naive ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    all_pairs_distances,
    bfs_parents,
    diameter as graph_diameter,
    require_connected,
)


def bfs_tree_children(graph: Graph, root: int) -> Dict[int, List[int]]:
    """Children lists of the BFS(root) tree with min-id parent choice."""
    parents = bfs_parents(graph, root)
    children: Dict[int, List[int]] = {v: [] for v in graph.nodes()}
    for v, parent in enumerate(parents):
        if parent is not None:
            children[parent].append(v)
    for v in children:
        children[v].sort()
    return children


def dfs_preorder(graph: Graph, root: int) -> List[int]:
    """DFS preorder of the BFS(root) tree, children visited in id order."""
    children = bfs_tree_children(graph, root)
    order: List[int] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(reversed(children[v]))
    return order


def tree_walk_lengths(graph: Graph, root: int) -> List[Tuple[int, int]]:
    """(node, hops-from-previous-preorder-node) along the Euler tour.

    The hop count is the number of tree edges the DFS token traverses
    between consecutive first-visits (1 for a child descent, more when
    backtracking), which is what the message-passing token pays.
    """
    children = bfs_tree_children(graph, root)
    parents = {root: None}
    for parent, kids in children.items():
        for kid in kids:
            parents[kid] = parent
    order = dfs_preorder(graph, root)
    depths: Dict[int, int] = {root: 0}
    for v in order[1:]:
        depths[v] = depths[parents[v]] + 1
    result: List[Tuple[int, int]] = [(root, 0)]
    for prev, nxt in zip(order, order[1:]):
        # tree walk distance = depth(prev) + depth(nxt) - 2 * depth(lca)
        a, b = prev, nxt
        da, db = depths[a], depths[b]
        while da > db:
            a = parents[a]
            da -= 1
        while db > da:
            b = parents[b]
            db -= 1
        while a != b:
            a, b = parents[a], parents[b]
        lca_depth = depths[a] if a is not None else 0
        hops = depths[prev] + depths[nxt] - 2 * lca_depth
        result.append((nxt, hops))
    return result


def bfs_start_times(
    graph: Graph,
    root: int = 0,
    mode: str = "shortcut",
    t0: int = 0,
) -> Dict[int, int]:
    """Start time T_s for every source under the chosen token model.

    ``t0`` is the root's start time (the paper's Figure 1 uses 0).
    """
    require_connected(graph)
    if mode == "shortcut":
        dist = all_pairs_distances(graph)
        order = dfs_preorder(graph, root)
        times: Dict[int, int] = {root: t0}
        for prev, nxt in zip(order, order[1:]):
            times[nxt] = times[prev] + dist[prev][nxt] + 1
        return times
    if mode == "tree_walk":
        times = {}
        clock = t0
        for index, (node, hops) in enumerate(tree_walk_lengths(graph, root)):
            if index == 0:
                times[node] = clock
            else:
                clock = clock + hops + 1
                times[node] = clock
        return times
    raise GraphError("unknown DFS token mode {!r}".format(mode))


def sending_times(
    graph: Graph,
    start_times: Dict[int, int],
    diameter: Optional[int] = None,
) -> Dict[int, Dict[int, int]]:
    """The Algorithm 3 schedule: ``source -> {node: T_s + D - d(s, node)}``.

    This is exactly the table Figure 1 prints for each BFS tree of the
    5-node example.
    """
    if diameter is None:
        diameter = graph_diameter(graph)
    dist = all_pairs_distances(graph)
    return {
        s: {
            v: start_times[s] + diameter - dist[s][v]
            for v in graph.nodes()
        }
        for s in start_times
    }


def verify_separation(graph: Graph, start_times: Dict[int, int]) -> bool:
    """Check the Lemma 4 invariant T_t >= T_s + d(s, t) + 1 for all pairs."""
    dist = all_pairs_distances(graph)
    ordered = sorted(start_times.items(), key=lambda kv: kv[1])
    for i, (s, ts) in enumerate(ordered):
        for t, tt in ordered[i + 1:]:
            if tt < ts + dist[s][t] + 1:
                return False
    return True


def count_collisions(
    graph: Graph,
    start_times: Dict[int, int],
    diameter: Optional[int] = None,
) -> int:
    """Number of simultaneous multi-source sends the schedule forces.

    For each node u, sources s != u are bucketed by their send round
    ``T_s + D - d(s, u)``; every round asking u to emit values for k > 1
    distinct sources contributes k - 1 collisions (k - 1 extra messages
    that would have to share u's per-round budget).  Lemma 4 says this
    is 0 whenever the start times are separated; naive schedules (all
    sources starting together) produce Theta(N) collisions, which the
    ablation benchmark demonstrates.
    """
    if diameter is None:
        diameter = graph_diameter(graph)
    dist = all_pairs_distances(graph)
    collisions = 0
    for u in graph.nodes():
        buckets: Dict[int, int] = {}
        for s in start_times:
            if s == u:
                continue
            send_round = start_times[s] + diameter - dist[s][u]
            buckets[send_round] = buckets.get(send_round, 0) + 1
        collisions += sum(count - 1 for count in buckets.values() if count > 1)
    return collisions


def naive_start_times(graph: Graph, offset: int = 0) -> Dict[int, int]:
    """The ablation schedule: every source starts at the same round."""
    return {v: offset for v in graph.nodes()}


def figure1_tables(graph: Graph = None) -> Dict[int, Dict[int, int]]:
    """The exact sending-time tables of Figure 1 (a)–(e).

    Returns ``source -> {node: sending time}`` computed with the
    shortcut token model on the paper's 5-node graph; the values match
    the figure: e.g. in BFS(v1) node v4 sends at 0, and in BFS(v5) node
    v4 sends at 10.
    """
    from repro.graphs.generators import figure1_graph

    graph = graph or figure1_graph()
    times = bfs_start_times(graph, root=0, mode="shortcut", t0=0)
    return sending_times(graph, times)
